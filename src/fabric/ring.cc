#include "fabric/ring.h"

#include <algorithm>

#include "util/str.h"

namespace relcomp {
namespace {

constexpr char kRingMagic[] = "relcomp-fabric/1";

/// Splits the next space-delimited field off `*text`.
bool TakeField(std::string_view* text, std::string_view* field) {
  size_t sp = text->find(' ');
  if (sp == std::string_view::npos) return false;
  *field = text->substr(0, sp);
  text->remove_prefix(sp + 1);
  return true;
}

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty() || field.size() > 20) return false;
  uint64_t v = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// Consumes a "<len>:<bytes>" segment; the declared length is checked
/// against what is actually present.
bool TakeSized(std::string_view* text, std::string_view* out) {
  size_t colon = text->find(':');
  if (colon == std::string_view::npos) return false;
  uint64_t len = 0;
  if (!ParseU64(text->substr(0, colon), &len)) return false;
  if (len > FabricRing::kMaxEndpointLength) return false;
  text->remove_prefix(colon + 1);
  if (text->size() < len) return false;
  *out = text->substr(0, static_cast<size_t>(len));
  text->remove_prefix(static_cast<size_t>(len));
  return true;
}

Status Malformed(std::string_view why) {
  return Status::InvalidArgument(
      StrCat("malformed relcomp-fabric/1 ring (", why, ")"));
}

}  // namespace

uint64_t FabricRing::Hash(uint64_t seed, std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (seed >> shift) & 0xFF;
    h *= 0x100000001b3ull;
  }
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  // FNV-1a alone avalanches poorly into the high bits, and the ring
  // partitions by exactly those bits — structured keys ("relcheck-
  // <fp>-q<i>") would clump onto a few arcs. A murmur3-style finalizer
  // fixes the spread; it is part of the placement contract like the
  // rest of this function, so it can never change for existing roots.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

FabricRing FabricRing::Make(std::vector<std::string> endpoints,
                            uint64_t seed, uint32_t vnodes) {
  FabricRing ring;
  ring.seed = seed;
  ring.vnodes = vnodes == 0 ? 1 : vnodes;
  ring.endpoints = std::move(endpoints);
  return ring;
}

FabricRing FabricRing::Singleton(const std::string& address) {
  return Make({address});
}

void FabricRing::EnsurePoints() const {
  if (!points_.empty() && points_seed_ == seed &&
      points_vnodes_ == vnodes && points_shards_ == endpoints.size()) {
    return;
  }
  points_.clear();
  points_.reserve(endpoints.size() * vnodes);
  for (uint32_t s = 0; s < endpoints.size(); ++s) {
    for (uint32_t v = 0; v < vnodes; ++v) {
      points_.emplace_back(Hash(seed, StrCat("shard-", s, "#", v)), s);
    }
  }
  std::sort(points_.begin(), points_.end());
  points_seed_ = seed;
  points_vnodes_ = vnodes;
  points_shards_ = endpoints.size();
}

size_t FabricRing::ShardForKey(std::string_view key) const {
  EnsurePoints();
  const uint64_t h = Hash(seed, key);
  // First ring point clockwise of the key's hash, wrapping at the top.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<uint64_t, uint32_t>& point, uint64_t value) {
        return point.first < value;
      });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

std::vector<size_t> FabricRing::OrphanedShards() const {
  std::vector<size_t> out;
  for (size_t s = 0; s < endpoints.size(); ++s) {
    if (endpoints[s].empty()) out.push_back(s);
  }
  return out;
}

std::string FabricRing::Serialize() const {
  std::string out =
      StrCat(kRingMagic, " epoch ", epoch, " seed ", seed, " vnodes ",
             vnodes, " shards ", endpoints.size(), " ");
  for (const std::string& endpoint : endpoints) {
    out += StrCat(endpoint.size(), ":", endpoint);
  }
  return out;
}

Result<FabricRing> FabricRing::Deserialize(std::string_view text) {
  std::string_view magic, label, field;
  if (!TakeField(&text, &magic) || magic != kRingMagic) {
    return Malformed("bad magic");
  }
  FabricRing ring;
  if (!TakeField(&text, &label) || label != "epoch" ||
      !TakeField(&text, &field) || !ParseU64(field, &ring.epoch)) {
    return Malformed("bad epoch");
  }
  if (!TakeField(&text, &label) || label != "seed" ||
      !TakeField(&text, &field) || !ParseU64(field, &ring.seed)) {
    return Malformed("bad seed");
  }
  uint64_t vnodes = 0;
  if (!TakeField(&text, &label) || label != "vnodes" ||
      !TakeField(&text, &field) || !ParseU64(field, &vnodes) ||
      vnodes == 0 || vnodes > kMaxVnodes) {
    return Malformed("bad vnodes");
  }
  ring.vnodes = static_cast<uint32_t>(vnodes);
  uint64_t shards = 0;
  if (!TakeField(&text, &label) || label != "shards" ||
      !TakeField(&text, &field) || !ParseU64(field, &shards) ||
      shards == 0 || shards > kMaxShards) {
    return Malformed("bad shard count");
  }
  ring.endpoints.reserve(static_cast<size_t>(shards));
  for (uint64_t s = 0; s < shards; ++s) {
    std::string_view endpoint;
    if (!TakeSized(&text, &endpoint)) return Malformed("bad endpoint segment");
    ring.endpoints.emplace_back(endpoint);
  }
  if (!text.empty()) return Malformed("trailing bytes");
  return ring;
}

}  // namespace relcomp
