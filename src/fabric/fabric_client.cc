#include "fabric/fabric_client.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/str.h"

namespace relcomp {
namespace {

using Clock = std::chrono::steady_clock;

bool Contains(const std::vector<std::string>& list, const std::string& item) {
  return std::find(list.begin(), list.end(), item) != list.end();
}

/// Retryable against another candidate (or after a ring refresh):
/// transport loss, a typed refusal, or a per-endpoint deadline.
bool Retryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

}  // namespace

FabricClient::FabricClient(std::vector<std::string> seed_endpoints,
                           FabricClientOptions options)
    : seeds_(std::move(seed_endpoints)),
      options_(options),
      jitter_(options.jitter_seed) {}

std::chrono::milliseconds FabricClient::NextRetryPause() {
  const int64_t pause = options_.retry_pause.count();
  if (pause <= 0) return std::chrono::milliseconds(0);
  std::uniform_int_distribution<int64_t> dist(pause - pause / 2, pause);
  return std::chrono::milliseconds(dist(jitter_));
}

NetClient* FabricClient::ClientFor(const std::string& endpoint) {
  auto it = clients_.find(endpoint);
  if (it == clients_.end()) {
    it = clients_
             .emplace(endpoint, std::make_unique<NetClient>(
                                    endpoint, options_.endpoint_options))
             .first;
  }
  return it->second.get();
}

std::vector<std::string> FabricClient::KnownEndpoints() const {
  std::vector<std::string> out;
  if (have_ring_) {
    for (const std::string& endpoint : ring_.endpoints) {
      if (!endpoint.empty() && !Contains(out, endpoint)) {
        out.push_back(endpoint);
      }
    }
  }
  for (const std::string& seed : seeds_) {
    if (!seed.empty() && !Contains(out, seed)) out.push_back(seed);
  }
  return out;
}

std::vector<std::string> FabricClient::CandidatesFor(size_t shard) const {
  std::vector<std::string> out;
  // The recorded owner first — the common, no-failure path. Then every
  // other live member (one of them may have adopted the shard since
  // our ring was fetched), then the seeds (a member the current ring
  // no longer names can still answer with a fresher ring's refusal).
  if (have_ring_ && shard < ring_.num_shards() &&
      !ring_.endpoints[shard].empty()) {
    out.push_back(ring_.endpoints[shard]);
  }
  for (const std::string& endpoint : KnownEndpoints()) {
    if (!Contains(out, endpoint)) out.push_back(endpoint);
  }
  // Steering: try members last seen healthy (or never probed) before
  // degraded/read-only/down ones. Sick members stay in the list — a
  // degraded member still answers polls and verdict-cache hits, and
  // this client's health view may be stale.
  std::stable_partition(out.begin(), out.end(), [&](const std::string& e) {
    auto it = endpoint_health_.find(e);
    return it == endpoint_health_.end() || it->second == "healthy";
  });
  return out;
}

Status FabricClient::RefreshRing() {
  ++stats_.ring_refreshes;
  Status last = Status::Unavailable("no fabric endpoint reachable");
  bool any = false;
  for (const std::string& endpoint : KnownEndpoints()) {
    NetClient* client = ClientFor(endpoint);
    Result<std::string> serialized = client->Ring();
    if (!serialized.ok()) {
      endpoint_health_[endpoint] = "down";
      last = serialized.status();
      continue;
    }
    // Steering data rides the same sweep: a member that answers its
    // ring answers its health too, and a degraded one sorts behind
    // healthy candidates until it heals.
    Result<std::string> health = client->Health();
    endpoint_health_[endpoint] =
        health.ok() ? std::string(HealthReportState(*health)) : "down";
    Result<FabricRing> ring = FabricRing::Deserialize(*serialized);
    if (!ring.ok()) {
      last = ring.status();
      continue;
    }
    // Highest epoch wins: a zombie or laggard can only present a
    // stale assignment, and stale loses by construction.
    if (!have_ring_ || ring->epoch > ring_.epoch ||
        (ring->epoch == ring_.epoch && !any)) {
      ring_ = *std::move(ring);
      have_ring_ = true;
    }
    any = true;
  }
  return any ? Status::OK() : last;
}

Result<WireReply> FabricClient::CallRouted(const WireRequest& request) {
  ++stats_.routed_calls;
  const bool bounded = options_.op_deadline.count() > 0;
  const Clock::time_point deadline = Clock::now() + options_.op_deadline;
  auto expired = [&] { return bounded && Clock::now() >= deadline; };
  Status last = Status::Unavailable("no fabric endpoint reachable");
  for (bool first_sweep = true;; first_sweep = false) {
    if (!have_ring_ || !first_sweep) {
      Status refreshed = RefreshRing();
      if (!refreshed.ok()) {
        last = refreshed;
        // An auth rejection is a configuration error, not an outage:
        // every re-sweep would present the same (missing or wrong)
        // key, so burning the op deadline on it helps nobody.
        if (refreshed.code() == StatusCode::kPermissionDenied) {
          return refreshed;
        }
      }
    }
    if (have_ring_) {
      const size_t shard = ring_.ShardForKey(request.key);
      for (const std::string& endpoint : CandidatesFor(shard)) {
        Result<WireReply> reply = ClientFor(endpoint)->Call(request);
        if (reply.ok() && !Retryable(reply->code)) return reply;
        last = reply.ok() ? reply->ToStatus() : reply.status();
        if (!reply.ok() && !Retryable(reply.status().code())) {
          return reply.status();
        }
        ++stats_.failovers;
        if (expired()) break;
      }
    }
    if (expired()) {
      return Status::DeadlineExceeded(
          StrCat("fabric op deadline (", options_.op_deadline.count(),
                 " ms) exceeded for key \"", request.key,
                 "\": ", last.message()));
    }
    std::this_thread::sleep_for(NextRetryPause());
  }
}

Status FabricClient::HandoffShard(size_t shard, const std::string& successor) {
  if (!have_ring_) RELCOMP_RETURN_NOT_OK(RefreshRing());
  if (shard >= ring_.num_shards()) {
    return Status::InvalidArgument(
        StrCat("shard ", shard, " out of range for ", ring_.num_shards(),
               " shards"));
  }
  const std::string owner = ring_.endpoints[shard];
  if (owner.empty()) {
    return Status::Unavailable(
        StrCat("shard ", shard, " has no live owner to hand it off (ring "
               "epoch ", ring_.epoch, "); adopt it instead"));
  }
  RELCOMP_RETURN_NOT_OK(ClientFor(owner)->Handoff(shard, successor));
  // The successor's adopt re-published the ring at a higher epoch;
  // pick it up now so this client's next keyed op routes correctly on
  // the first try. Best effort — the routing loop self-heals anyway.
  (void)RefreshRing();
  return Status::OK();
}

Status FabricClient::AdoptShard(size_t shard, const std::string& adopter) {
  if (adopter.empty()) {
    return Status::InvalidArgument("adopt needs an adopter endpoint");
  }
  RELCOMP_RETURN_NOT_OK(ClientFor(adopter)->Adopt(shard));
  (void)RefreshRing();
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> FabricClient::FleetHealth() {
  if (!have_ring_) (void)RefreshRing();
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& endpoint : KnownEndpoints()) {
    Result<std::string> health = ClientFor(endpoint)->Health();
    if (health.ok()) {
      endpoint_health_[endpoint] = std::string(HealthReportState(*health));
      out.emplace_back(endpoint, *std::move(health));
    } else {
      endpoint_health_[endpoint] = "down";
      out.emplace_back(
          endpoint,
          StrCat("unreachable: ", health.status().message(), "\n"));
    }
  }
  return out;
}

Status FabricClient::Submit(const std::string& key, const JobSpec& spec) {
  WireRequest req;
  req.op = WireOp::kSubmit;
  req.key = key;
  req.job = spec.Serialize();
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, CallRouted(req));
  return reply.ToStatus();
}

Result<WireReply> FabricClient::Poll(const std::string& key) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = key;
  return CallRouted(req);
}

Status FabricClient::Cancel(const std::string& key) {
  WireRequest req;
  req.op = WireOp::kCancel;
  req.key = key;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, CallRouted(req));
  return reply.ToStatus();
}

Result<WireReply> FabricClient::AwaitTerminal(
    const std::string& key, std::chrono::milliseconds poll_interval,
    std::chrono::milliseconds limit) {
  const Clock::time_point deadline = Clock::now() + limit;
  for (;;) {
    Result<WireReply> reply = Poll(key);
    if (reply.ok() && reply->code == StatusCode::kOk &&
        reply->state == WireJobState::kDone) {
      return reply;
    }
    // Keep waiting through anything retryable — the whole point is to
    // span the owner's death and the shard's adoption.
    if (!reply.ok() && !Retryable(reply.status().code())) {
      return reply.status();
    }
    if (reply.ok() && reply->code != StatusCode::kOk &&
        !Retryable(reply->code)) {
      return reply->ToStatus();
    }
    if (Clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          StrCat("job \"", key, "\" not terminal within ", limit.count(),
                 " ms of fabric polling"));
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

Result<WireReply> FabricClient::SubmitAndAwait(
    const std::string& key, const JobSpec& spec,
    std::chrono::milliseconds poll_interval, std::chrono::milliseconds limit) {
  const Clock::time_point deadline = Clock::now() + limit;
  RELCOMP_RETURN_NOT_OK(Submit(key, spec));
  for (;;) {
    Result<WireReply> reply = Poll(key);
    if (reply.ok() && reply->code == StatusCode::kOk &&
        reply->state == WireJobState::kDone) {
      return reply;
    }
    const StatusCode code =
        reply.ok() ? reply->code : reply.status().code();
    if (code == StatusCode::kNotFound) {
      // The job completed and was forgotten (a kill landed between its
      // completion and our poll, and recovery never saw an in-flight
      // record). The idempotency key plus the determinism contract
      // make resubmission the honest recovery: the verdict cache
      // answers from the journaled verdict when it survived, and a
      // recomputation is bit-for-bit the same by PR 3's guarantees.
      Status resubmitted = Submit(key, spec);
      if (!resubmitted.ok() && !Retryable(resubmitted.code())) {
        return resubmitted;
      }
    } else if (!Retryable(code) && code != StatusCode::kOk) {
      return reply.ok() ? reply->ToStatus() : reply.status();
    }
    if (Clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          StrCat("job \"", key, "\" not terminal within ", limit.count(),
                 " ms of fabric submit+poll"));
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

}  // namespace relcomp
