#include "fabric/rebalancer.h"

#include <algorithm>
#include <map>

#include "util/str.h"

namespace relcomp {
namespace {

bool Contains(const std::vector<std::string>& list, const std::string& item) {
  return std::find(list.begin(), list.end(), item) != list.end();
}

/// The live member (by position in `live`) with the fewest shards;
/// earliest position wins ties, so the choice is deterministic.
size_t LeastLoaded(const std::vector<std::string>& live,
                   const std::map<std::string, size_t>& load) {
  size_t best = 0;
  size_t best_load = load.at(live[0]);
  for (size_t i = 1; i < live.size(); ++i) {
    const size_t l = load.at(live[i]);
    if (l < best_load) {
      best = i;
      best_load = l;
    }
  }
  return best;
}

}  // namespace

std::string RebalancePlan::Describe() const {
  std::string out;
  for (const ShardMove& move : moves) {
    out += StrCat("shard ", move.shard, ": ",
                  move.from.empty() ? std::string("(orphan)") : move.from,
                  " -> ", move.to, "\n");
  }
  return out;
}

RebalancePlan PlanRebalance(const FabricRing& ring,
                            const std::vector<std::string>& live) {
  RebalancePlan plan;
  if (live.empty() || ring.num_shards() == 0) return plan;

  const size_t shards = ring.num_shards();
  const size_t ceiling = (shards + live.size() - 1) / live.size();

  std::map<std::string, size_t> load;
  for (const std::string& member : live) load[member] = 0;

  // Pass 1: shards staying put (live owner) count toward their owner's
  // load; everything else — no owner, or an owner outside `live` — is
  // homeless and must move.
  std::vector<size_t> homeless;
  for (size_t shard = 0; shard < shards; ++shard) {
    const std::string& owner = ring.endpoints[shard];
    if (!owner.empty() && Contains(live, owner)) {
      ++load[owner];
    } else {
      homeless.push_back(shard);
    }
  }

  // Pass 2: members above the ceiling shed their highest-numbered
  // shards until they fit. (Highest-first is arbitrary but fixed —
  // determinism is the property that matters.)
  for (size_t shard = shards; shard-- > 0;) {
    const std::string& owner = ring.endpoints[shard];
    if (owner.empty() || !Contains(live, owner)) continue;
    if (load[owner] > ceiling) {
      --load[owner];
      homeless.push_back(shard);
    }
  }
  std::sort(homeless.begin(), homeless.end());

  // Pass 3: re-home, ascending shard order, least-loaded member first.
  for (size_t shard : homeless) {
    const size_t target = LeastLoaded(live, load);
    ++load[live[target]];
    const std::string& owner = ring.endpoints[shard];
    ShardMove move;
    move.shard = shard;
    if (!owner.empty() && Contains(live, owner)) move.from = owner;
    move.to = live[target];
    plan.moves.push_back(std::move(move));
  }
  return plan;
}

RebalancePlan PlanDrain(const FabricRing& ring, const std::string& endpoint) {
  // The survivors, in first-appearance (shard) order.
  std::vector<std::string> live;
  for (const std::string& owner : ring.endpoints) {
    if (!owner.empty() && owner != endpoint && !Contains(live, owner)) {
      live.push_back(owner);
    }
  }
  RebalancePlan plan;
  if (live.empty()) return plan;  // nobody left to take the load

  std::map<std::string, size_t> load;
  for (const std::string& member : live) load[member] = 0;
  for (const std::string& owner : ring.endpoints) {
    if (Contains(live, owner)) ++load[owner];
  }

  for (size_t shard = 0; shard < ring.num_shards(); ++shard) {
    if (ring.endpoints[shard] != endpoint) continue;
    const size_t target = LeastLoaded(live, load);
    ++load[live[target]];
    ShardMove move;
    move.shard = shard;
    move.from = endpoint;
    move.to = live[target];
    plan.moves.push_back(std::move(move));
  }
  return plan;
}

Status ExecutePlan(FabricClient* client, const RebalancePlan& plan) {
  for (const ShardMove& move : plan.moves) {
    Status moved = move.from.empty()
                       ? client->AdoptShard(move.shard, move.to)
                       : client->HandoffShard(move.shard, move.to);
    if (!moved.ok()) {
      return Status(moved.code(),
                    StrCat("rebalance stopped at shard ", move.shard, " -> ",
                           move.to, ": ", moved.message()));
    }
  }
  return Status::OK();
}

}  // namespace relcomp
