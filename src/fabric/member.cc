#include "fabric/member.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "net/client.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// The control-record key every shard journals its ring under.
constexpr char kRingControlKey[] = "ring";

/// Worst-wins ordering of health-state tokens.
int HealthRank(std::string_view state) {
  if (state == "healthy") return 0;
  if (state == "degraded") return 1;
  if (state == "readonly") return 2;
  return 3;  // "down" (or anything unrecognized: assume the worst)
}

}  // namespace

const char* HandoffStageToString(HandoffStage stage) {
  switch (stage) {
    case HandoffStage::kDrain:
      return "drain";
    case HandoffStage::kFlush:
      return "flush";
    case HandoffStage::kJournal:
      return "journal";
    case HandoffStage::kRelease:
      return "release";
    case HandoffStage::kAdopt:
      return "adopt";
    case HandoffStage::kConfirm:
      return "confirm";
  }
  return "?";
}

Result<std::unique_ptr<FabricMember>> FabricMember::Start(
    const FabricMemberOptions& options) {
  if (options.fabric_root.empty()) {
    return Status::InvalidArgument("fabric member needs a fabric_root");
  }
  if (options.endpoints.empty()) {
    return Status::InvalidArgument("fabric member needs an endpoint list");
  }
  if (options.member_index >= options.endpoints.size()) {
    return Status::InvalidArgument(
        StrCat("member index ", options.member_index, " out of range for ",
               options.endpoints.size(), " endpoints"));
  }
  std::unique_ptr<FabricMember> member(new FabricMember());
  member->options_ = options;
  member->ring_ =
      FabricRing::Make(options.endpoints, options.seed, options.vnodes);

  const size_t home = options.member_index;
  RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<DecisionService> service,
                           member->StartShardService(home));

  // A ring record in the home shard outranks the configured initial
  // ring: it carries every reassignment that happened before this
  // (re)start. The placement shape, though, is non-negotiable — a
  // member configured with a different seed/vnodes/shard count would
  // route keys to different shards than the durable jobs were placed
  // by, so that is a refusal, not a merge.
  Result<std::string> record =
      service->mutable_store()->LoadControl(kRingControlKey);
  if (record.ok()) {
    RELCOMP_ASSIGN_OR_RETURN(FabricRing recorded,
                             FabricRing::Deserialize(*record));
    if (recorded.seed != member->ring_.seed ||
        recorded.vnodes != member->ring_.vnodes ||
        recorded.num_shards() != member->ring_.num_shards()) {
      return Status::FailedPrecondition(
          StrCat("fabric placement contract mismatch for ",
                 options.fabric_root, ": shard ", home, " was created with ",
                 recorded.num_shards(), " shards / seed ", recorded.seed,
                 " / vnodes ", recorded.vnodes, ", member configured with ",
                 member->ring_.num_shards(), " / ", options.seed, " / ",
                 options.vnodes));
    }
    if (recorded.epoch > member->ring_.epoch) member->ring_ = recorded;
  } else if (record.status().code() != StatusCode::kNotFound) {
    return record.status();
  }

  // Rejoin: if the durable ring says this shard has no live owner (a
  // prior drain or an adoption that was itself drained), taking it
  // back is a reassignment like any other — fenced by an epoch bump.
  const std::string& self = options.endpoints[home];
  if (member->ring_.endpoints[home] != self) {
    ++member->ring_.epoch;
    member->ring_.endpoints[home] = self;
  }

  member->recovered_jobs_ += service->RecoveredJobs().size();
  member->services_[home] = std::move(service);
  {
    std::lock_guard<std::mutex> lock(member->mu_);
    RELCOMP_RETURN_NOT_OK(member->PersistRingLocked());
  }

  NetServerOptions server_options = options.server_options;
  FabricMember* raw = member.get();
  server_options.route =
      [raw](const std::string& key) -> Result<DecisionService*> {
    std::lock_guard<std::mutex> lock(raw->mu_);
    const size_t shard = raw->ring_.ShardForKey(key);
    // A shard mid-handoff sheds even while its service still exists:
    // admission after the flush point would strand work behind the
    // departing flock.
    auto draining = raw->draining_.find(shard);
    if (draining != raw->draining_.end()) {
      return Status::Unavailable(
          StrCat("shard ", shard, " is mid-handoff to ", draining->second,
                 " (ring epoch ", raw->ring_.epoch, "); retry shortly"));
    }
    auto it = raw->services_.find(shard);
    if (it != raw->services_.end()) return it->second.get();
    const std::string& owner = raw->ring_.endpoints[shard];
    if (owner.empty()) {
      return Status::Unavailable(
          StrCat("shard ", shard, " has no live owner (ring epoch ",
                 raw->ring_.epoch, "); retry after adoption"));
    }
    return Status::Unavailable(
        StrCat("shard ", shard, " is owned by ", owner, " (ring epoch ",
               raw->ring_.epoch, "), not this member"));
  };
  server_options.ring = [raw] {
    std::lock_guard<std::mutex> lock(raw->mu_);
    return raw->ring_.Serialize();
  };
  server_options.adopt = [raw](size_t shard) { return raw->AdoptShard(shard); };
  server_options.handoff = [raw](size_t shard, const std::string& successor) {
    return raw->HandoffShard(shard, successor);
  };
  server_options.health = [raw] { return raw->HealthReport(); };
  RELCOMP_ASSIGN_OR_RETURN(
      member->server_,
      NetServer::Start(member->services_[home].get(), self, server_options));
  if (options.health_probe_interval.count() > 0) {
    member->prober_ = std::thread([raw] { raw->ProberLoop(); });
  }
  return member;
}

FabricMember::~FabricMember() {
  Shutdown();
  // The server loop thread calls the routing hooks, so it must be gone
  // before the services (and this object's mutex) are.
  server_.reset();
  services_.clear();
}

Result<std::unique_ptr<DecisionService>> FabricMember::StartShardService(
    size_t shard) {
  DecisionServiceOptions service_options = options_.service_options;
  service_options.store_options.fabric_root = options_.fabric_root;
  service_options.store_options.shard_name = StrCat("shard-", shard);
  return DecisionService::Start("", service_options);
}

Status FabricMember::PersistRingLocked() {
  const std::string serialized = ring_.Serialize();
  Status first = Status::OK();
  for (auto& [shard, service] : services_) {
    Status persisted =
        service->mutable_store()->PersistControl(kRingControlKey, serialized);
    // Best effort per shard: a crashed shard store cannot take the
    // record, but the reassignment is already durable in the shards
    // that could — the highest-epoch-wins merge tolerates laggards.
    if (first.ok() && !persisted.ok() &&
        persisted.code() != StatusCode::kFailedPrecondition) {
      first = persisted;
    }
  }
  return first;
}

Status FabricMember::AdoptShard(size_t shard) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("member is shut down");
    }
    if (shard >= ring_.num_shards()) {
      return Status::InvalidArgument(
          StrCat("shard ", shard, " out of range for ", ring_.num_shards(),
                 " shards"));
    }
    if (services_.count(shard) > 0) {
      return Status::OK();  // already ours — adoption is idempotent
    }
  }
  // Open outside the lock: Start replays the shard's journal and
  // resumes its jobs, which can take a while; routing for shards we
  // already own must not stall behind it. The flock inside Open is the
  // actual exclusion — if the old owner still lives, this fails
  // kFailedPrecondition and nothing changed.
  RELCOMP_ASSIGN_OR_RETURN(std::unique_ptr<DecisionService> service,
                           StartShardService(shard));

  std::lock_guard<std::mutex> lock(mu_);
  // Fencing: the adopted shard may carry a newer ring than we hold
  // (the dead member adopted something first, or drained and rejoined)
  // — merge by epoch before bumping past it, so the reassignment we
  // write outranks everything either party ever wrote.
  Result<std::string> record =
      service->mutable_store()->LoadControl(kRingControlKey);
  if (record.ok()) {
    Result<FabricRing> recorded = FabricRing::Deserialize(*record);
    if (recorded.ok() && recorded->seed == ring_.seed &&
        recorded->vnodes == ring_.vnodes &&
        recorded->num_shards() == ring_.num_shards() &&
        recorded->epoch > ring_.epoch) {
      ring_ = *std::move(recorded);
    }
  }
  ++ring_.epoch;
  const std::string& self = options_.endpoints[options_.member_index];
  for (const auto& [owned, unused] : services_) {
    (void)unused;
    ring_.endpoints[owned] = self;
  }
  ring_.endpoints[shard] = self;
  recovered_jobs_ += service->RecoveredJobs().size();
  services_[shard] = std::move(service);
  return PersistRingLocked();
}

Status FabricMember::StageFault(HandoffStage stage) {
  if (options_.handoff_fault) return options_.handoff_fault(stage);
  return Status::OK();
}

Status FabricMember::HandoffShard(size_t shard, const std::string& successor) {
  const std::string& self = options_.endpoints[options_.member_index];
  if (successor.empty()) {
    return Status::InvalidArgument("handoff needs a successor endpoint");
  }
  if (successor == self) {
    return Status::InvalidArgument(
        StrCat("handoff of shard ", shard, " to self (", self,
               ") is meaningless — the shard is already here"));
  }
  if (std::find(options_.endpoints.begin(), options_.endpoints.end(),
                successor) == options_.endpoints.end()) {
    return Status::InvalidArgument(
        StrCat("handoff successor ", successor,
               " is not a member of this fabric"));
  }

  // Stage 1 — drain: from this moment the route hook sheds the shard
  // (kUnavailable naming the successor); nothing new can slip in
  // behind the flush.
  DecisionService* service = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("member is shut down");
    }
    if (shard >= ring_.num_shards()) {
      return Status::InvalidArgument(
          StrCat("shard ", shard, " out of range for ", ring_.num_shards(),
                 " shards"));
    }
    auto it = services_.find(shard);
    if (it == services_.end()) {
      return Status::FailedPrecondition(
          StrCat("shard ", shard, " is not owned by this member; its owner is ",
                 ring_.endpoints[shard].empty() ? "(nobody)"
                                                : ring_.endpoints[shard]));
    }
    if (draining_.count(shard) > 0) {
      return Status::FailedPrecondition(
          StrCat("shard ", shard, " is already mid-handoff to ",
                 draining_[shard]));
    }
    RELCOMP_RETURN_NOT_OK(StageFault(HandoffStage::kDrain));
    draining_[shard] = successor;
    service = it->second.get();
  }

  // Stage 2 — flush: every running job unwinds at its next decision
  // point and persists its checkpoint; queued jobs stay durable on
  // disk. After Quiesce the directory is exactly what the successor's
  // startup recovery expects. An abort here un-drains — the shard
  // keeps serving (queued jobs still run after a failed pre-journal
  // handoff only via recovery, so only the fault hook aborts here;
  // Quiesce itself failing means the service crashed and adoption is
  // the answer anyway).
  Status flush = StageFault(HandoffStage::kFlush);
  if (flush.ok()) flush = service->Quiesce();
  if (!flush.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    draining_.erase(shard);
    return flush;
  }

  // Stage 3 — journal: the epoch bump naming the successor MUST land
  // in the departing shard's own store before the flock is released;
  // it is the fence that stops this member's tenure from ever
  // outranking the successor's. The other owned shards get the new
  // ring best-effort.
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status journal = StageFault(HandoffStage::kJournal);
    if (journal.ok()) {
      ++ring_.epoch;
      ring_.endpoints[shard] = successor;
      journal = services_[shard]->mutable_store()->PersistControl(
          kRingControlKey, ring_.Serialize());
      if (journal.ok()) (void)PersistRingLocked();
    }
    if (!journal.ok()) {
      // The service is already flushed; resuming is not possible
      // (workers parked by design). Give up tenure instead: no-owner
      // record, flock freed below, any member can adopt.
      ++ring_.epoch;
      ring_.endpoints[shard] = std::string();
      std::unique_ptr<DecisionService> departing =
          std::move(services_[shard]);
      services_.erase(shard);
      (void)PersistRingLocked();
      draining_.erase(shard);
      departing.reset();  // flock released
      return journal;
    }
  }

  // Stage 4 — release: destroy the service; its store destructor frees
  // the directory flock, which is the successor's admission ticket.
  {
    std::unique_ptr<DecisionService> departing;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Status release = StageFault(HandoffStage::kRelease);
      if (!release.ok()) return release;  // draining_ kept: record names successor
      departing = std::move(services_[shard]);
      services_.erase(shard);
    }
    departing.reset();
  }

  // Stage 5 — adopt: tell the successor to take the shard. A failure
  // here (dead or stalled successor) leaves the shard flock-free with
  // a durable record naming the successor — the fabric's ordinary
  // adoption path (any member) completes the move; this member's part
  // is done either way.
  Status adopt = StageFault(HandoffStage::kAdopt);
  if (adopt.ok()) {
    NetClientOptions client_options;
    client_options.io_timeout = options_.handoff_adopt_deadline;
    client_options.call_deadline = options_.handoff_adopt_deadline;
    client_options.max_retries = 2;
    client_options.auth_key = options_.server_options.auth_key;
    client_options.auth_key2 = options_.server_options.auth_key2;
    client_options.compress_threshold =
        options_.server_options.compress_threshold;
    NetClient client(successor, client_options);
    adopt = client.Adopt(shard);
  }
  if (!adopt.ok()) return adopt;

  // Stage 6 — confirm: the successor owns the shard and has published
  // a ring that outranks ours; drop the drain marker (routing now
  // sheds via the ring, naming the successor).
  RELCOMP_RETURN_NOT_OK(StageFault(HandoffStage::kConfirm));
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_.erase(shard);
  }
  return Status::OK();
}

void FabricMember::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      probe_cv_.notify_all();
      // Departure precedes the listener closing: the durable record
      // must say "no owner" before the last moment a peer or client
      // could still reach us, so whoever adopts the shards next starts
      // from an epoch that outranks our tenure.
      ++ring_.epoch;
      for (const auto& [shard, service] : services_) {
        (void)service;
        ring_.endpoints[shard] = std::string();
      }
      (void)PersistRingLocked();
    }
  }
  // The prober calls HandoffShard and shard services; it must be gone
  // before the destructor tears either down.
  {
    std::lock_guard<std::mutex> join_lock(prober_join_mu_);
    if (prober_.joinable()) prober_.join();
  }
  if (server_) server_->Shutdown();
}

void FabricMember::ProberLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    probe_cv_.wait_for(lock, options_.health_probe_interval,
                       [&] { return shutdown_; });
    if (shutdown_) return;
    lock.unlock();
    ProbeAndEvict();
    lock.lock();
  }
}

void FabricMember::ProbeAndEvictNow() { ProbeAndEvict(); }

void FabricMember::ProbeAndEvict() {
  // Pass 1 (locked): find sick shards, re-probe their stores in place,
  // and snapshot successor candidates. Only a shard whose store FAILS
  // a live probe is evicted — a transient fault heals right here and
  // the shard stays put.
  std::vector<std::pair<size_t, std::vector<std::string>>> evictions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    const std::string& self = options_.endpoints[options_.member_index];
    for (auto& [shard, service] : services_) {
      if (draining_.count(shard) > 0) continue;
      if (service->HealthState() == "healthy") continue;
      if (service->ProbeStoreNow().ok()) continue;
      std::vector<std::string> candidates;
      for (const std::string& endpoint : ring_.endpoints) {
        if (!endpoint.empty() && endpoint != self &&
            std::find(candidates.begin(), candidates.end(), endpoint) ==
                candidates.end()) {
          candidates.push_back(endpoint);
        }
      }
      // No live peer: nowhere to go. Keep serving what memory and the
      // verdict cache can answer; the next sweep retries.
      if (candidates.empty()) continue;
      evictions.emplace_back(shard, std::move(candidates));
    }
  }

  // Pass 2 (unlocked — HandoffShard takes mu_ itself): steer each
  // eviction toward a peer that reports itself healthy; when none
  // does, the first live peer still beats a dying disk.
  for (auto& [shard, candidates] : evictions) {
    NetClientOptions probe_options;
    probe_options.io_timeout = std::chrono::milliseconds(2000);
    probe_options.max_retries = 1;
    probe_options.auth_key = options_.server_options.auth_key;
    probe_options.auth_key2 = options_.server_options.auth_key2;
    probe_options.compress_threshold =
        options_.server_options.compress_threshold;
    std::string successor;
    for (const std::string& candidate : candidates) {
      NetClient peer(candidate, probe_options);
      Result<std::string> health = peer.Health();
      if (health.ok() && HealthReportState(*health) == "healthy") {
        successor = candidate;
        break;
      }
    }
    if (successor.empty()) successor = candidates.front();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++self_eviction_attempts_;
    }
    // A journal-stage failure inside HandoffShard already gave up
    // tenure with a truthful no-owner record — either way this disk no
    // longer owns the shard, which is the point.
    Status moved = HandoffShard(shard, successor);
    if (moved.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++self_evictions_;
    }
  }
}

std::string FabricMember::HealthReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string worst = "healthy";
  std::string lines;
  for (const auto& [shard, service] : services_) {
    const std::string state = service->HealthState();
    if (HealthRank(state) > HealthRank(worst)) worst = state;
    lines += service->HealthLine(StrCat(shard));
    lines += '\n';
  }
  return StrCat(kHealthMagic, " ", worst, "\n", lines);
}

size_t FabricMember::self_eviction_attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return self_eviction_attempts_;
}

size_t FabricMember::self_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return self_evictions_;
}

FabricRing FabricMember::ring() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

std::vector<size_t> FabricMember::owned_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> out;
  out.reserve(services_.size());
  for (const auto& [shard, service] : services_) {
    (void)service;
    out.push_back(shard);
  }
  return out;
}

DecisionService* FabricMember::shard_service(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(shard);
  return it == services_.end() ? nullptr : it->second.get();
}

size_t FabricMember::recovered_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_jobs_;
}

}  // namespace relcomp
