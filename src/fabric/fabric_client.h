#ifndef RELCOMP_FABRIC_FABRIC_CLIENT_H_
#define RELCOMP_FABRIC_FABRIC_CLIENT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "fabric/ring.h"
#include "net/client.h"
#include "util/status.h"

namespace relcomp {

/// Fabric client tuning.
struct FabricClientOptions {
  /// Per-endpoint transport tuning. The fabric default trims the
  /// per-endpoint retry budget to 1: retrying a dead endpoint is the
  /// FabricClient's job, against the NEXT candidate, not the same
  /// socket eight more times.
  NetClientOptions endpoint_options{.max_retries = 1};
  /// Overall wall-clock bound on one routed operation (Submit / Poll /
  /// Cancel), across every candidate sweep, ring refresh, and pause.
  /// kDeadlineExceeded once it elapses.
  std::chrono::milliseconds op_deadline{30000};
  /// Pause between full candidate sweeps (every candidate refused or
  /// unreachable — typically the window between a member dying and a
  /// peer adopting its shard). The actual sleep is drawn uniformly
  /// from [retry_pause/2, retry_pause] — mirroring NetClient's backoff
  /// jitter, so a crowd of clients orphaned by the same member death
  /// does not re-sweep the fabric in lockstep.
  std::chrono::milliseconds retry_pause{10};
  /// Jitter PRNG seed (fixed default keeps tests deterministic).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// Observability counters; monotonic for the client's lifetime.
struct FabricClientStats {
  size_t routed_calls = 0;    ///< operations attempted through the ring
  size_t ring_refreshes = 0;  ///< ring fetch sweeps performed
  size_t failovers = 0;       ///< candidate advances after a refusal
};

/// Routing client for the sharded decision fabric.
///
/// Holds a FabricRing (bootstrapped from any reachable seed endpoint —
/// a standalone NetServer answers with a singleton ring, so the same
/// client drives both shapes) and routes every keyed operation to the
/// shard owner. On a refusal or connection loss it walks the remaining
/// live candidates in order, then re-fetches the ring — an adoption
/// bumps the epoch, and highest-epoch-wins re-resolves placement — and
/// sweeps again until the operation lands or its deadline lapses.
///
/// AwaitTerminal therefore spans not just server restarts (the PR 5
/// client's contract) but server LOSS: SIGKILL the owner mid-job, let
/// any peer adopt the shard, and the same poll loop converges on the
/// adopter and returns the bit-for-bit verdict its recovery produced.
///
/// Not thread-safe: one FabricClient per thread.
class FabricClient {
 public:
  explicit FabricClient(std::vector<std::string> seed_endpoints,
                        FabricClientOptions options = FabricClientOptions());

  /// Submits `spec` under `key` to the shard owner (same idempotency
  /// contract as NetClient::Submit).
  Status Submit(const std::string& key, const JobSpec& spec);

  /// Non-blocking state probe for `key`, routed to the shard owner.
  Result<WireReply> Poll(const std::string& key);

  /// Cooperative cancellation of `key`, routed to the shard owner.
  Status Cancel(const std::string& key);

  /// Polls `key` until terminal, surviving owner loss and shard
  /// handoff; kDeadlineExceeded once `limit` elapses. kNotFound is
  /// terminal here — see SubmitAndAwait for the self-healing variant.
  Result<WireReply> AwaitTerminal(
      const std::string& key,
      std::chrono::milliseconds poll_interval = std::chrono::milliseconds(5),
      std::chrono::milliseconds limit = std::chrono::milliseconds(60000));

  /// Submit + await in one self-healing loop: a kNotFound poll (the
  /// job completed and was forgotten before the verdict was read — a
  /// kill can land in exactly that window) resubmits under the same
  /// idempotency key and keeps waiting. Determinism + the durable
  /// verdict cache make the answer bit-for-bit either way.
  Result<WireReply> SubmitAndAwait(
      const std::string& key, const JobSpec& spec,
      std::chrono::milliseconds poll_interval = std::chrono::milliseconds(5),
      std::chrono::milliseconds limit = std::chrono::milliseconds(60000));

  /// Fetches the ring from every reachable known endpoint, keeping the
  /// highest epoch seen. OK if at least one endpoint answered.
  Status RefreshRing();

  /// Asks shard `shard`'s current owner to hand it off to `successor`
  /// via the planned-handoff protocol, then refreshes the ring so this
  /// client routes by the successor's re-publish. Unlike the keyed
  /// ops this targets the owner endpoint directly — a handoff is an
  /// instruction to a specific member, not a routable request.
  /// kUnavailable when the ring records no live owner for the shard.
  Status HandoffShard(size_t shard, const std::string& successor);

  /// Asks the member at `adopter` to adopt `shard` (the orphan-repair
  /// counterpart of HandoffShard — used for shards whose owner died
  /// without handing off), then refreshes the ring.
  Status AdoptShard(size_t shard, const std::string& adopter);

  /// Fetches the relcomp-health/1 report from every reachable known
  /// endpoint, in sweep order; an unreachable member's report is a
  /// one-line "unreachable: ..." explanation. Updates the steering
  /// table as a side effect (`relcheck --health` prints this).
  std::vector<std::pair<std::string, std::string>> FleetHealth();

  /// The next inter-sweep pause CallRouted will sleep (consumes one
  /// draw from the jitter PRNG): uniform in [retry_pause/2,
  /// retry_pause]. Public so tests can pin the deterministic sequence.
  std::chrono::milliseconds NextRetryPause();

  /// The ring the client currently routes by (default-constructed
  /// until the first successful RefreshRing).
  const FabricRing& ring() const { return ring_; }
  bool has_ring() const { return have_ring_; }

  const FabricClientStats& stats() const { return stats_; }

 private:
  /// Routes one keyed request: candidate sweep, ring refresh, repeat
  /// until a non-kUnavailable answer or the op deadline.
  Result<WireReply> CallRouted(const WireRequest& request);
  /// The per-endpoint client (created on first use).
  NetClient* ClientFor(const std::string& endpoint);
  /// Try order for `shard`: owner, other live ring endpoints, seeds.
  std::vector<std::string> CandidatesFor(size_t shard) const;
  /// Every endpoint worth asking for a ring: ring endpoints ∪ seeds.
  std::vector<std::string> KnownEndpoints() const;

  std::vector<std::string> seeds_;
  FabricClientOptions options_;
  FabricRing ring_;
  bool have_ring_ = false;
  /// Last-seen health-state token per endpoint (from the ring-refresh
  /// piggyback or FleetHealth). CandidatesFor tries members last seen
  /// healthy (or never probed) before degraded/read-only/down ones.
  std::map<std::string, std::string> endpoint_health_;
  std::map<std::string, std::unique_ptr<NetClient>> clients_;
  FabricClientStats stats_;
  std::mt19937_64 jitter_;
};

}  // namespace relcomp

#endif  // RELCOMP_FABRIC_FABRIC_CLIENT_H_
