#ifndef RELCOMP_FABRIC_RING_H_
#define RELCOMP_FABRIC_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace relcomp {

/// Deterministic consistent-hash ring for the decision fabric.
///
/// The ring answers one question — which shard owns an idempotency
/// key — and records one agreement: which endpoint currently serves
/// each shard. The two have very different lifetimes:
///
///  * key → shard is FIXED for the fabric's whole life. It depends
///    only on (seed, vnodes, shard count), all pinned at fabric
///    creation, never on the endpoint assignment. Jobs are durable
///    files inside their shard directory, so the mapping that placed
///    them can never drift — a key resolves to the same shard before
///    a crash, after a restart, and after the shard is adopted by a
///    different member.
///  * shard → endpoint is VERSIONED by `epoch`. Every reassignment —
///    a member adopting a dead peer's shard, a graceful departure —
///    bumps the epoch and persists the new ring as a control record in
///    every shard the writer owns. Readers keep the highest epoch they
///    have seen; a zombie owner can only ever present a stale (lower)
///    epoch, so it can never win the placement argument ("fencing").
///
/// An empty endpoint string means the shard has no live owner: submits
/// routed to it shed with a typed kUnavailable + retry hint until a
/// member adopts it.
///
/// Serialized as a `relcomp-fabric/1` record. Deserialize accepts
/// exactly what Serialize emits and rejects everything else with a
/// typed kInvalidArgument — the record crosses the wire (ring op) and
/// rests on disk (control record), both hostile surfaces.
///
/// Not thread-safe: the lookup table is built lazily on first use.
/// Each holder keeps its own copy behind its own lock.
class FabricRing {
 public:
  /// Fixed default hash seed — part of the placement contract, so it
  /// must never change for an existing fabric root.
  static constexpr uint64_t kDefaultSeed = 0x52434f4d50464142ull;
  /// Ring points per shard. More points = smoother key balance.
  static constexpr uint32_t kDefaultVnodes = 64;
  /// Deserialize caps (hostile input never sizes an allocation).
  static constexpr uint64_t kMaxShards = 1024;
  static constexpr uint64_t kMaxVnodes = 4096;
  static constexpr uint64_t kMaxEndpointLength = 512;

  /// Placement-epoch version of the shard → endpoint assignment.
  uint64_t epoch = 0;
  uint64_t seed = kDefaultSeed;
  uint32_t vnodes = kDefaultVnodes;
  /// endpoints[s] serves shard s; "" = no live owner.
  std::vector<std::string> endpoints;

  /// A fabric of `endpoints.size()` shards, one per initial member.
  static FabricRing Make(std::vector<std::string> endpoints,
                         uint64_t seed = kDefaultSeed,
                         uint32_t vnodes = kDefaultVnodes);

  /// The one-server fabric: a standalone NetServer answers the ring op
  /// with this, so a FabricClient can bootstrap off any endpoint.
  static FabricRing Singleton(const std::string& address);

  size_t num_shards() const { return endpoints.size(); }

  /// The shard owning `key`. Depends only on (seed, vnodes,
  /// num_shards) — NEVER on endpoints or epoch. Precondition:
  /// num_shards() > 0.
  size_t ShardForKey(std::string_view key) const;

  /// Shards with no live owner ("" endpoint). Sorted.
  std::vector<size_t> OrphanedShards() const;

  /// relcomp-fabric/1 record text.
  std::string Serialize() const;
  static Result<FabricRing> Deserialize(std::string_view text);

  /// FNV-1a 64 over `seed` then `data` — the ring's only hash,
  /// exposed for the balance tests.
  static uint64_t Hash(uint64_t seed, std::string_view data);

 private:
  /// (point hash, shard) pairs sorted by hash; rebuilt lazily when the
  /// placement shape (seed, vnodes, shard count) changes.
  mutable std::vector<std::pair<uint64_t, uint32_t>> points_;
  mutable uint64_t points_seed_ = 0;
  mutable uint32_t points_vnodes_ = 0;
  mutable size_t points_shards_ = 0;
  void EnsurePoints() const;
};

}  // namespace relcomp

#endif  // RELCOMP_FABRIC_RING_H_
