#ifndef RELCOMP_FABRIC_REBALANCER_H_
#define RELCOMP_FABRIC_REBALANCER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "fabric/fabric_client.h"
#include "fabric/ring.h"
#include "util/status.h"

namespace relcomp {

/// One shard relocation. An empty `from` means the shard currently has
/// no live owner (or a dead one): the move executes as a plain adopt
/// at `to` instead of a handoff.
struct ShardMove {
  size_t shard = 0;
  std::string from;
  std::string to;
};

/// An ordered sequence of shard moves. Order matters: ExecutePlan runs
/// the moves one planned handoff at a time, so at most one shard is
/// ever mid-flight — the blast radius of an interruption is a single
/// shard, which the fabric's ordinary adoption path repairs.
struct RebalancePlan {
  std::vector<ShardMove> moves;

  bool empty() const { return moves.empty(); }
  /// Human-readable one-line-per-move rendering ("shard 3: a -> b").
  std::string Describe() const;
};

/// Computes the move set that takes `ring`'s shard assignment to a
/// balanced one over the `live` member endpoints: every live member
/// ends owning between floor(S/M) and ceil(S/M) shards. Only necessary
/// moves are planned — orphaned shards (no owner, or an owner outside
/// `live`) are re-homed, and members above the ceiling shed their
/// highest-numbered shards; members already within bounds are left
/// untouched. Deterministic: shards are (re)assigned in ascending
/// order to the least-loaded live member, ties broken by position in
/// `live` — every caller computing a plan from the same ring and
/// member list plans the identical move sequence.
RebalancePlan PlanRebalance(const FabricRing& ring,
                            const std::vector<std::string>& live);

/// Computes the plan that drains every shard owned by `endpoint` onto
/// the remaining live members of `ring`, least-loaded first (same
/// determinism as PlanRebalance). Empty when the ring has no other
/// live member to take the load.
RebalancePlan PlanDrain(const FabricRing& ring, const std::string& endpoint);

/// Executes `plan` move by move: a planned handoff (owner flushes,
/// journals, releases; successor adopts) for owned shards, a direct
/// adopt for orphans. Stops at the first failure, naming the shard it
/// stopped on — the remaining moves can be re-planned from the fresh
/// ring, which already reflects every completed move.
Status ExecutePlan(FabricClient* client, const RebalancePlan& plan);

}  // namespace relcomp

#endif  // RELCOMP_FABRIC_REBALANCER_H_
