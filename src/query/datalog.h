#ifndef RELCOMP_QUERY_DATALOG_H_
#define RELCOMP_QUERY_DATALOG_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "query/atom.h"
#include "relational/schema.h"
#include "util/status.h"

namespace relcomp {

/// One datalog rule: head(args) :- body atoms. Body atoms reference EDB
/// relations (schema relations), IDB predicates (heads of rules in the
/// same program), or built-in comparisons.
struct DatalogRule {
  std::string head_predicate;
  std::vector<Term> head_args;
  std::vector<Atom> body;

  std::string ToString() const;
};

/// A positive datalog program with = and != (the paper's FP: ∃FO+
/// extended with an inflationary fixpoint operator; for positive
/// programs the inflationary and least fixpoints coincide).
class DatalogProgram {
 public:
  DatalogProgram() = default;

  void AddRule(DatalogRule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<DatalogRule>& rules() const { return rules_; }

  /// The predicate whose fixpoint is the query answer.
  const std::string& output_predicate() const { return output_predicate_; }
  void set_output_predicate(std::string name) {
    output_predicate_ = std::move(name);
  }

  /// Names of all IDB predicates (rule heads).
  std::set<std::string> IdbPredicates() const;

  /// Arity of an IDB predicate, or -1 if it is not an IDB predicate.
  int IdbArity(const std::string& predicate) const;

  /// Arity of the output predicate (the query arity). -1 if undefined.
  int arity() const { return IdbArity(output_predicate_); }

  /// All constants in the program.
  std::set<Value> Constants() const;

  /// Validates the program against `schema`:
  ///  * IDB predicates do not collide with EDB relation names;
  ///  * each predicate (IDB or EDB) is used with a consistent arity;
  ///  * rules are safe (head and comparison variables occur in a
  ///    positive relational/IDB body atom);
  ///  * the output predicate is an IDB predicate.
  Status Validate(const Schema& schema) const;

  /// One rule per line, output predicate noted first.
  std::string ToString() const;

 private:
  std::vector<DatalogRule> rules_;
  std::string output_predicate_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_DATALOG_H_
