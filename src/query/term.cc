#include "query/term.h"

namespace relcomp {

std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}

}  // namespace relcomp
