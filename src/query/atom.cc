#include "query/atom.h"

namespace relcomp {

void Atom::CollectVariables(std::set<std::string>* out) const {
  for (const Term& t : args_) {
    if (t.is_variable()) out->insert(t.var());
  }
}

std::string Atom::ToString() const {
  if (is_relation()) {
    std::string out = relation_;
    out.push_back('(');
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i].ToString();
    }
    out.push_back(')');
    return out;
  }
  std::string out = args_[0].ToString();
  out += (op_ == CmpOp::kEq) ? " = " : " != ";
  out += args_[1].ToString();
  return out;
}

}  // namespace relcomp
