#ifndef RELCOMP_QUERY_UNION_QUERY_H_
#define RELCOMP_QUERY_UNION_QUERY_H_

#include <string>
#include <vector>

#include "query/conjunctive_query.h"

namespace relcomp {

/// A union of conjunctive queries (UCQ): Q1 ∪ ... ∪ Qk, all of the same
/// arity. A single-disjunct UCQ is exactly a CQ.
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::vector<ConjunctiveQuery>& mutable_disjuncts() { return disjuncts_; }
  void AddDisjunct(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }

  size_t arity() const {
    return disjuncts_.empty() ? 0 : disjuncts_.front().arity();
  }
  bool IsConjunctive() const { return disjuncts_.size() == 1; }

  /// Validates each disjunct and checks all arities agree.
  Status Validate(const Schema& schema) const;

  /// All constants across all disjuncts.
  std::set<Value> Constants() const;

  /// One rule per line.
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_UNION_QUERY_H_
