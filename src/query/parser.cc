#include "query/parser.h"

#include <cctype>
#include <map>
#include <set>
#include <vector>

#include "util/str.h"

namespace relcomp {
namespace {

enum class TokKind {
  kIdent,
  kInt,
  kString,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kRuleArrow,   // :-
  kDefine,      // :=
  kEq,          // =
  kNe,          // !=
  kAnd,         // &
  kOr,          // |
  kNot,         // !
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  // ident or string payload
  int64_t int_value = 0;
  size_t pos = 0;
};

/// Hostile-input guards: the formula grammar is recursive (parens, !,
/// quantifiers), so unchecked depth is a stack overflow on inputs like
/// "((((…" or "!!!!…"; argument lists bound the arities fed into
/// schemas and tableaux downstream. Both overruns must surface as
/// kInvalidArgument with an offset, never as a crash.
constexpr size_t kMaxFormulaDepth = 256;
constexpr size_t kMaxArgs = 4096;

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Status Tokenize(std::vector<Token>* out) {
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '%') {  // line comment
        while (i < input_.size() && input_[i] != '\n') ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[j])) ||
                input_[j] == '_' || input_[j] == '$')) {
          ++j;
        }
        out->push_back({TokKind::kIdent,
                        std::string(input_.substr(i, j - i)), 0, start});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
        size_t j = i + 1;
        while (j < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[j]))) {
          ++j;
        }
        int64_t value = 0;
        if (!ParseInt64(input_.substr(i, j - i), &value)) {
          return Status::InvalidArgument(
              StrCat("bad integer literal at offset ", i));
        }
        out->push_back({TokKind::kInt, "", value, start});
        i = j;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        size_t j = i + 1;
        std::string payload;
        while (j < input_.size() && input_[j] != quote) {
          payload.push_back(input_[j]);
          ++j;
        }
        if (j >= input_.size()) {
          return Status::InvalidArgument(
              StrCat("unterminated string literal at offset ", i));
        }
        out->push_back({TokKind::kString, std::move(payload), 0, start});
        i = j + 1;
        continue;
      }
      switch (c) {
        case '(':
          out->push_back({TokKind::kLParen, "", 0, start});
          ++i;
          continue;
        case ')':
          out->push_back({TokKind::kRParen, "", 0, start});
          ++i;
          continue;
        case ',':
          out->push_back({TokKind::kComma, "", 0, start});
          ++i;
          continue;
        case '.':
          out->push_back({TokKind::kDot, "", 0, start});
          ++i;
          continue;
        case '&':
          out->push_back({TokKind::kAnd, "", 0, start});
          ++i;
          continue;
        case '|':
          out->push_back({TokKind::kOr, "", 0, start});
          ++i;
          continue;
        case '=':
          out->push_back({TokKind::kEq, "", 0, start});
          ++i;
          continue;
        case '!':
          if (i + 1 < input_.size() && input_[i + 1] == '=') {
            out->push_back({TokKind::kNe, "", 0, start});
            i += 2;
          } else {
            out->push_back({TokKind::kNot, "", 0, start});
            ++i;
          }
          continue;
        case ':':
          if (i + 1 < input_.size() && input_[i + 1] == '-') {
            out->push_back({TokKind::kRuleArrow, "", 0, start});
            i += 2;
            continue;
          }
          if (i + 1 < input_.size() && input_[i + 1] == '=') {
            out->push_back({TokKind::kDefine, "", 0, start});
            i += 2;
            continue;
          }
          return Status::InvalidArgument(
              StrCat("stray ':' at offset ", i));
        default:
          return Status::InvalidArgument(
              StrCat("unexpected character '", std::string(1, c),
                     "' at offset ", i));
      }
    }
    out->push_back({TokKind::kEnd, "", 0, input_.size()});
    return Status::OK();
  }

 private:
  std::string_view input_;
};

/// Shared cursor over the token stream.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool TryConsume(TokKind kind) {
    if (Peek().kind != kind) return false;
    Next();
    return true;
  }

  Status Expect(TokKind kind, const char* what) {
    if (!TryConsume(kind)) {
      return Status::InvalidArgument(
          StrCat("expected ", what, " at offset ", Peek().pos));
    }
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Parses a term. Anonymous `_` variables get unique names `_anon$k`.
Result<Term> ParseTerm(Cursor* cur, int* anon_counter) {
  const Token& t = cur->Next();
  switch (t.kind) {
    case TokKind::kIdent:
      if (t.text == "_") {
        return Term::Var(StrCat("_anon$", (*anon_counter)++));
      }
      return Term::Var(t.text);
    case TokKind::kInt:
      return Term::ConstInt(t.int_value);
    case TokKind::kString:
      return Term::ConstStr(t.text);
    default:
      return Status::InvalidArgument(
          StrCat("expected term at offset ", t.pos));
  }
}

/// Parses `Pred(t1, ..., tk)`; the predicate name was already consumed.
Result<std::vector<Term>> ParseArgList(Cursor* cur, int* anon_counter) {
  RELCOMP_RETURN_NOT_OK(cur->Expect(TokKind::kLParen, "'('"));
  std::vector<Term> args;
  if (cur->TryConsume(TokKind::kRParen)) return args;
  while (true) {
    if (args.size() >= kMaxArgs) {
      return Status::InvalidArgument(
          StrCat("argument list exceeds ", kMaxArgs, " terms at offset ",
                 cur->Peek().pos));
    }
    RELCOMP_ASSIGN_OR_RETURN(Term t, ParseTerm(cur, anon_counter));
    args.push_back(std::move(t));
    if (cur->TryConsume(TokKind::kRParen)) break;
    RELCOMP_RETURN_NOT_OK(cur->Expect(TokKind::kComma, "',' or ')'"));
  }
  return args;
}

/// Parses one body atom: relation atom or comparison.
Result<Atom> ParseBodyAtom(Cursor* cur, int* anon_counter) {
  // Lookahead: IDENT '(' => relation atom; otherwise a comparison whose
  // lhs is a term.
  if (cur->Peek().kind == TokKind::kIdent) {
    Token ident = cur->Next();
    if (cur->Peek().kind == TokKind::kLParen) {
      RELCOMP_ASSIGN_OR_RETURN(std::vector<Term> args,
                               ParseArgList(cur, anon_counter));
      return Atom::Relation(ident.text, std::move(args));
    }
    // Comparison with variable lhs.
    Term lhs = ident.text == "_"
                   ? Term::Var(StrCat("_anon$", (*anon_counter)++))
                   : Term::Var(ident.text);
    if (cur->TryConsume(TokKind::kEq)) {
      RELCOMP_ASSIGN_OR_RETURN(Term rhs, ParseTerm(cur, anon_counter));
      return Atom::Eq(std::move(lhs), std::move(rhs));
    }
    if (cur->TryConsume(TokKind::kNe)) {
      RELCOMP_ASSIGN_OR_RETURN(Term rhs, ParseTerm(cur, anon_counter));
      return Atom::Ne(std::move(lhs), std::move(rhs));
    }
    return Status::InvalidArgument(
        StrCat("expected '(', '=' or '!=' after identifier at offset ",
               cur->Peek().pos));
  }
  RELCOMP_ASSIGN_OR_RETURN(Term lhs, ParseTerm(cur, anon_counter));
  if (cur->TryConsume(TokKind::kEq)) {
    RELCOMP_ASSIGN_OR_RETURN(Term rhs, ParseTerm(cur, anon_counter));
    return Atom::Eq(std::move(lhs), std::move(rhs));
  }
  RELCOMP_RETURN_NOT_OK(cur->Expect(TokKind::kNe, "'=' or '!='"));
  RELCOMP_ASSIGN_OR_RETURN(Term rhs, ParseTerm(cur, anon_counter));
  return Atom::Ne(std::move(lhs), std::move(rhs));
}

/// Parses one rule `Head(args) :- body.` (trailing '.' optional at EOF).
Result<DatalogRule> ParseRule(Cursor* cur, int* anon_counter) {
  if (cur->Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument(
        StrCat("expected rule head at offset ", cur->Peek().pos));
  }
  DatalogRule rule;
  rule.head_predicate = cur->Next().text;
  RELCOMP_ASSIGN_OR_RETURN(rule.head_args, ParseArgList(cur, anon_counter));
  RELCOMP_RETURN_NOT_OK(cur->Expect(TokKind::kRuleArrow, "':-'"));
  // Empty body allowed: `Q() :- .` or `Q() :- true` is written as no atoms;
  // we accept an immediately following '.' for an empty (always-true) body.
  while (cur->Peek().kind != TokKind::kDot && !cur->AtEnd()) {
    RELCOMP_ASSIGN_OR_RETURN(Atom a, ParseBodyAtom(cur, anon_counter));
    rule.body.push_back(std::move(a));
    if (!cur->TryConsume(TokKind::kComma)) break;
  }
  cur->TryConsume(TokKind::kDot);
  return rule;
}

Result<std::vector<DatalogRule>> ParseRuleList(std::string_view text) {
  std::vector<Token> tokens;
  RELCOMP_RETURN_NOT_OK(Lexer(text).Tokenize(&tokens));
  Cursor cur(std::move(tokens));
  std::vector<DatalogRule> rules;
  int anon_counter = 0;
  while (!cur.AtEnd()) {
    RELCOMP_ASSIGN_OR_RETURN(DatalogRule r, ParseRule(&cur, &anon_counter));
    rules.push_back(std::move(r));
  }
  if (rules.empty()) {
    return Status::InvalidArgument("no rules found");
  }
  return rules;
}

// ---------------------------------------------------------------------------
// FO formula parsing: precedence ! > & > |, quantifiers extend right.

Result<FormulaPtr> ParseFormula(Cursor* cur, int* anon_counter, size_t depth);

Result<FormulaPtr> ParseFormulaPrimary(Cursor* cur, int* anon_counter,
                                       size_t depth) {
  const Token& t = cur->Peek();
  if (depth > kMaxFormulaDepth) {
    return Status::InvalidArgument(
        StrCat("formula nesting exceeds depth ", kMaxFormulaDepth,
               " at offset ", t.pos));
  }
  if (t.kind == TokKind::kNot) {
    cur->Next();
    RELCOMP_ASSIGN_OR_RETURN(
        FormulaPtr sub, ParseFormulaPrimary(cur, anon_counter, depth + 1));
    return Formula::MakeNot(std::move(sub));
  }
  if (t.kind == TokKind::kLParen) {
    cur->Next();
    RELCOMP_ASSIGN_OR_RETURN(FormulaPtr sub,
                             ParseFormula(cur, anon_counter, depth + 1));
    RELCOMP_RETURN_NOT_OK(cur->Expect(TokKind::kRParen, "')'"));
    return sub;
  }
  if (t.kind == TokKind::kIdent &&
      (t.text == "exists" || t.text == "forall")) {
    bool is_exists = t.text == "exists";
    cur->Next();
    std::vector<std::string> vars;
    while (cur->Peek().kind == TokKind::kIdent) {
      vars.push_back(cur->Next().text);
      if (!cur->TryConsume(TokKind::kComma)) break;
    }
    if (vars.empty()) {
      return Status::InvalidArgument(
          StrCat("quantifier without variables at offset ", t.pos));
    }
    RELCOMP_RETURN_NOT_OK(cur->Expect(TokKind::kDot, "'.'"));
    RELCOMP_ASSIGN_OR_RETURN(FormulaPtr sub,
                             ParseFormula(cur, anon_counter, depth + 1));
    return is_exists ? Formula::MakeExists(std::move(vars), std::move(sub))
                     : Formula::MakeForall(std::move(vars), std::move(sub));
  }
  // Otherwise: an atom (relation or comparison).
  RELCOMP_ASSIGN_OR_RETURN(Atom a, ParseBodyAtom(cur, anon_counter));
  return Formula::MakeAtom(std::move(a));
}

Result<FormulaPtr> ParseFormulaAnd(Cursor* cur, int* anon_counter,
                                   size_t depth) {
  RELCOMP_ASSIGN_OR_RETURN(FormulaPtr first,
                           ParseFormulaPrimary(cur, anon_counter, depth));
  std::vector<FormulaPtr> children = {std::move(first)};
  while (cur->TryConsume(TokKind::kAnd)) {
    RELCOMP_ASSIGN_OR_RETURN(FormulaPtr next,
                             ParseFormulaPrimary(cur, anon_counter, depth));
    children.push_back(std::move(next));
  }
  if (children.size() == 1) return std::move(children.front());
  return Formula::MakeAnd(std::move(children));
}

Result<FormulaPtr> ParseFormula(Cursor* cur, int* anon_counter, size_t depth) {
  RELCOMP_ASSIGN_OR_RETURN(FormulaPtr first,
                           ParseFormulaAnd(cur, anon_counter, depth));
  std::vector<FormulaPtr> children = {std::move(first)};
  while (cur->TryConsume(TokKind::kOr)) {
    RELCOMP_ASSIGN_OR_RETURN(FormulaPtr next,
                             ParseFormulaAnd(cur, anon_counter, depth));
    children.push_back(std::move(next));
  }
  if (children.size() == 1) return std::move(children.front());
  return Formula::MakeOr(std::move(children));
}

}  // namespace

Result<ConjunctiveQuery> ParseConjunctiveQuery(std::string_view text) {
  RELCOMP_ASSIGN_OR_RETURN(std::vector<DatalogRule> rules,
                           ParseRuleList(text));
  if (rules.size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one rule for a CQ, got ", rules.size()));
  }
  DatalogRule& r = rules.front();
  return ConjunctiveQuery(r.head_predicate, std::move(r.head_args),
                          std::move(r.body));
}

Result<UnionQuery> ParseUnionQuery(std::string_view text) {
  RELCOMP_ASSIGN_OR_RETURN(std::vector<DatalogRule> rules,
                           ParseRuleList(text));
  UnionQuery out;
  out.set_name(rules.front().head_predicate);
  for (DatalogRule& r : rules) {
    if (r.head_predicate != out.name()) {
      return Status::InvalidArgument(
          StrCat("UCQ rules must share one head predicate; got ",
                 out.name(), " and ", r.head_predicate));
    }
    out.AddDisjunct(ConjunctiveQuery(r.head_predicate, std::move(r.head_args),
                                     std::move(r.body)));
  }
  return out;
}

Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           std::string output) {
  RELCOMP_ASSIGN_OR_RETURN(std::vector<DatalogRule> rules,
                           ParseRuleList(text));
  DatalogProgram program;
  program.set_output_predicate(output.empty() ? rules.front().head_predicate
                                              : std::move(output));
  for (DatalogRule& r : rules) program.AddRule(std::move(r));
  return program;
}

Result<FoQuery> ParseFoQuery(std::string_view text) {
  std::vector<Token> tokens;
  RELCOMP_RETURN_NOT_OK(Lexer(text).Tokenize(&tokens));
  Cursor cur(std::move(tokens));
  int anon_counter = 0;
  if (cur.Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected query name");
  }
  std::string name = cur.Next().text;
  RELCOMP_ASSIGN_OR_RETURN(std::vector<Term> head_terms,
                           ParseArgList(&cur, &anon_counter));
  std::vector<std::string> head_vars;
  for (const Term& t : head_terms) {
    if (!t.is_variable()) {
      return Status::InvalidArgument(
          "FO query heads must consist of variables");
    }
    head_vars.push_back(t.var());
  }
  RELCOMP_RETURN_NOT_OK(cur.Expect(TokKind::kDefine, "':='"));
  RELCOMP_ASSIGN_OR_RETURN(FormulaPtr formula,
                           ParseFormula(&cur, &anon_counter, /*depth=*/0));
  cur.TryConsume(TokKind::kDot);
  if (!cur.AtEnd()) {
    return Status::InvalidArgument(
        StrCat("trailing input at offset ", cur.Peek().pos));
  }
  return FoQuery(std::move(name), std::move(head_vars), std::move(formula));
}

Result<AnyQuery> ParseQuery(std::string_view text, QueryLanguage lang) {
  switch (lang) {
    case QueryLanguage::kCq: {
      RELCOMP_ASSIGN_OR_RETURN(ConjunctiveQuery q,
                               ParseConjunctiveQuery(text));
      return AnyQuery::Cq(std::move(q));
    }
    case QueryLanguage::kUcq: {
      RELCOMP_ASSIGN_OR_RETURN(UnionQuery q, ParseUnionQuery(text));
      return AnyQuery::Ucq(std::move(q));
    }
    case QueryLanguage::kPositive: {
      RELCOMP_ASSIGN_OR_RETURN(FoQuery q, ParseFoQuery(text));
      if (!q.IsPositiveExistential()) {
        return Status::InvalidArgument(
            "formula uses ! or forall; not in EFO+");
      }
      return AnyQuery::Positive(std::move(q));
    }
    case QueryLanguage::kFo: {
      RELCOMP_ASSIGN_OR_RETURN(FoQuery q, ParseFoQuery(text));
      return AnyQuery::Fo(std::move(q));
    }
    case QueryLanguage::kDatalog: {
      RELCOMP_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalogProgram(text));
      return AnyQuery::Fp(std::move(p));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace relcomp
