#include "query/union_query.h"

#include "util/str.h"

namespace relcomp {

Status UnionQuery::Validate(const Schema& schema) const {
  if (disjuncts_.empty()) {
    return Status::InvalidArgument("UCQ must have at least one disjunct");
  }
  size_t arity = disjuncts_.front().arity();
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (q.arity() != arity) {
      return Status::InvalidArgument(
          StrCat("UCQ disjunct arity mismatch: ", q.arity(), " vs ", arity));
    }
    RELCOMP_RETURN_NOT_OK(q.Validate(schema));
  }
  return Status::OK();
}

std::set<Value> UnionQuery::Constants() const {
  std::set<Value> consts;
  for (const ConjunctiveQuery& q : disjuncts_) {
    std::set<Value> qc = q.Constants();
    consts.insert(qc.begin(), qc.end());
  }
  return consts;
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (const ConjunctiveQuery& q : disjuncts_) {
    out += q.ToString();
    out.push_back('\n');
  }
  return out;
}

}  // namespace relcomp
