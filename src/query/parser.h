#ifndef RELCOMP_QUERY_PARSER_H_
#define RELCOMP_QUERY_PARSER_H_

#include <string>
#include <string_view>

#include "query/any_query.h"
#include "util/status.h"

namespace relcomp {

/// Text syntax for queries.
///
/// Rule syntax (CQ / UCQ / datalog):
///
///   Q(x) :- Cust(x, n, cc, a, p), Supt(e, d, x), cc = "01".
///   Q(x) :- Vip(x).
///   Above(x) :- Manage(x, "e0").
///   Above(x) :- Manage(x, y), Above(y).
///
/// * identifiers are variables; `_` is an anonymous variable;
/// * numbers and quoted strings are constants;
/// * `%` starts a line comment; the trailing `.` per rule is optional;
/// * several rules with the same head predicate form a UCQ, and rules
///   whose bodies mention head predicates form a datalog program.
///
/// FO formula syntax:
///
///   Q(x) := exists y. (R(x, y) & !(S(y) | x = y))
///
/// with `!` > `&` > `|` precedence and `exists`/`forall` binding as far
/// right as possible.

/// Parses a single rule as a conjunctive query.
Result<ConjunctiveQuery> ParseConjunctiveQuery(std::string_view text);

/// Parses one or more rules with a common head predicate as a UCQ.
Result<UnionQuery> ParseUnionQuery(std::string_view text);

/// Parses rules as a datalog program. The output predicate defaults to
/// the head of the first rule; pass `output` to override.
Result<DatalogProgram> ParseDatalogProgram(std::string_view text,
                                           std::string output = "");

/// Parses "Name(v1, ..., vk) := formula" as an FO query.
Result<FoQuery> ParseFoQuery(std::string_view text);

/// Parses `text` in the syntax appropriate for `lang` and wraps it.
/// For kPositive the formula must be in ∃FO+ (checked).
Result<AnyQuery> ParseQuery(std::string_view text, QueryLanguage lang);

}  // namespace relcomp

#endif  // RELCOMP_QUERY_PARSER_H_
