#ifndef RELCOMP_QUERY_TERM_H_
#define RELCOMP_QUERY_TERM_H_

#include <ostream>
#include <string>
#include <string_view>

#include "relational/value.h"

namespace relcomp {

/// A term of a query: either a constant value or a named variable.
class Term {
 public:
  enum class Kind : uint8_t { kConstant, kVariable };

  /// Default-constructs the constant 0.
  Term() : kind_(Kind::kConstant) {}

  static Term Const(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.value_ = std::move(v);
    return t;
  }
  static Term ConstInt(int64_t v) { return Const(Value::Int(v)); }
  static Term ConstStr(std::string_view v) { return Const(Value::Str(v)); }

  static Term Var(std::string_view name) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.var_ = std::string(name);
    return t;
  }

  Kind kind() const { return kind_; }
  bool is_constant() const { return kind_ == Kind::kConstant; }
  bool is_variable() const { return kind_ == Kind::kVariable; }

  /// Precondition: is_constant().
  const Value& value() const { return value_; }
  /// Precondition: is_variable().
  const std::string& var() const { return var_; }

  bool operator==(const Term& other) const {
    if (kind_ != other.kind_) return false;
    return is_constant() ? value_ == other.value_ : var_ == other.var_;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
  bool operator<(const Term& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    return is_constant() ? value_ < other.value_ : var_ < other.var_;
  }

  /// Variables print as their name, constants via Value::ToString().
  std::string ToString() const {
    return is_constant() ? value_.ToString() : var_;
  }

 private:
  Kind kind_;
  Value value_;
  std::string var_;
};

std::ostream& operator<<(std::ostream& os, const Term& t);

}  // namespace relcomp

#endif  // RELCOMP_QUERY_TERM_H_
