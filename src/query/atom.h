#ifndef RELCOMP_QUERY_ATOM_H_
#define RELCOMP_QUERY_ATOM_H_

#include <set>
#include <string>
#include <vector>

#include "query/term.h"

namespace relcomp {

/// Comparison operators available in all the paper's languages
/// (CQ and up all include equality `=` and inequality `!=`).
enum class CmpOp : uint8_t { kEq, kNe };

/// A body atom: either a relation atom R(t1, ..., tk) or a built-in
/// comparison t1 = t2 / t1 != t2.
class Atom {
 public:
  enum class Kind : uint8_t { kRelation, kComparison };

  static Atom Relation(std::string relation, std::vector<Term> args) {
    Atom a;
    a.kind_ = Kind::kRelation;
    a.relation_ = std::move(relation);
    a.args_ = std::move(args);
    return a;
  }
  static Atom Compare(CmpOp op, Term lhs, Term rhs) {
    Atom a;
    a.kind_ = Kind::kComparison;
    a.op_ = op;
    a.args_ = {std::move(lhs), std::move(rhs)};
    return a;
  }
  static Atom Eq(Term lhs, Term rhs) {
    return Compare(CmpOp::kEq, std::move(lhs), std::move(rhs));
  }
  static Atom Ne(Term lhs, Term rhs) {
    return Compare(CmpOp::kNe, std::move(lhs), std::move(rhs));
  }

  Kind kind() const { return kind_; }
  bool is_relation() const { return kind_ == Kind::kRelation; }
  bool is_comparison() const { return kind_ == Kind::kComparison; }

  /// Precondition: is_relation().
  const std::string& relation() const { return relation_; }
  /// Relation arguments, or the two comparison operands.
  const std::vector<Term>& args() const { return args_; }
  std::vector<Term>& mutable_args() { return args_; }

  /// Precondition: is_comparison().
  CmpOp op() const { return op_; }
  const Term& lhs() const { return args_[0]; }
  const Term& rhs() const { return args_[1]; }

  /// Adds the names of all variables occurring in this atom to `out`.
  void CollectVariables(std::set<std::string>* out) const;

  bool operator==(const Atom& other) const {
    return kind_ == other.kind_ && relation_ == other.relation_ &&
           op_ == other.op_ && args_ == other.args_;
  }

  /// "R(x, 1)" or "x != y".
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kRelation;
  std::string relation_;
  CmpOp op_ = CmpOp::kEq;
  std::vector<Term> args_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_ATOM_H_
