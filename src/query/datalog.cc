#include "query/datalog.h"

#include "util/str.h"

namespace relcomp {

std::string DatalogRule::ToString() const {
  std::string out = head_predicate;
  out.push_back('(');
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_args[i].ToString();
  }
  out += ") :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  return out;
}

std::set<std::string> DatalogProgram::IdbPredicates() const {
  std::set<std::string> idb;
  for (const DatalogRule& r : rules_) idb.insert(r.head_predicate);
  return idb;
}

int DatalogProgram::IdbArity(const std::string& predicate) const {
  for (const DatalogRule& r : rules_) {
    if (r.head_predicate == predicate) {
      return static_cast<int>(r.head_args.size());
    }
  }
  return -1;
}

std::set<Value> DatalogProgram::Constants() const {
  std::set<Value> consts;
  for (const DatalogRule& r : rules_) {
    for (const Term& t : r.head_args) {
      if (t.is_constant()) consts.insert(t.value());
    }
    for (const Atom& a : r.body) {
      for (const Term& t : a.args()) {
        if (t.is_constant()) consts.insert(t.value());
      }
    }
  }
  return consts;
}

Status DatalogProgram::Validate(const Schema& schema) const {
  if (rules_.empty()) {
    return Status::InvalidArgument("datalog program has no rules");
  }
  std::set<std::string> idb = IdbPredicates();
  for (const std::string& p : idb) {
    if (schema.HasRelation(p)) {
      return Status::InvalidArgument(
          StrCat("IDB predicate ", p, " collides with an EDB relation"));
    }
  }
  // Determine arities: first-seen head arity per IDB predicate.
  std::map<std::string, size_t> arity;
  for (const DatalogRule& r : rules_) {
    auto [it, inserted] = arity.emplace(r.head_predicate, r.head_args.size());
    if (!inserted && it->second != r.head_args.size()) {
      return Status::InvalidArgument(
          StrCat("inconsistent arity for IDB predicate ", r.head_predicate));
    }
  }
  for (const DatalogRule& r : rules_) {
    std::set<std::string> positive_vars;
    for (const Atom& a : r.body) {
      if (!a.is_relation()) continue;
      size_t want;
      if (const RelationSchema* rs = schema.FindRelation(a.relation())) {
        want = rs->arity();
      } else if (auto it = arity.find(a.relation()); it != arity.end()) {
        want = it->second;
      } else {
        return Status::InvalidArgument(
            StrCat("unknown predicate in rule body: ", a.relation()));
      }
      if (a.args().size() != want) {
        return Status::InvalidArgument(
            StrCat("arity mismatch in atom ", a.ToString(), " (want ", want,
                   " args)"));
      }
      for (const Term& t : a.args()) {
        if (t.is_variable()) positive_vars.insert(t.var());
      }
    }
    auto check_safe = [&](const Term& t, const char* where) -> Status {
      if (t.is_variable() && positive_vars.count(t.var()) == 0) {
        return Status::InvalidArgument(
            StrCat("unsafe rule (", where, " variable ", t.var(),
                   " unbound): ", r.ToString()));
      }
      return Status::OK();
    };
    for (const Term& t : r.head_args) {
      RELCOMP_RETURN_NOT_OK(check_safe(t, "head"));
    }
    for (const Atom& a : r.body) {
      if (!a.is_comparison()) continue;
      RELCOMP_RETURN_NOT_OK(check_safe(a.lhs(), "comparison"));
      RELCOMP_RETURN_NOT_OK(check_safe(a.rhs(), "comparison"));
    }
  }
  if (output_predicate_.empty() || idb.count(output_predicate_) == 0) {
    return Status::InvalidArgument(
        StrCat("output predicate '", output_predicate_,
               "' is not defined by any rule"));
  }
  return Status::OK();
}

std::string DatalogProgram::ToString() const {
  std::string out = StrCat("% output: ", output_predicate_, "\n");
  for (const DatalogRule& r : rules_) {
    out += r.ToString();
    out.push_back('\n');
  }
  return out;
}

}  // namespace relcomp
