#ifndef RELCOMP_QUERY_CONJUNCTIVE_QUERY_H_
#define RELCOMP_QUERY_CONJUNCTIVE_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "query/atom.h"
#include "relational/schema.h"
#include "util/status.h"

namespace relcomp {

/// A conjunctive query (CQ) with equality and inequality:
///
///   Q(u1, ..., uk) :- A1, ..., Am
///
/// where each Ai is a relation atom or a comparison, and each head term
/// ui is a variable or a constant. Existential quantification is
/// implicit for body variables not occurring in the head.
///
/// This is the central query class: tableau representations (Section
/// 3.2) and the RCDP/RCQP deciders operate on CQs and unions thereof.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::string name, std::vector<Term> head,
                   std::vector<Atom> body)
      : name_(std::move(name)),
        head_(std::move(head)),
        body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Term>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  std::vector<Term>& mutable_head() { return head_; }
  std::vector<Atom>& mutable_body() { return body_; }

  size_t arity() const { return head_.size(); }
  bool IsBoolean() const { return head_.empty(); }

  void AddBodyAtom(Atom a) { body_.push_back(std::move(a)); }

  /// All variable names occurring anywhere in the query.
  std::set<std::string> Variables() const;
  /// Variables occurring in the head.
  std::set<std::string> HeadVariables() const;
  /// All constants occurring in the head or body.
  std::set<Value> Constants() const;

  /// Relation atoms of the body, in order.
  std::vector<const Atom*> RelationAtoms() const;
  /// Comparison atoms of the body, in order.
  std::vector<const Atom*> ComparisonAtoms() const;

  /// Validates the query against `schema`:
  ///  * every relation atom names a schema relation with matching arity;
  ///  * safety/range restriction: every variable occurring in the head
  ///    or in a comparison also occurs in some relation atom;
  ///  * constants respect attribute domains where they appear.
  Status Validate(const Schema& schema) const;

  /// "Q(x, y) :- R(x, z), S(z, y), z != 1".
  std::string ToString() const;

  bool operator==(const ConjunctiveQuery& other) const {
    return head_ == other.head_ && body_ == other.body_;
  }

 private:
  std::string name_;
  std::vector<Term> head_;
  std::vector<Atom> body_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_CONJUNCTIVE_QUERY_H_
