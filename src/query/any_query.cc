#include "query/any_query.h"

#include "query/positive_query.h"
#include "util/str.h"

namespace relcomp {

const char* QueryLanguageToString(QueryLanguage lang) {
  switch (lang) {
    case QueryLanguage::kCq:
      return "CQ";
    case QueryLanguage::kUcq:
      return "UCQ";
    case QueryLanguage::kPositive:
      return "EFO+";
    case QueryLanguage::kFo:
      return "FO";
    case QueryLanguage::kDatalog:
      return "FP";
  }
  return "?";
}

AnyQuery AnyQuery::Cq(ConjunctiveQuery q) {
  AnyQuery out;
  out.language_ = QueryLanguage::kCq;
  out.query_ = std::move(q);
  return out;
}

AnyQuery AnyQuery::Ucq(UnionQuery q) {
  AnyQuery out;
  out.language_ = QueryLanguage::kUcq;
  out.query_ = std::move(q);
  return out;
}

AnyQuery AnyQuery::Positive(FoQuery q) {
  AnyQuery out;
  out.language_ = QueryLanguage::kPositive;
  out.query_ = std::move(q);
  return out;
}

AnyQuery AnyQuery::Fo(FoQuery q) {
  AnyQuery out;
  out.language_ = QueryLanguage::kFo;
  out.query_ = std::move(q);
  return out;
}

AnyQuery AnyQuery::Fp(DatalogProgram p) {
  AnyQuery out;
  out.language_ = QueryLanguage::kDatalog;
  out.query_ = std::move(p);
  return out;
}

size_t AnyQuery::arity() const {
  if (const auto* cq = as_cq()) return cq->arity();
  if (const auto* ucq = as_ucq()) return ucq->arity();
  if (const auto* fo = as_fo()) return fo->arity();
  if (const auto* fp = as_fp()) {
    int a = fp->arity();
    return a < 0 ? 0 : static_cast<size_t>(a);
  }
  return 0;
}

std::string AnyQuery::name() const {
  if (const auto* cq = as_cq()) return cq->name();
  if (const auto* ucq = as_ucq()) return ucq->name();
  if (const auto* fo = as_fo()) return fo->name();
  if (const auto* fp = as_fp()) return fp->output_predicate();
  return "";
}

Status AnyQuery::Validate(const Schema& schema) const {
  if (const auto* cq = as_cq()) return cq->Validate(schema);
  if (const auto* ucq = as_ucq()) return ucq->Validate(schema);
  if (const auto* fo = as_fo()) {
    RELCOMP_RETURN_NOT_OK(fo->Validate(schema));
    if (language_ == QueryLanguage::kPositive &&
        !fo->IsPositiveExistential()) {
      return Status::InvalidArgument(
          "query tagged EFO+ uses negation or universal quantification");
    }
    return Status::OK();
  }
  if (const auto* fp = as_fp()) return fp->Validate(schema);
  return Status::Internal("empty AnyQuery");
}

std::set<Value> AnyQuery::Constants() const {
  if (const auto* cq = as_cq()) return cq->Constants();
  if (const auto* ucq = as_ucq()) return ucq->Constants();
  if (const auto* fo = as_fo()) {
    std::set<Value> out;
    if (fo->formula() != nullptr) fo->formula()->CollectConstants(&out);
    return out;
  }
  if (const auto* fp = as_fp()) return fp->Constants();
  return {};
}

Result<UnionQuery> AnyQuery::ToUnion(size_t max_disjuncts) const {
  switch (language_) {
    case QueryLanguage::kCq:
      return UnionQuery(*as_cq());
    case QueryLanguage::kUcq:
      return *as_ucq();
    case QueryLanguage::kPositive:
      return PositiveToUnion(*as_fo(), max_disjuncts);
    case QueryLanguage::kFo:
      return Status::Unsupported(
          "FO queries cannot in general be rewritten to UCQ");
    case QueryLanguage::kDatalog:
      return Status::Unsupported(
          "datalog queries cannot in general be rewritten to UCQ");
  }
  return Status::Internal("unreachable");
}

std::string AnyQuery::ToString() const {
  std::string body;
  if (const auto* cq = as_cq()) {
    body = cq->ToString();
  } else if (const auto* ucq = as_ucq()) {
    body = ucq->ToString();
  } else if (const auto* fo = as_fo()) {
    body = fo->ToString();
  } else if (const auto* fp = as_fp()) {
    body = fp->ToString();
  }
  return StrCat("[", QueryLanguageToString(language_), "] ", body);
}

}  // namespace relcomp
