#ifndef RELCOMP_QUERY_POSITIVE_QUERY_H_
#define RELCOMP_QUERY_POSITIVE_QUERY_H_

#include "query/conjunctive_query.h"
#include "query/fo_query.h"
#include "query/union_query.h"
#include "util/status.h"

namespace relcomp {

/// Conversions along the paper's language lattice CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO.

/// Embeds a CQ into the formula representation (FO / ∃FO+ view).
FoQuery CqToFoQuery(const ConjunctiveQuery& q);

/// Embeds a UCQ into the formula representation.
FoQuery UnionToFoQuery(const UnionQuery& q);

/// Unfolds a positive-existential FO query into an equivalent UCQ
/// (disjunctive normal form). This can blow up exponentially in the
/// size of the formula (the paper's Σ₂ᵖ upper-bound algorithm for ∃FO+
/// avoids the unfolding by guessing disjuncts; we expose both paths and
/// compare them in bench_ablation). Fails with kResourceExhausted if
/// more than `max_disjuncts` disjuncts would be produced, and with
/// kInvalidArgument if the query is not in ∃FO+.
Result<UnionQuery> PositiveToUnion(const FoQuery& q, size_t max_disjuncts);

}  // namespace relcomp

#endif  // RELCOMP_QUERY_POSITIVE_QUERY_H_
