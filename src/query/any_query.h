#ifndef RELCOMP_QUERY_ANY_QUERY_H_
#define RELCOMP_QUERY_ANY_QUERY_H_

#include <string>
#include <variant>

#include "query/conjunctive_query.h"
#include "query/datalog.h"
#include "query/fo_query.h"
#include "query/union_query.h"
#include "util/status.h"

namespace relcomp {

/// The query languages studied in the paper, ordered by expressiveness
/// on the CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO chain (FP is incomparable with FO).
enum class QueryLanguage : uint8_t {
  kCq,          // conjunctive queries
  kUcq,         // unions of conjunctive queries
  kPositive,    // positive existential FO (∃FO+)
  kFo,          // first-order
  kDatalog,     // datalog / fixpoint (FP)
};

/// Stable name: "CQ", "UCQ", "EFO+", "FO", "FP".
const char* QueryLanguageToString(QueryLanguage lang);

/// A query in any of the five languages; the uniform currency of the
/// containment-constraint and completeness APIs. Value type; cheap to
/// copy for the instance sizes this library targets.
class AnyQuery {
 public:
  /// Default: the Boolean CQ `Q() :- true` (returns {()} on every DB).
  AnyQuery() : language_(QueryLanguage::kCq), query_(ConjunctiveQuery()) {}

  static AnyQuery Cq(ConjunctiveQuery q);
  static AnyQuery Ucq(UnionQuery q);
  /// Precondition (checked by Validate): q.IsPositiveExistential().
  static AnyQuery Positive(FoQuery q);
  static AnyQuery Fo(FoQuery q);
  static AnyQuery Fp(DatalogProgram p);

  QueryLanguage language() const { return language_; }
  size_t arity() const;
  std::string name() const;

  /// Typed accessors; nullptr when the wrapped query has another kind.
  const ConjunctiveQuery* as_cq() const {
    return std::get_if<ConjunctiveQuery>(&query_);
  }
  const UnionQuery* as_ucq() const { return std::get_if<UnionQuery>(&query_); }
  const FoQuery* as_fo() const { return std::get_if<FoQuery>(&query_); }
  const DatalogProgram* as_fp() const {
    return std::get_if<DatalogProgram>(&query_);
  }

  /// Validates the wrapped query against the schema, including the
  /// ∃FO+ membership check for Positive-tagged queries.
  Status Validate(const Schema& schema) const;

  /// All constants occurring in the query.
  std::set<Value> Constants() const;

  /// Rewrites into an equivalent UCQ where possible (CQ, UCQ, ∃FO+ via
  /// DNF unfolding bounded by `max_disjuncts`). Fails for FO/FP.
  Result<UnionQuery> ToUnion(size_t max_disjuncts = 4096) const;

  /// True for CQ/UCQ/∃FO+ (the languages whose monotonicity the
  /// decidability results rely on).
  bool IsMonotone() const {
    return language_ != QueryLanguage::kFo;
  }

  std::string ToString() const;

 private:
  QueryLanguage language_;
  std::variant<ConjunctiveQuery, UnionQuery, FoQuery, DatalogProgram> query_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_ANY_QUERY_H_
