#include "query/positive_query.h"

#include <map>

#include "util/str.h"

namespace relcomp {

FoQuery CqToFoQuery(const ConjunctiveQuery& q) {
  // Head constants become equality atoms on fresh head variables so the
  // formula's free variables line up with the head.
  std::vector<std::string> head_vars;
  std::vector<FormulaPtr> conjuncts;
  int fresh = 0;
  for (const Term& t : q.head()) {
    if (t.is_variable()) {
      head_vars.push_back(t.var());
    } else {
      std::string hv = StrCat("_hc", fresh++);
      head_vars.push_back(hv);
      conjuncts.push_back(Formula::MakeAtom(Atom::Eq(Term::Var(hv), t)));
    }
  }
  for (const Atom& a : q.body()) conjuncts.push_back(Formula::MakeAtom(a));
  FormulaPtr body = conjuncts.empty()
                        ? Formula::MakeAnd({})
                        : (conjuncts.size() == 1 ? conjuncts.front()
                                                 : Formula::MakeAnd(conjuncts));
  // Existentially close body variables that are not in the head.
  std::set<std::string> head_set(head_vars.begin(), head_vars.end());
  std::vector<std::string> bound;
  for (const std::string& v : body->FreeVariables()) {
    if (head_set.count(v) == 0) bound.push_back(v);
  }
  if (!bound.empty()) body = Formula::MakeExists(std::move(bound), body);
  return FoQuery(q.name(), std::move(head_vars), std::move(body));
}

FoQuery UnionToFoQuery(const UnionQuery& q) {
  // All disjuncts must expose the same free variables; we canonicalize
  // each disjunct's head to shared variable names _u0.._uk and add
  // equalities binding them to the disjunct's own head terms.
  std::vector<std::string> head_vars;
  for (size_t i = 0; i < q.arity(); ++i) head_vars.push_back(StrCat("_u", i));
  std::vector<FormulaPtr> disjuncts;
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    std::vector<FormulaPtr> conjuncts;
    for (size_t i = 0; i < cq.head().size(); ++i) {
      conjuncts.push_back(Formula::MakeAtom(
          Atom::Eq(Term::Var(head_vars[i]), cq.head()[i])));
    }
    for (const Atom& a : cq.body()) conjuncts.push_back(Formula::MakeAtom(a));
    FormulaPtr body = conjuncts.size() == 1 ? conjuncts.front()
                                            : Formula::MakeAnd(conjuncts);
    std::set<std::string> head_set(head_vars.begin(), head_vars.end());
    std::vector<std::string> bound;
    for (const std::string& v : body->FreeVariables()) {
      if (head_set.count(v) == 0) bound.push_back(v);
    }
    if (!bound.empty()) body = Formula::MakeExists(std::move(bound), body);
    disjuncts.push_back(body);
  }
  FormulaPtr formula = disjuncts.size() == 1 ? disjuncts.front()
                                             : Formula::MakeOr(disjuncts);
  return FoQuery(q.name(), std::move(head_vars), std::move(formula));
}

namespace {

/// A partial DNF: a list of conjunct lists.
using Dnf = std::vector<std::vector<Atom>>;

Term Rename(const Term& t, const std::map<std::string, std::string>& rename) {
  if (!t.is_variable()) return t;
  auto it = rename.find(t.var());
  return it == rename.end() ? t : Term::Var(it->second);
}

Atom RenameAtom(const Atom& a,
                const std::map<std::string, std::string>& rename) {
  if (a.is_relation()) {
    std::vector<Term> args;
    args.reserve(a.args().size());
    for (const Term& t : a.args()) args.push_back(Rename(t, rename));
    return Atom::Relation(a.relation(), std::move(args));
  }
  return Atom::Compare(a.op(), Rename(a.lhs(), rename),
                       Rename(a.rhs(), rename));
}

Status UnfoldDnf(const Formula& f, std::map<std::string, std::string> rename,
                 int* fresh_counter, size_t max_disjuncts, Dnf* out) {
  switch (f.kind()) {
    case Formula::Kind::kAtom:
      out->push_back({RenameAtom(f.atom(), rename)});
      return Status::OK();
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f.children()) {
        Dnf sub;
        RELCOMP_RETURN_NOT_OK(
            UnfoldDnf(*c, rename, fresh_counter, max_disjuncts, &sub));
        for (auto& conj : sub) out->push_back(std::move(conj));
        if (out->size() > max_disjuncts) {
          return Status::ResourceExhausted(
              StrCat("DNF unfolding exceeded ", max_disjuncts, " disjuncts"));
        }
      }
      return Status::OK();
    }
    case Formula::Kind::kAnd: {
      Dnf acc = {{}};
      for (const FormulaPtr& c : f.children()) {
        Dnf sub;
        RELCOMP_RETURN_NOT_OK(
            UnfoldDnf(*c, rename, fresh_counter, max_disjuncts, &sub));
        Dnf next;
        for (const auto& left : acc) {
          for (const auto& right : sub) {
            std::vector<Atom> merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (next.size() > max_disjuncts) {
              return Status::ResourceExhausted(StrCat(
                  "DNF unfolding exceeded ", max_disjuncts, " disjuncts"));
            }
          }
        }
        acc = std::move(next);
      }
      for (auto& conj : acc) out->push_back(std::move(conj));
      return Status::OK();
    }
    case Formula::Kind::kExists: {
      // Rename bound variables apart so distinct quantifier scopes do
      // not collide once flattened into one CQ body.
      for (const std::string& v : f.quantified_vars()) {
        rename[v] = StrCat(v, "$", (*fresh_counter)++);
      }
      return UnfoldDnf(*f.children().front(), std::move(rename),
                       fresh_counter, max_disjuncts, out);
    }
    case Formula::Kind::kNot:
    case Formula::Kind::kForall:
      return Status::InvalidArgument(
          "formula is not positive-existential (contains ! or forall)");
  }
  return Status::Internal("unreachable formula kind");
}

}  // namespace

Result<UnionQuery> PositiveToUnion(const FoQuery& q, size_t max_disjuncts) {
  if (q.formula() == nullptr) {
    return Status::InvalidArgument("query has no formula");
  }
  Dnf dnf;
  int fresh_counter = 0;
  RELCOMP_RETURN_NOT_OK(UnfoldDnf(*q.formula(), {}, &fresh_counter,
                                  max_disjuncts, &dnf));
  std::vector<Term> head;
  head.reserve(q.head_vars().size());
  for (const std::string& v : q.head_vars()) head.push_back(Term::Var(v));
  UnionQuery out;
  out.set_name(q.name());
  int disjunct_id = 0;
  for (auto& conj : dnf) {
    ConjunctiveQuery cq(StrCat(q.name(), "#", disjunct_id++), head,
                        std::move(conj));
    out.AddDisjunct(std::move(cq));
  }
  if (out.disjuncts().empty()) {
    return Status::InvalidArgument("DNF unfolding produced no disjuncts");
  }
  return out;
}

}  // namespace relcomp
