#include "query/conjunctive_query.h"

#include "util/str.h"

namespace relcomp {

std::set<std::string> ConjunctiveQuery::Variables() const {
  std::set<std::string> vars;
  for (const Term& t : head_) {
    if (t.is_variable()) vars.insert(t.var());
  }
  for (const Atom& a : body_) a.CollectVariables(&vars);
  return vars;
}

std::set<std::string> ConjunctiveQuery::HeadVariables() const {
  std::set<std::string> vars;
  for (const Term& t : head_) {
    if (t.is_variable()) vars.insert(t.var());
  }
  return vars;
}

std::set<Value> ConjunctiveQuery::Constants() const {
  std::set<Value> consts;
  for (const Term& t : head_) {
    if (t.is_constant()) consts.insert(t.value());
  }
  for (const Atom& a : body_) {
    for (const Term& t : a.args()) {
      if (t.is_constant()) consts.insert(t.value());
    }
  }
  return consts;
}

std::vector<const Atom*> ConjunctiveQuery::RelationAtoms() const {
  std::vector<const Atom*> atoms;
  for (const Atom& a : body_) {
    if (a.is_relation()) atoms.push_back(&a);
  }
  return atoms;
}

std::vector<const Atom*> ConjunctiveQuery::ComparisonAtoms() const {
  std::vector<const Atom*> atoms;
  for (const Atom& a : body_) {
    if (a.is_comparison()) atoms.push_back(&a);
  }
  return atoms;
}

Status ConjunctiveQuery::Validate(const Schema& schema) const {
  std::set<std::string> positive_vars;
  for (const Atom& a : body_) {
    if (!a.is_relation()) continue;
    const RelationSchema* rs = schema.FindRelation(a.relation());
    if (rs == nullptr) {
      return Status::InvalidArgument(
          StrCat("unknown relation in query body: ", a.relation()));
    }
    if (a.args().size() != rs->arity()) {
      return Status::InvalidArgument(
          StrCat("arity mismatch in atom ", a.ToString(), ": relation ",
                 a.relation(), " has arity ", rs->arity()));
    }
    for (size_t i = 0; i < a.args().size(); ++i) {
      const Term& t = a.args()[i];
      if (t.is_variable()) {
        positive_vars.insert(t.var());
      } else if (!rs->attribute(i).domain->Contains(t.value())) {
        return Status::InvalidArgument(
            StrCat("constant ", t.value().ToString(), " not in domain of ",
                   a.relation(), ".", rs->attribute(i).name));
      }
    }
  }
  for (const Term& t : head_) {
    if (t.is_variable() && positive_vars.count(t.var()) == 0) {
      return Status::InvalidArgument(
          StrCat("unsafe query: head variable ", t.var(),
                 " does not occur in any relation atom"));
    }
  }
  for (const Atom& a : body_) {
    if (!a.is_comparison()) continue;
    for (const Term& t : a.args()) {
      if (t.is_variable() && positive_vars.count(t.var()) == 0) {
        return Status::InvalidArgument(
            StrCat("unsafe query: comparison variable ", t.var(),
                   " does not occur in any relation atom"));
      }
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = name_.empty() ? "Q" : name_;
  out.push_back('(');
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i].ToString();
  }
  out += ") :- ";
  if (body_.empty()) {
    out += "true";
  } else {
    for (size_t i = 0; i < body_.size(); ++i) {
      if (i > 0) out += ", ";
      out += body_[i].ToString();
    }
  }
  return out;
}

}  // namespace relcomp
