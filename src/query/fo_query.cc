#include "query/fo_query.h"

#include <algorithm>

#include "util/str.h"

namespace relcomp {

FormulaPtr Formula::MakeAtom(Atom atom) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAtom;
  f->atom_ = std::move(atom);
  return f;
}

FormulaPtr Formula::MakeAnd(std::vector<FormulaPtr> children) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kAnd;
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::MakeOr(std::vector<FormulaPtr> children) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kOr;
  f->children_ = std::move(children);
  return f;
}

FormulaPtr Formula::MakeNot(FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kNot;
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::MakeExists(std::vector<std::string> vars,
                               FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kExists;
  f->vars_ = std::move(vars);
  f->children_ = {std::move(child)};
  return f;
}

FormulaPtr Formula::MakeForall(std::vector<std::string> vars,
                               FormulaPtr child) {
  auto f = std::shared_ptr<Formula>(new Formula());
  f->kind_ = Kind::kForall;
  f->vars_ = std::move(vars);
  f->children_ = {std::move(child)};
  return f;
}

std::set<std::string> Formula::FreeVariables() const {
  std::set<std::string> free;
  switch (kind_) {
    case Kind::kAtom:
      atom_.CollectVariables(&free);
      break;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const FormulaPtr& c : children_) {
        std::set<std::string> sub = c->FreeVariables();
        free.insert(sub.begin(), sub.end());
      }
      break;
    case Kind::kExists:
    case Kind::kForall: {
      free = children_.front()->FreeVariables();
      for (const std::string& v : vars_) free.erase(v);
      break;
    }
  }
  return free;
}

void Formula::CollectConstants(std::set<Value>* out) const {
  if (kind_ == Kind::kAtom) {
    for (const Term& t : atom_.args()) {
      if (t.is_constant()) out->insert(t.value());
    }
    return;
  }
  for (const FormulaPtr& c : children_) c->CollectConstants(out);
}

void Formula::CollectRelations(std::set<std::string>* out) const {
  if (kind_ == Kind::kAtom) {
    if (atom_.is_relation()) out->insert(atom_.relation());
    return;
  }
  for (const FormulaPtr& c : children_) c->CollectRelations(out);
}

bool Formula::IsPositiveExistential() const {
  switch (kind_) {
    case Kind::kNot:
    case Kind::kForall:
      return false;
    case Kind::kAtom:
      return true;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kExists:
      return std::all_of(children_.begin(), children_.end(),
                         [](const FormulaPtr& c) {
                           return c->IsPositiveExistential();
                         });
  }
  return false;
}

bool Formula::IsConjunctive() const {
  switch (kind_) {
    case Kind::kAtom:
      return true;
    case Kind::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [](const FormulaPtr& c) {
                           return c->IsConjunctive();
                         });
    case Kind::kExists:
      return children_.front()->IsConjunctive();
    default:
      return false;
  }
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_.ToString();
    case Kind::kAnd: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const FormulaPtr& c : children_) parts.push_back(c->ToString());
      return StrCat("(", StrJoin(parts, " & "), ")");
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const FormulaPtr& c : children_) parts.push_back(c->ToString());
      return StrCat("(", StrJoin(parts, " | "), ")");
    }
    case Kind::kNot:
      return StrCat("!", children_.front()->ToString());
    case Kind::kExists:
      return StrCat("exists ", StrJoin(vars_, ", "), ". ",
                    children_.front()->ToString());
    case Kind::kForall:
      return StrCat("forall ", StrJoin(vars_, ", "), ". ",
                    children_.front()->ToString());
  }
  return "?";
}

namespace {

Status ValidateFormula(const Formula& f, const Schema& schema) {
  if (f.kind() == Formula::Kind::kAtom) {
    const Atom& a = f.atom();
    if (!a.is_relation()) return Status::OK();
    const RelationSchema* rs = schema.FindRelation(a.relation());
    if (rs == nullptr) {
      return Status::InvalidArgument(
          StrCat("unknown relation in formula: ", a.relation()));
    }
    if (a.args().size() != rs->arity()) {
      return Status::InvalidArgument(
          StrCat("arity mismatch in atom ", a.ToString()));
    }
    return Status::OK();
  }
  for (const FormulaPtr& c : f.children()) {
    RELCOMP_RETURN_NOT_OK(ValidateFormula(*c, schema));
  }
  return Status::OK();
}

}  // namespace

Status FoQuery::Validate(const Schema& schema) const {
  if (formula_ == nullptr) {
    return Status::InvalidArgument("FO query has no formula");
  }
  RELCOMP_RETURN_NOT_OK(ValidateFormula(*formula_, schema));
  std::set<std::string> free = formula_->FreeVariables();
  std::set<std::string> head(head_vars_.begin(), head_vars_.end());
  if (free != head) {
    return Status::InvalidArgument(StrCat(
        "free variables {", StrJoin(free, ", "),
        "} do not match head variables {", StrJoin(head_vars_, ", "), "}"));
  }
  return Status::OK();
}

std::string FoQuery::ToString() const {
  return StrCat(name_.empty() ? "Q" : name_, "(", StrJoin(head_vars_, ", "),
                ") := ", formula_ == nullptr ? "?" : formula_->ToString());
}

}  // namespace relcomp
