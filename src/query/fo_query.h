#ifndef RELCOMP_QUERY_FO_QUERY_H_
#define RELCOMP_QUERY_FO_QUERY_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "query/atom.h"
#include "relational/schema.h"
#include "util/status.h"

namespace relcomp {

/// An immutable first-order formula tree over relation atoms, built-in
/// comparisons (=, !=), ∧, ∨, ¬, ∃ and ∀. Shared via FormulaPtr.
///
/// Positive existential formulas (∃FO+) are FO formulas without ¬ and ∀;
/// FoQuery::IsPositiveExistential() recognizes them and
/// PositiveToUnion() (positive_query.h) unfolds them to UCQ.
class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

class Formula {
 public:
  enum class Kind : uint8_t {
    kAtom,     // relation atom or comparison
    kAnd,      // n-ary conjunction
    kOr,       // n-ary disjunction
    kNot,      // negation
    kExists,   // ∃ vars . child
    kForall,   // ∀ vars . child
  };

  static FormulaPtr MakeAtom(Atom atom);
  static FormulaPtr MakeAnd(std::vector<FormulaPtr> children);
  static FormulaPtr MakeOr(std::vector<FormulaPtr> children);
  static FormulaPtr MakeNot(FormulaPtr child);
  static FormulaPtr MakeExists(std::vector<std::string> vars,
                               FormulaPtr child);
  static FormulaPtr MakeForall(std::vector<std::string> vars,
                               FormulaPtr child);

  Kind kind() const { return kind_; }

  /// Precondition: kind() == kAtom.
  const Atom& atom() const { return atom_; }
  /// Children of And/Or, or the single child of Not/Exists/Forall.
  const std::vector<FormulaPtr>& children() const { return children_; }
  /// Precondition: kind() is kExists or kForall.
  const std::vector<std::string>& quantified_vars() const { return vars_; }

  /// Free variables of this formula.
  std::set<std::string> FreeVariables() const;
  /// All constants occurring in the formula.
  void CollectConstants(std::set<Value>* out) const;
  /// All relation names occurring in the formula.
  void CollectRelations(std::set<std::string>* out) const;

  /// True iff the formula uses no negation and no universal quantifier.
  bool IsPositiveExistential() const;
  /// True iff the formula is a conjunction of atoms under optional ∃
  /// (i.e. expressible as a CQ body).
  bool IsConjunctive() const;

  std::string ToString() const;

 private:
  Formula() = default;

  Kind kind_ = Kind::kAtom;
  Atom atom_;
  std::vector<FormulaPtr> children_;
  std::vector<std::string> vars_;
};

/// A first-order query: head variables plus an FO formula whose free
/// variables are exactly the head variables.
class FoQuery {
 public:
  FoQuery() = default;
  FoQuery(std::string name, std::vector<std::string> head_vars,
          FormulaPtr formula)
      : name_(std::move(name)),
        head_vars_(std::move(head_vars)),
        formula_(std::move(formula)) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& head_vars() const { return head_vars_; }
  const FormulaPtr& formula() const { return formula_; }
  size_t arity() const { return head_vars_.size(); }

  /// True iff the formula is in the ∃FO+ fragment.
  bool IsPositiveExistential() const {
    return formula_ != nullptr && formula_->IsPositiveExistential();
  }

  /// Checks relation names/arities against `schema` and that the
  /// formula's free variables are exactly the head variables.
  Status Validate(const Schema& schema) const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> head_vars_;
  FormulaPtr formula_;
};

}  // namespace relcomp

#endif  // RELCOMP_QUERY_FO_QUERY_H_
