#ifndef RELCOMP_AUTOMATA_TWO_HEAD_DFA_H_
#define RELCOMP_AUTOMATA_TWO_HEAD_DFA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "reductions/common.h"
#include "util/status.h"

namespace relcomp {

/// A deterministic finite 2-head automaton (Spielmann 2000), the
/// machine model behind the paper's undecidability proofs for the FP
/// rows of Tables I and II (Theorems 3.1(3)(4) and 4.1(3)(4)). The
/// input alphabet is {0, 1}; ε-reads ignore the head's symbol and are
/// only enabled when the head is parked at the end of the input.
struct TwoHeadDfa {
  /// An ε-or-symbol read: 0, 1, or kEpsilon.
  static constexpr int kEpsilon = -1;

  struct TransitionKey {
    int state;
    int read1;  // 0, 1, or kEpsilon
    int read2;
    bool operator<(const TransitionKey& other) const {
      return std::tie(state, read1, read2) <
             std::tie(other.state, other.read1, other.read2);
    }
  };
  struct TransitionValue {
    int next_state;
    int move1;  // 0 or +1
    int move2;
  };

  int num_states = 2;
  int initial_state = 0;
  int accepting_state = 1;
  std::map<TransitionKey, TransitionValue> delta;

  /// Adds δ(state, read1, read2) = (next, move1, move2).
  void AddTransition(int state, int read1, int read2, int next, int move1,
                     int move2) {
    delta[{state, read1, read2}] = {next, move1, move2};
  }
};

/// Runs A on `input` (a 0/1 string), bounded by `max_steps`. Returns
/// true/false for accept/reject, or nullopt if the step budget was hit
/// (possible loop).
std::optional<bool> RunTwoHeadDfa(const TwoHeadDfa& a,
                                  const std::vector<int>& input,
                                  size_t max_steps = 10000);

/// Bounded emptiness search: tries every input of length ≤ max_len.
/// Returns an accepted input if found. This is a semi-decision
/// procedure — the source problem is undecidable.
std::optional<std::vector<int>> FindAcceptedInput(const TwoHeadDfa& a,
                                                  size_t max_len,
                                                  size_t max_steps = 10000);

/// The Theorem 3.1(3) encoding: RCDP(FP, CQ) instance with fixed empty
/// D and Dm and fixed CQ constraints V1–V3 (well-formedness of the
/// string encoding P/P̄/F), and a datalog query Q that reaches the
/// accepting configuration. D = ∅ is complete for Q relative to
/// (Dm, V) iff L(A) = ∅. The RCDP decider rightly refuses this
/// instance (undecidable cell); pair it with BruteForceRcdp for
/// bounded demonstrations.
Result<EncodedRcdpInstance> EncodeTwoHeadDfaRcdp(const TwoHeadDfa& a);

/// Encodes a 0/1 string as the P/P̄/F instance used by the encoding:
/// positions 0..len-1 plus the self-looping final marker, inserted
/// into `*db` (whose schema must come from EncodeTwoHeadDfaRcdp).
Status EncodeInputString(const std::vector<int>& input, Database* db);

/// The Theorem 4.1(1) encoding: an RCQP(FO, fixed FO) instance.
///
/// Schema: the string relations P/P̄/F, the configuration-step relation
/// RD(x,y,z,x',y',z') and its transitive closure RDstar. The *fixed*
/// constraint set holds the string well-formedness CCs (V1–V3, CQ),
/// the key of RD on its first three attributes (V4, CQ), and the two
/// FO constraints V5/V6 forcing RDstar to be exactly the transitive
/// closure of RD. The FO query returns a designated "accept" tuple
/// when the instance is *good* — the initial position exists (Qini),
/// a final marker exists (Qfin), RD realizes every transition of A,
/// and RDstar reaches the accepting configuration — and mirrors RD
/// otherwise. Good is monotone, so a good database is complete; a
/// database that can never become good is pumpable through RD.
///
/// RCQ(Q, Dm, V) is nonempty iff L(A) ≠ ∅ (the paper's Theorem
/// 4.1(1); our tests validate the witness direction and the pumping
/// direction on concrete automata — the cell itself is undecidable,
/// so no decider applies).
Result<EncodedRcqpInstance> EncodeTwoHeadDfaRcqp(const TwoHeadDfa& a);

/// Builds the proof's witness database for an accepted input: the
/// string encoding, one RD tuple per transition of A (anchored at
/// positions of the input where the transition's read/move pattern is
/// realizable), and the transitive closure RDstar. Fails with
/// kInvalidArgument if some transition has no realizable anchor in
/// this input (pick a richer accepted input).
Result<Database> BuildTwoHeadDfaWitness(const TwoHeadDfa& a,
                                        const std::vector<int>& input,
                                        const EncodedRcqpInstance& encoded);

}  // namespace relcomp

#endif  // RELCOMP_AUTOMATA_TWO_HEAD_DFA_H_
