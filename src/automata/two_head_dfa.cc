#include "automata/two_head_dfa.h"

#include <set>
#include <tuple>

#include "util/str.h"

namespace relcomp {
namespace {

/// State of a run: (control state, head1, head2). Heads range over
/// 0..len (len = parked at the final marker).
struct Config {
  int state;
  size_t h1;
  size_t h2;
  bool operator<(const Config& o) const {
    return std::tie(state, h1, h2) < std::tie(o.state, o.h1, o.h2);
  }
};

/// True iff read `r` is enabled for a head at `pos` over `input`.
bool ReadMatches(int r, size_t pos, const std::vector<int>& input) {
  if (r == TwoHeadDfa::kEpsilon) return pos == input.size();
  return pos < input.size() && input[pos] == r;
}

}  // namespace

std::optional<bool> RunTwoHeadDfa(const TwoHeadDfa& a,
                                  const std::vector<int>& input,
                                  size_t max_steps) {
  Config cfg{a.initial_state, 0, 0};
  std::set<Config> visited;
  for (size_t step = 0; step < max_steps; ++step) {
    if (cfg.state == a.accepting_state) return true;
    if (!visited.insert(cfg).second) return false;  // cycle: reject
    // Deterministic lookup: prefer exact reads over ε reads.
    const TwoHeadDfa::TransitionValue* chosen = nullptr;
    const int sym1 = cfg.h1 < input.size() ? input[cfg.h1]
                                           : TwoHeadDfa::kEpsilon;
    const int sym2 = cfg.h2 < input.size() ? input[cfg.h2]
                                           : TwoHeadDfa::kEpsilon;
    const int candidates1[] = {sym1, TwoHeadDfa::kEpsilon};
    const int candidates2[] = {sym2, TwoHeadDfa::kEpsilon};
    for (int r1 : candidates1) {
      if (chosen != nullptr) break;
      if (!ReadMatches(r1, cfg.h1, input)) continue;
      for (int r2 : candidates2) {
        if (!ReadMatches(r2, cfg.h2, input)) continue;
        auto it = a.delta.find({cfg.state, r1, r2});
        if (it != a.delta.end()) {
          chosen = &it->second;
          break;
        }
      }
    }
    if (chosen == nullptr) return false;  // stuck: reject
    cfg.state = chosen->next_state;
    if (chosen->move1 > 0 && cfg.h1 < input.size()) ++cfg.h1;
    if (chosen->move2 > 0 && cfg.h2 < input.size()) ++cfg.h2;
  }
  return std::nullopt;  // budget exhausted
}

std::optional<std::vector<int>> FindAcceptedInput(const TwoHeadDfa& a,
                                                  size_t max_len,
                                                  size_t max_steps) {
  for (size_t len = 0; len <= max_len; ++len) {
    std::vector<int> input(len, 0);
    for (uint64_t bits = 0; bits < (1ULL << len); ++bits) {
      for (size_t i = 0; i < len; ++i) input[i] = (bits >> i) & 1;
      std::optional<bool> accepted = RunTwoHeadDfa(a, input, max_steps);
      if (accepted.has_value() && *accepted) return input;
    }
  }
  return std::nullopt;
}

Result<EncodedRcdpInstance> EncodeTwoHeadDfaRcdp(const TwoHeadDfa& a) {
  EncodedRcdpInstance out;
  auto db_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("P", 1));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("Pbar", 1));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("F", 2));
  out.db_schema = db_schema;
  auto master_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation("Rm1", 1));
  out.master_schema = master_schema;
  out.db = Database(db_schema);          // fixed: empty
  out.master = Database(master_schema);  // fixed: empty

  // Fixed CQ constraints (well-formedness of the string encoding):
  //   V1: P and P̄ are disjoint;
  //   V2: F is a function;
  //   V3: at most one self-loop F(k, k).
  {
    ConjunctiveQuery v1("V1", {},
                        {Atom::Relation("P", {Term::Var("x")}),
                         Atom::Relation("Pbar", {Term::Var("x")})});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(v1))));
    ConjunctiveQuery v2("V2", {},
                        {Atom::Relation("F", {Term::Var("x"), Term::Var("y")}),
                         Atom::Relation("F", {Term::Var("x"), Term::Var("z")}),
                         Atom::Ne(Term::Var("y"), Term::Var("z"))});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(v2))));
    ConjunctiveQuery v3("V3", {},
                        {Atom::Relation("F", {Term::Var("x"), Term::Var("x")}),
                         Atom::Relation("F", {Term::Var("y"), Term::Var("y")}),
                         Atom::Ne(Term::Var("x"), Term::Var("y"))});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(v3))));
  }

  // The datalog query: configuration reachability.
  DatalogProgram program;
  auto state_term = [](int q) { return Term::ConstStr(StrCat("q", q)); };
  // Base: Reach(q0, 0, 0), guarded by the existence of position 0.
  {
    DatalogRule base;
    base.head_predicate = "Reach";
    base.head_args = {state_term(0), Term::Var("z"), Term::Var("z")};
    base.body = {Atom::Relation("F", {Term::Var("z"), Term::Var("x")}),
                 Atom::Eq(Term::Var("z"), Term::ConstInt(0))};
    base.head_args[0] = state_term(0);
    program.AddRule(std::move(base));
  }
  // One rule per transition.
  int fresh = 0;
  for (const auto& [key, value] : a.delta) {
    DatalogRule rule;
    rule.head_predicate = "Reach";
    Term y = Term::Var("y");
    Term z = Term::Var("z");
    rule.body.push_back(
        Atom::Relation("Reach", {state_term(key.state), y, z}));
    auto alpha = [&](int read, const Term& pos) {
      if (read == TwoHeadDfa::kEpsilon) {
        rule.body.push_back(Atom::Relation("F", {pos, pos}));
        return;
      }
      Term succ = Term::Var(StrCat("s", fresh++));
      rule.body.push_back(Atom::Relation("F", {pos, succ}));
      rule.body.push_back(Atom::Ne(pos, succ));
      rule.body.push_back(
          Atom::Relation(read == 1 ? "P" : "Pbar", {pos}));
    };
    alpha(key.read1, y);
    alpha(key.read2, z);
    Term y_next = y;
    Term z_next = z;
    if (value.move1 > 0) {
      y_next = Term::Var(StrCat("m", fresh++));
      rule.body.push_back(Atom::Relation("F", {y, y_next}));
    }
    if (value.move2 > 0) {
      z_next = Term::Var(StrCat("m", fresh++));
      rule.body.push_back(Atom::Relation("F", {z, z_next}));
    }
    rule.head_args = {state_term(value.next_state), y_next, z_next};
    program.AddRule(std::move(rule));
  }
  // Accept: the accepting state is reachable and a final marker exists.
  {
    DatalogRule acc;
    acc.head_predicate = "Acc";
    acc.head_args = {};
    acc.body = {
        Atom::Relation("Reach", {state_term(a.accepting_state),
                                 Term::Var("y"), Term::Var("z")}),
        Atom::Relation("F", {Term::Var("f"), Term::Var("f")})};
    program.AddRule(std::move(acc));
  }
  program.set_output_predicate("Acc");
  RELCOMP_RETURN_NOT_OK(program.Validate(*db_schema));
  out.query = AnyQuery::Fp(std::move(program));
  return out;
}

namespace {

/// Shared vocabulary of the Theorem 4.1(1) encoding.
Term AcceptMark() { return Term::ConstStr("ACCEPT"); }

Term StateTerm(int q) { return Term::ConstStr(StrCat("q", q)); }

/// α(read) at position `pos` (appending fresh successor vars): reading
/// 1/0 needs a successor and the right symbol; ε parks at the final
/// self-loop.
FormulaPtr AlphaFormula(int read, const Term& pos, int* fresh) {
  if (read == TwoHeadDfa::kEpsilon) {
    return Formula::MakeAtom(Atom::Relation("F", {pos, pos}));
  }
  Term succ = Term::Var(StrCat("al", (*fresh)++));
  std::vector<FormulaPtr> parts;
  parts.push_back(Formula::MakeAtom(Atom::Relation("F", {pos, succ})));
  parts.push_back(Formula::MakeAtom(Atom::Ne(pos, succ)));
  parts.push_back(Formula::MakeAtom(
      Atom::Relation(read == 1 ? "P" : "Pbar", {pos})));
  return Formula::MakeExists({succ.var()}, Formula::MakeAnd(parts));
}

/// β(move): position succession (+1 moves along F, 0 stays).
FormulaPtr BetaFormula(int move, const Term& pos, const Term& next) {
  if (move > 0) {
    return Formula::MakeAtom(Atom::Relation("F", {pos, next}));
  }
  return Formula::MakeAtom(Atom::Eq(pos, next));
}

/// ϕδ over the RD-tuple variables (x, y, z, x2, y2, z2).
FormulaPtr TransitionFormula(const TwoHeadDfa::TransitionKey& key,
                             const TwoHeadDfa::TransitionValue& value,
                             const std::vector<Term>& vars, int* fresh) {
  std::vector<FormulaPtr> parts;
  parts.push_back(Formula::MakeAtom(Atom::Eq(vars[0],
                                             StateTerm(key.state))));
  parts.push_back(Formula::MakeAtom(
      Atom::Eq(vars[3], StateTerm(value.next_state))));
  parts.push_back(AlphaFormula(key.read1, vars[1], fresh));
  parts.push_back(AlphaFormula(key.read2, vars[2], fresh));
  parts.push_back(BetaFormula(value.move1, vars[1], vars[4]));
  parts.push_back(BetaFormula(value.move2, vars[2], vars[5]));
  return Formula::MakeAnd(parts);
}

/// The six-variable block u1..u6 / names.
std::vector<std::string> RdVarNames(const char* prefix) {
  std::vector<std::string> names;
  for (int i = 1; i <= 6; ++i) names.push_back(StrCat(prefix, i));
  return names;
}

std::vector<Term> AsTerms(const std::vector<std::string>& names) {
  std::vector<Term> terms;
  terms.reserve(names.size());
  for (const std::string& n : names) terms.push_back(Term::Var(n));
  return terms;
}

}  // namespace

Result<EncodedRcqpInstance> EncodeTwoHeadDfaRcqp(const TwoHeadDfa& a) {
  EncodedRcqpInstance out;
  auto db_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("P", 1));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("Pbar", 1));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("F", 2));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("RD", 6));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation("RDstar", 6));
  out.db_schema = db_schema;
  auto master_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation("Rm1", 1));
  out.master_schema = master_schema;
  out.master = Database(master_schema);  // fixed: empty

  // ---- Fixed constraints. ---------------------------------------------
  // V1-V3: string well-formedness (as in the RCDP encoding).
  {
    ConjunctiveQuery v1("V1", {},
                        {Atom::Relation("P", {Term::Var("x")}),
                         Atom::Relation("Pbar", {Term::Var("x")})});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(v1))));
    ConjunctiveQuery v2("V2", {},
                        {Atom::Relation("F", {Term::Var("x"), Term::Var("y")}),
                         Atom::Relation("F", {Term::Var("x"), Term::Var("z")}),
                         Atom::Ne(Term::Var("y"), Term::Var("z"))});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(v2))));
    ConjunctiveQuery v3("V3", {},
                        {Atom::Relation("F", {Term::Var("x"), Term::Var("x")}),
                         Atom::Relation("F", {Term::Var("y"), Term::Var("y")}),
                         Atom::Ne(Term::Var("x"), Term::Var("y"))});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(v3))));
  }
  // V4: the first three attributes are a key of RD.
  for (int col = 3; col < 6; ++col) {
    std::vector<Term> args1 = AsTerms(RdVarNames("k"));
    std::vector<Term> args2 = args1;
    for (int c = 3; c < 6; ++c) {
      args2[c] = Term::Var(StrCat("k", c + 1, "b"));
    }
    ConjunctiveQuery q(StrCat("V4_c", col), {},
                       {Atom::Relation("RD", args1),
                        Atom::Relation("RD", args2),
                        Atom::Ne(args1[col], args2[col])});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(q))));
  }
  // V5/V6: RDstar is exactly the transitive closure of RD (fixed FO).
  {
    std::vector<std::string> u = RdVarNames("u");
    std::vector<std::string> v = RdVarNames("v");
    std::vector<std::string> w = RdVarNames("w");
    std::vector<Term> ut = AsTerms(u);
    std::vector<Term> vt = AsTerms(v);
    std::vector<Term> wt = AsTerms(w);
    auto rd = [&](const std::vector<Term>& from,
                  const std::vector<Term>& to, const char* rel) {
      std::vector<Term> args = from;
      args.insert(args.end(), to.begin(), to.end());
      // from/to are triples here: (state, h1, h2).
      return Formula::MakeAtom(Atom::Relation(rel, args));
    };
    // Work over configuration triples: split the 6 vars into two
    // triples.
    std::vector<Term> u1(ut.begin(), ut.begin() + 3);
    std::vector<Term> u2(ut.begin() + 3, ut.end());
    std::vector<Term> v2(vt.begin() + 3, vt.end());
    std::vector<Term> w1(wt.begin(), wt.begin() + 3);
    // one_step(u1 -> u2) ∨ ∃w1. RD(u1, w1) ∧ RDstar(w1, u2).
    FormulaPtr step_or_compose = Formula::MakeOr(
        {rd(u1, u2, "RD"),
         Formula::MakeExists(
             {w[0], w[1], w[2]},
             Formula::MakeAnd({rd(u1, w1, "RD"), rd(w1, u2, "RDstar")}))});
    FormulaPtr in_star = rd(u1, u2, "RDstar");
    std::vector<std::string> all_u(u.begin(), u.end());
    std::vector<std::string> u_and_w = all_u;
    u_and_w.insert(u_and_w.end(), {w[0], w[1], w[2]});
    // V5, split so each existential block has a positive relation atom
    // at the top of its conjunction (the FO evaluator seeds from it):
    //   V5a: a direct RD step missing from RDstar;
    //   V5b: a composition RD;RDstar missing from RDstar.
    FoQuery v5a("V5a", {},
                Formula::MakeExists(
                    all_u,
                    Formula::MakeAnd(
                        {rd(u1, u2, "RD"), Formula::MakeNot(in_star)})));
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Fo(std::move(v5a))));
    FoQuery v5b("V5b", {},
                Formula::MakeExists(
                    u_and_w,
                    Formula::MakeAnd({rd(u1, w1, "RD"), rd(w1, u2, "RDstar"),
                                      Formula::MakeNot(in_star)})));
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Fo(std::move(v5b))));
    // V6: recorded but not reachable.
    FoQuery v6("V6", {},
               Formula::MakeExists(
                   all_u, Formula::MakeAnd(
                              {in_star, Formula::MakeNot(step_or_compose)})));
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Fo(std::move(v6))));
  }

  // ---- The FO query (varies with A). -----------------------------------
  // Good := Qini ∧ Qfin ∧ (per-δ: some RD tuple realizes δ) ∧
  //         RDstar(q0, 0, 0, qacc, ·, ·).
  int fresh = 0;
  std::vector<FormulaPtr> good_parts;
  good_parts.push_back(Formula::MakeExists(
      {"ini"}, Formula::MakeAtom(Atom::Relation(
                   "F", {Term::ConstInt(0), Term::Var("ini")}))));
  good_parts.push_back(Formula::MakeExists(
      {"fin"}, Formula::MakeAtom(Atom::Relation(
                   "F", {Term::Var("fin"), Term::Var("fin")}))));
  for (const auto& [key, value] : a.delta) {
    std::vector<std::string> names = RdVarNames(StrCat("d", fresh++, "_").c_str());
    std::vector<Term> vars = AsTerms(names);
    std::vector<FormulaPtr> parts;
    parts.push_back(Formula::MakeAtom(Atom::Relation("RD", vars)));
    parts.push_back(TransitionFormula(key, value, vars, &fresh));
    good_parts.push_back(
        Formula::MakeExists(names, Formula::MakeAnd(parts)));
  }
  good_parts.push_back(Formula::MakeExists(
      {"a1", "a2"},
      Formula::MakeAtom(Atom::Relation(
          "RDstar", {StateTerm(a.initial_state), Term::ConstInt(0),
                     Term::ConstInt(0), StateTerm(a.accepting_state),
                     Term::Var("a1"), Term::Var("a2")}))));
  FormulaPtr good = Formula::MakeAnd(good_parts);

  std::vector<std::string> head = RdVarNames("h");
  std::vector<Term> head_terms = AsTerms(head);
  std::vector<FormulaPtr> accept_eqs;
  for (const Term& h : head_terms) {
    accept_eqs.push_back(Formula::MakeAtom(Atom::Eq(h, AcceptMark())));
  }
  FormulaPtr formula = Formula::MakeOr(
      {Formula::MakeAnd({good, Formula::MakeAnd(accept_eqs)}),
       Formula::MakeAnd({Formula::MakeNot(good),
                         Formula::MakeAtom(Atom::Relation("RD",
                                                          head_terms))})});
  FoQuery query("Qdfa", head, std::move(formula));
  RELCOMP_RETURN_NOT_OK(query.Validate(*db_schema));
  out.query = AnyQuery::Fo(std::move(query));
  return out;
}

Result<Database> BuildTwoHeadDfaWitness(const TwoHeadDfa& a,
                                        const std::vector<int>& input,
                                        const EncodedRcqpInstance& encoded) {
  std::optional<bool> accepted = RunTwoHeadDfa(a, input);
  if (!accepted.has_value() || !*accepted) {
    return Status::InvalidArgument("input is not accepted by the automaton");
  }
  Database db(encoded.db_schema);
  RELCOMP_RETURN_NOT_OK(EncodeInputString(input, &db));
  const int64_t len = static_cast<int64_t>(input.size());

  // Anchor every transition at some realizable pair of positions.
  auto alpha_positions = [&](int read) {
    std::vector<int64_t> positions;
    if (read == TwoHeadDfa::kEpsilon) {
      positions.push_back(len);  // the final self-loop
      return positions;
    }
    for (int64_t i = 0; i < len; ++i) {
      if (input[i] == read) positions.push_back(i);
    }
    return positions;
  };
  auto beta_next = [&](int move, int64_t pos) {
    if (move <= 0) return pos;
    return pos < len ? pos + 1 : pos;
  };
  for (const auto& [key, value] : a.delta) {
    std::vector<int64_t> ys = alpha_positions(key.read1);
    std::vector<int64_t> zs = alpha_positions(key.read2);
    if (ys.empty() || zs.empty()) {
      return Status::InvalidArgument(StrCat(
          "transition from state ", key.state,
          " has no realizable anchor in this input; choose an accepted "
          "input containing every symbol the automaton reads"));
    }
    int64_t y = ys.front();
    int64_t z = zs.front();
    RELCOMP_RETURN_NOT_OK(db.Insert(
        "RD", Tuple({Value::Str(StrCat("q", key.state)), Value::Int(y),
                     Value::Int(z), Value::Str(StrCat("q", value.next_state)),
                     Value::Int(beta_next(value.move1, y)),
                     Value::Int(beta_next(value.move2, z))})));
  }
  // The accepting-run steps must also be present in RD; the key on the
  // first three attributes may already pin them. Re-simulate and check
  // compatibility, adding run steps whose source configuration is
  // still free.
  {
    int state = a.initial_state;
    size_t h1 = 0;
    size_t h2 = 0;
    for (size_t step = 0; step < 10000 && state != a.accepting_state;
         ++step) {
      // Mirror the simulator's transition choice.
      const int sym1 = h1 < input.size() ? input[h1] : TwoHeadDfa::kEpsilon;
      const int sym2 = h2 < input.size() ? input[h2] : TwoHeadDfa::kEpsilon;
      const TwoHeadDfa::TransitionValue* chosen = nullptr;
      int used_r1 = 0;
      int used_r2 = 0;
      for (int r1 : {sym1, TwoHeadDfa::kEpsilon}) {
        if (chosen != nullptr) break;
        if (r1 != TwoHeadDfa::kEpsilon && h1 >= input.size()) continue;
        if (r1 == TwoHeadDfa::kEpsilon && h1 != input.size()) continue;
        for (int r2 : {sym2, TwoHeadDfa::kEpsilon}) {
          if (r2 != TwoHeadDfa::kEpsilon && h2 >= input.size()) continue;
          if (r2 == TwoHeadDfa::kEpsilon && h2 != input.size()) continue;
          auto it = a.delta.find({state, r1, r2});
          if (it != a.delta.end()) {
            chosen = &it->second;
            used_r1 = r1;
            used_r2 = r2;
            break;
          }
        }
      }
      (void)used_r1;
      (void)used_r2;
      if (chosen == nullptr) break;
      size_t n1 = h1;
      size_t n2 = h2;
      if (chosen->move1 > 0 && h1 < input.size()) n1 = h1 + 1;
      if (chosen->move2 > 0 && h2 < input.size()) n2 = h2 + 1;
      db.InsertUnchecked(
          "RD",
          Tuple({Value::Str(StrCat("q", state)),
                 Value::Int(static_cast<int64_t>(h1)),
                 Value::Int(static_cast<int64_t>(h2)),
                 Value::Str(StrCat("q", chosen->next_state)),
                 Value::Int(static_cast<int64_t>(n1)),
                 Value::Int(static_cast<int64_t>(n2))}));
      state = chosen->next_state;
      h1 = n1;
      h2 = n2;
    }
    if (state != a.accepting_state) {
      return Status::Internal("re-simulation failed to accept");
    }
  }
  // Check the key constraint still holds (anchors may collide with run
  // steps at the same source configuration but different targets).
  {
    std::map<Tuple, Tuple> by_key;
    for (const Tuple& t : db.Get("RD")) {
      Tuple key_part({t[0], t[1], t[2]});
      Tuple val_part({t[3], t[4], t[5]});
      auto [it, inserted] = by_key.emplace(key_part, val_part);
      if (!inserted && !(it->second == val_part)) {
        return Status::InvalidArgument(
            "transition anchors collide with the accepting run under the "
            "RD key; choose a different accepted input");
      }
    }
  }
  // RDstar := transitive closure of RD (over configuration triples).
  {
    std::set<std::pair<Tuple, Tuple>> edges;
    for (const Tuple& t : db.Get("RD")) {
      edges.emplace(Tuple({t[0], t[1], t[2]}), Tuple({t[3], t[4], t[5]}));
    }
    std::set<std::pair<Tuple, Tuple>> closure = edges;
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<std::pair<Tuple, Tuple>> additions;
      for (const auto& [aa, bb] : closure) {
        for (const auto& [cc, dd] : edges) {
          if (bb == cc && closure.count({aa, dd}) == 0) {
            additions.emplace_back(aa, dd);
          }
        }
      }
      for (auto& edge : additions) {
        closure.insert(std::move(edge));
        changed = true;
      }
    }
    for (const auto& [from, to] : closure) {
      db.InsertUnchecked(
          "RDstar", Tuple({from[0], from[1], from[2], to[0], to[1], to[2]}));
    }
  }
  return db;
}

Status EncodeInputString(const std::vector<int>& input, Database* db) {
  const int64_t len = static_cast<int64_t>(input.size());
  for (int64_t i = 0; i < len; ++i) {
    RELCOMP_RETURN_NOT_OK(db->Insert(input[i] == 1 ? "P" : "Pbar",
                                     Tuple({Value::Int(i)})));
    RELCOMP_RETURN_NOT_OK(
        db->Insert("F", Tuple({Value::Int(i), Value::Int(i + 1)})));
  }
  // The parked final position.
  RELCOMP_RETURN_NOT_OK(
      db->Insert("F", Tuple({Value::Int(len), Value::Int(len)})));
  return Status::OK();
}

}  // namespace relcomp
