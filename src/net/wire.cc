#include "net/wire.h"

#include <cstring>

#include "net/compress.h"
#include "service/checkpoint_store.h"
#include "util/blake2s.h"
#include "util/str.h"

namespace relcomp {
namespace {

uint32_t Crc32(std::string_view data) { return CheckpointStore::Crc32(data); }

void PutU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

/// Splits the next space-delimited field off `*text`.
bool TakeField(std::string_view* text, std::string_view* field) {
  size_t sp = text->find(' ');
  if (sp == std::string_view::npos) return false;
  *field = text->substr(0, sp);
  text->remove_prefix(sp + 1);
  return true;
}

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty() || field.size() > 20) return false;
  uint64_t v = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// Consumes a "<len>:<bytes>" segment from `*text`. The declared
/// length is checked against what is actually present, so a lying
/// prefix (oversized or undersized) is a typed error, never a read
/// past the buffer.
bool TakeSized(std::string_view* text, std::string_view* out) {
  size_t colon = text->find(':');
  if (colon == std::string_view::npos) return false;
  uint64_t len = 0;
  if (!ParseU64(text->substr(0, colon), &len)) return false;
  text->remove_prefix(colon + 1);
  if (text->size() < len) return false;
  *out = text->substr(0, static_cast<size_t>(len));
  text->remove_prefix(static_cast<size_t>(len));
  return true;
}

Status Malformed(std::string_view what, std::string_view why) {
  return Status::InvalidArgument(
      StrCat("malformed ", what, " (", why, ")"));
}

/// Wire-stable status-code tokens. Distinct from StatusCodeToString so
/// a rename of the human-readable form can never skew the protocol.
struct CodeToken {
  StatusCode code;
  const char* token;
};
constexpr CodeToken kCodeTokens[] = {
    {StatusCode::kOk, "ok"},
    {StatusCode::kInvalidArgument, "invalid_argument"},
    {StatusCode::kNotFound, "not_found"},
    {StatusCode::kResourceExhausted, "resource_exhausted"},
    {StatusCode::kUnsupported, "unsupported"},
    {StatusCode::kCancelled, "cancelled"},
    {StatusCode::kFailedPrecondition, "failed_precondition"},
    {StatusCode::kInternal, "internal"},
    {StatusCode::kUnavailable, "unavailable"},
    {StatusCode::kDeadlineExceeded, "deadline_exceeded"},
    {StatusCode::kPermissionDenied, "permission_denied"},
};

const char* CodeToToken(StatusCode code) {
  for (const CodeToken& entry : kCodeTokens) {
    if (entry.code == code) return entry.token;
  }
  return "internal";
}

bool TokenToCode(std::string_view token, StatusCode* out) {
  for (const CodeToken& entry : kCodeTokens) {
    if (token == entry.token) {
      *out = entry.code;
      return true;
    }
  }
  return false;
}

constexpr const char* kVerdictTokens[] = {"complete", "incomplete",
                                          "unknown"};

bool TokenToVerdict(std::string_view token, Verdict* out) {
  if (token == "complete") *out = Verdict::kComplete;
  else if (token == "incomplete") *out = Verdict::kIncomplete;
  else if (token == "unknown") *out = Verdict::kUnknown;
  else return false;
  return true;
}

constexpr const char* kStateTokens[] = {"none", "queued", "running", "done"};

bool TokenToState(std::string_view token, WireJobState* out) {
  if (token == "none") *out = WireJobState::kNone;
  else if (token == "queued") *out = WireJobState::kQueued;
  else if (token == "running") *out = WireJobState::kRunning;
  else if (token == "done") *out = WireJobState::kDone;
  else return false;
  return true;
}

}  // namespace

// --- Frame layer -----------------------------------------------------

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + kFrameOverhead);
  out.append(kFrameMagic, sizeof(kFrameMagic));
  PutU32Le(static_cast<uint32_t>(payload.size()), &out);
  out.append(payload);
  PutU32Le(Crc32(payload), &out);
  return out;
}

std::string EncodeFrameV2(std::string_view payload,
                          const FrameCodecOptions& options) {
  uint8_t flags = 0;
  std::string compressed;
  std::string_view body = payload;
  if (options.compress_threshold > 0 &&
      payload.size() >= options.compress_threshold) {
    compressed = CompressBlock(payload);
    if (compressed.size() < payload.size()) {
      flags |= kFrameFlagCompressed;
      body = compressed;
    }
  }
  if (!options.auth_key.empty()) flags |= kFrameFlagAuthenticated;
  std::string out;
  out.reserve(kFrameHeaderSizeV2 + body.size() + kFrameTrailerSize +
              kBlake2sTagLength);
  out.append(kFrameMagicV2, sizeof(kFrameMagicV2));
  out.push_back(static_cast<char>(flags));
  PutU32Le(static_cast<uint32_t>(payload.size()), &out);
  PutU32Le(static_cast<uint32_t>(body.size()), &out);
  out.append(body);
  PutU32Le(Crc32(body), &out);
  if (flags & kFrameFlagAuthenticated) {
    // The tag covers everything sent so far — header, body, and CRC —
    // so a forger cannot splice authenticated bodies under altered
    // headers.
    out += Blake2sMac(options.auth_key, out);
  }
  return out;
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  if (poisoned_) {
    return Status::InvalidArgument(
        "frame stream is poisoned by an earlier defect; close the "
        "connection");
  }
  if (buffer_.size() < kFrameHeaderSize) return false;
  if (std::memcmp(buffer_.data(), kFrameMagic, sizeof(kFrameMagic)) == 0) {
    if (!auth_key_.empty()) {
      // This endpoint requires authentication; a v1 frame can never
      // carry a tag. Typed refusal, not a framing error.
      poisoned_ = true;
      return Status::PermissionDenied(
          "unauthenticated relcomp-net/1 frame at an endpoint that "
          "requires frame authentication");
    }
    const uint32_t len = GetU32Le(buffer_.data() + sizeof(kFrameMagic));
    if (len > max_payload_) {
      poisoned_ = true;
      return Status::InvalidArgument(
          StrCat("frame payload length ", len, " exceeds the cap ",
                 max_payload_));
    }
    const size_t total = kFrameOverhead + static_cast<size_t>(len);
    if (buffer_.size() < total) return false;
    std::string_view body(buffer_.data() + kFrameHeaderSize, len);
    const uint32_t want = GetU32Le(buffer_.data() + kFrameHeaderSize + len);
    if (Crc32(body) != want) {
      poisoned_ = true;
      return Status::InvalidArgument(
          "frame crc mismatch (torn, truncated, or bit-flipped payload)");
    }
    payload->assign(body);
    buffer_.erase(0, total);
    return true;
  }
  if (accept_v2_ &&
      std::memcmp(buffer_.data(), kFrameMagicV2, sizeof(kFrameMagicV2)) ==
          0) {
    return NextV2(payload);
  }
  poisoned_ = true;
  return Status::InvalidArgument(
      "bad frame magic (stream desynchronized or version skew)");
}

Result<bool> FrameDecoder::NextV2(std::string* payload) {
  if (buffer_.size() < kFrameHeaderSizeV2) return false;
  const uint8_t flags = static_cast<uint8_t>(buffer_[4]);
  if ((flags & ~(kFrameFlagCompressed | kFrameFlagAuthenticated)) != 0) {
    poisoned_ = true;
    return Status::InvalidArgument(
        StrCat("unknown relcomp-net/2 frame flags ",
               static_cast<unsigned>(flags)));
  }
  const uint32_t raw_len = GetU32Le(buffer_.data() + 5);
  const uint32_t body_len = GetU32Le(buffer_.data() + 9);
  // Both lengths are attacker-controlled: cap them BEFORE sizing any
  // buffer off them. A lying compressed length dies here or in the
  // strictly-bounded decompressor, never in a huge allocation.
  if (raw_len > max_payload_ || body_len > max_payload_) {
    poisoned_ = true;
    return Status::InvalidArgument(
        StrCat("frame lengths raw=", raw_len, " body=", body_len,
               " exceed the cap ", max_payload_));
  }
  const bool compressed = (flags & kFrameFlagCompressed) != 0;
  const bool authenticated = (flags & kFrameFlagAuthenticated) != 0;
  if (!compressed && raw_len != body_len) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "uncompressed frame with disagreeing raw/body lengths");
  }
  const size_t tag_len = authenticated ? kBlake2sTagLength : 0;
  const size_t total = kFrameHeaderSizeV2 + static_cast<size_t>(body_len) +
                       kFrameTrailerSize + tag_len;
  if (buffer_.size() < total) return false;
  if (authenticated != !auth_key_.empty()) {
    poisoned_ = true;
    return authenticated
               ? Status::PermissionDenied(
                     "authenticated frame at an endpoint with no auth key")
               : Status::PermissionDenied(
                     "unauthenticated relcomp-net/2 frame at an endpoint "
                     "that requires frame authentication");
  }
  if (authenticated) {
    const std::string_view covered(buffer_.data(), total - tag_len);
    const std::string_view got(buffer_.data() + total - tag_len, tag_len);
    // Rotation window: a tag that fails the primary key is re-checked
    // against the secondary (if set) before refusal. Both comparisons
    // run constant-time; encoders only ever tag with the primary.
    const bool primary_ok =
        ConstantTimeEqual(Blake2sMac(auth_key_, covered), got);
    const bool secondary_ok =
        !auth_key2_.empty() &&
        ConstantTimeEqual(Blake2sMac(auth_key2_, covered), got);
    if (!primary_ok && !secondary_ok) {
      poisoned_ = true;
      return Status::PermissionDenied(
          "frame authentication tag mismatch (wrong key or forged frame)");
    }
  }
  const std::string_view body(buffer_.data() + kFrameHeaderSizeV2, body_len);
  const uint32_t want =
      GetU32Le(buffer_.data() + kFrameHeaderSizeV2 + body_len);
  if (Crc32(body) != want) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "frame crc mismatch (torn, truncated, or bit-flipped payload)");
  }
  if (compressed) {
    Status expanded = DecompressBlock(body, raw_len, payload);
    if (!expanded.ok()) {
      poisoned_ = true;
      return expanded;
    }
  } else {
    payload->assign(body);
  }
  saw_v2_ = true;
  buffer_.erase(0, total);
  return true;
}

std::string_view HealthReportState(std::string_view report) {
  const size_t eol = report.find('\n');
  std::string_view first =
      eol == std::string_view::npos ? report : report.substr(0, eol);
  const size_t space = first.find(' ');
  if (space == std::string_view::npos ||
      first.substr(0, space) != kHealthMagic) {
    return std::string_view();
  }
  return first.substr(space + 1);
}

// --- Message layer ---------------------------------------------------

const char* WireOpToString(WireOp op) {
  switch (op) {
    case WireOp::kSubmit: return "submit";
    case WireOp::kPoll: return "poll";
    case WireOp::kCancel: return "cancel";
    case WireOp::kStatus: return "status";
    case WireOp::kRing: return "ring";
    case WireOp::kAdopt: return "adopt";
    case WireOp::kHandoff: return "handoff";
    case WireOp::kHealth: return "health";
  }
  return "?";
}

const char* WireJobStateToString(WireJobState state) {
  return kStateTokens[static_cast<size_t>(state)];
}

std::string WireRequest::Serialize() const {
  return StrCat(kMessageMagic, " req ", WireOpToString(op), " ", key.size(),
                ":", key, job.size(), ":", job);
}

Result<WireRequest> WireRequest::Deserialize(std::string_view text) {
  auto fail = [](std::string_view why) { return Malformed("request", why); };
  std::string_view magic, role, op_field;
  if (!TakeField(&text, &magic) || magic != kMessageMagic) {
    return fail("bad message magic");
  }
  if (!TakeField(&text, &role) || role != "req") return fail("not a request");
  if (!TakeField(&text, &op_field)) return fail("no op");
  WireRequest req;
  if (op_field == "submit") req.op = WireOp::kSubmit;
  else if (op_field == "poll") req.op = WireOp::kPoll;
  else if (op_field == "cancel") req.op = WireOp::kCancel;
  else if (op_field == "status") req.op = WireOp::kStatus;
  else if (op_field == "ring") req.op = WireOp::kRing;
  else if (op_field == "adopt") req.op = WireOp::kAdopt;
  else if (op_field == "handoff") req.op = WireOp::kHandoff;
  else if (op_field == "health") req.op = WireOp::kHealth;
  else return fail("unknown op");
  std::string_view key, job;
  if (!TakeSized(&text, &key)) return fail("bad key segment");
  if (!TakeSized(&text, &job)) return fail("bad job segment");
  if (!text.empty()) return fail("trailing bytes");
  if (req.op == WireOp::kStatus || req.op == WireOp::kRing ||
      req.op == WireOp::kHealth) {
    if (!key.empty()) return fail("status/ring/health take no key");
  } else if (key.empty()) {
    return fail("missing idempotency key");
  }
  if (req.op != WireOp::kSubmit && req.op != WireOp::kHandoff &&
      !job.empty()) {
    return fail("job payload on a non-submit op");
  }
  if (req.op == WireOp::kHandoff && job.empty()) {
    return fail("handoff without a successor endpoint");
  }
  req.key = std::string(key);
  req.job = std::string(job);
  return req;
}

std::string WireReply::Serialize() const {
  return StrCat(kMessageMagic, " rep ", CodeToToken(code), " ",
                retry_after_ms, " ", WireJobStateToString(state), " ",
                kVerdictTokens[static_cast<size_t>(verdict)], " ", attempts,
                " ", persisted, " ", message.size(), ":", message,
                evidence.size(), ":", evidence, exhaustion.size(), ":",
                exhaustion);
}

Result<WireReply> WireReply::Deserialize(std::string_view text) {
  auto fail = [](std::string_view why) { return Malformed("reply", why); };
  std::string_view magic, role, code_field, retry_field, state_field,
      verdict_field, attempts_field, persisted_field;
  if (!TakeField(&text, &magic) || magic != kMessageMagic) {
    return fail("bad message magic");
  }
  if (!TakeField(&text, &role) || role != "rep") return fail("not a reply");
  WireReply rep;
  if (!TakeField(&text, &code_field) || !TokenToCode(code_field, &rep.code)) {
    return fail("bad status code");
  }
  if (!TakeField(&text, &retry_field) ||
      !ParseU64(retry_field, &rep.retry_after_ms)) {
    return fail("bad retry-after");
  }
  if (!TakeField(&text, &state_field) ||
      !TokenToState(state_field, &rep.state)) {
    return fail("bad job state");
  }
  if (!TakeField(&text, &verdict_field) ||
      !TokenToVerdict(verdict_field, &rep.verdict)) {
    return fail("bad verdict");
  }
  if (!TakeField(&text, &attempts_field) ||
      !ParseU64(attempts_field, &rep.attempts)) {
    return fail("bad attempts");
  }
  if (!TakeField(&text, &persisted_field) ||
      !ParseU64(persisted_field, &rep.persisted)) {
    return fail("bad persisted count");
  }
  std::string_view message, evidence, exhaustion;
  if (!TakeSized(&text, &message)) return fail("bad message segment");
  if (!TakeSized(&text, &evidence)) return fail("bad evidence segment");
  if (!TakeSized(&text, &exhaustion)) return fail("bad exhaustion segment");
  if (!text.empty()) return fail("trailing bytes");
  rep.message = std::string(message);
  rep.evidence = std::string(evidence);
  rep.exhaustion = std::string(exhaustion);
  return rep;
}

}  // namespace relcomp
