#include "net/compress.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace relcomp {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 13;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash4(uint32_t v) {
  // Fibonacci multiplicative hash over the next four bytes.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutLength(std::string* out, size_t len) {
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

void PutSequence(std::string* out, const uint8_t* literals, size_t lit_len,
                 size_t offset, size_t match_len) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  const size_t match_extra = match_len > 0 ? match_len - kMinMatch : 0;
  const size_t match_nibble =
      match_len > 0 ? (match_extra < 15 ? match_extra : 15) : 0;
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLength(out, lit_len - 15);
  out->append(reinterpret_cast<const char*>(literals), lit_len);
  if (match_len == 0) return;  // final literals-only sequence
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_nibble == 15) PutLength(out, match_extra - 15);
}

}  // namespace

std::string CompressBlock(std::string_view input) {
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  std::string out;
  out.reserve(n / 2 + 16);

  if (n < kMinMatch + 1) {
    PutSequence(&out, base, n, 0, 0);
    return out;
  }

  std::vector<uint32_t> table(size_t{1} << kHashBits, 0);
  size_t anchor = 0;  // first unemitted literal
  size_t pos = 0;
  // Leave the last kMinMatch bytes as literals: Load32 must stay in
  // bounds and LZ4 requires the block to end in literals anyway.
  const size_t match_limit = n - kMinMatch;
  while (pos < match_limit) {
    const uint32_t h = Hash4(Load32(base + pos));
    const size_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (candidate < pos && pos - candidate <= kMaxOffset &&
        Load32(base + candidate) == Load32(base + pos)) {
      size_t match_len = kMinMatch;
      while (pos + match_len < n &&
             base[candidate + match_len] == base[pos + match_len]) {
        ++match_len;
      }
      PutSequence(&out, base + anchor, pos - anchor, pos - candidate,
                  match_len);
      pos += match_len;
      anchor = pos;
    } else {
      ++pos;
    }
  }
  PutSequence(&out, base + anchor, n - anchor, 0, 0);
  return out;
}

Status DecompressBlock(std::string_view input, size_t raw_len,
                       std::string* out) {
  auto malformed = [](const char* what) {
    return Status::InvalidArgument(
        std::string("compressed block: ") + what);
  };
  out->clear();
  out->reserve(raw_len);  // caller capped raw_len against the frame limit
  const uint8_t* p = reinterpret_cast<const uint8_t*>(input.data());
  const uint8_t* const end = p + input.size();

  auto read_length = [&](size_t base_len, size_t* len) -> bool {
    *len = base_len;
    if (base_len != 15) return true;
    for (;;) {
      if (p == end) return false;
      const uint8_t b = *p++;
      // Bound the accumulated length before it can overflow or sail
      // past the declared size: a lying length dies here, not in a
      // multi-gigabyte append.
      if (*len > raw_len) return false;
      *len += b;
      if (b != 255) return true;
    }
  };

  while (p < end) {
    const uint8_t token = *p++;
    size_t lit_len;
    if (!read_length(token >> 4, &lit_len)) {
      return malformed("truncated or oversized literal length");
    }
    if (static_cast<size_t>(end - p) < lit_len) {
      return malformed("literal run past the end of input");
    }
    if (out->size() + lit_len > raw_len) {
      return malformed("output exceeds the declared raw length");
    }
    out->append(reinterpret_cast<const char*>(p), lit_len);
    p += lit_len;
    if (p == end) break;  // final literals-only sequence

    if (end - p < 2) return malformed("truncated match offset");
    const size_t offset =
        static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    if (offset == 0) return malformed("zero match offset");
    if (offset > out->size()) {
      return malformed("match offset before the start of output");
    }
    size_t match_len;
    if (!read_length(token & 0x0f, &match_len)) {
      return malformed("truncated or oversized match length");
    }
    match_len += kMinMatch;
    if (out->size() + match_len > raw_len) {
      return malformed("output exceeds the declared raw length");
    }
    // Byte-at-a-time: matches may overlap their own output (offset <
    // match_len is the RLE encoding).
    size_t from = out->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[from + i]);
    }
  }
  if (out->size() != raw_len) {
    return malformed("declared raw length disagrees with the block");
  }
  return Status::OK();
}

}  // namespace relcomp
