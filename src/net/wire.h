#ifndef RELCOMP_NET_WIRE_H_
#define RELCOMP_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "completeness/rcdp.h"
#include "util/status.h"

namespace relcomp {

// --- relcomp-net/1 frame layer ---------------------------------------
//
// Every message travels as one frame:
//
//   bytes 0..3   magic "RNF1" (frame-layer version)
//   bytes 4..7   payload length, unsigned little-endian 32 bit
//   bytes 8..    payload (the message text, see below)
//   last 4       CRC32 (IEEE, reflected) of the payload, little-endian
//
// The magic catches stream desynchronization and version skew at the
// first byte; the length prefix bounds the read (a frame longer than
// the receiver's cap is rejected before any allocation of that size);
// the trailing CRC catches torn tails, truncation, and bit flips
// anywhere in the payload. A frame-layer defect is NOT recoverable on
// the same connection — the byte stream position is lost — so both
// ends close the connection and the client reconnects and retries (its
// idempotency keys make the retry safe).

/// Frame-layer constants, shared by server, client, and the fuzz corpus.
inline constexpr char kFrameMagic[4] = {'R', 'N', 'F', '1'};
inline constexpr size_t kFrameHeaderSize = 8;   // magic + length
inline constexpr size_t kFrameTrailerSize = 4;  // crc32
inline constexpr size_t kFrameOverhead = kFrameHeaderSize + kFrameTrailerSize;
/// Default cap on a frame's payload; a length prefix above the
/// receiver's cap is a typed error, never an allocation.
inline constexpr size_t kDefaultMaxFramePayload = 1u << 20;

/// Wraps `payload` in a relcomp-net/1 frame.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder for one connection's byte stream. Feed()
/// arbitrary chunks (as the socket delivers them); Next() yields
/// complete payloads in order. Any defect — bad magic, oversized
/// length, CRC mismatch — is sticky: the stream is desynchronized and
/// the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(std::string_view data) { buffer_.append(data); }

  /// True: `*payload` holds the next complete frame's payload.
  /// False with OK status: need more bytes.
  /// Non-OK (kInvalidArgument): frame-layer defect; sticky.
  Result<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed (a non-empty value that stays
  /// non-empty is a partial frame — the server's slowloris deadline
  /// watches this).
  size_t buffered() const { return buffer_.size(); }

 private:
  size_t max_payload_;
  std::string buffer_;
  bool poisoned_ = false;
};

// --- relcomp-net/1 message layer -------------------------------------
//
// The frame payload is versioned text:
//
//   request: relcomp-net/1 req <op> <klen>:<key><jlen>:<job>
//   reply:   relcomp-net/1 rep <code> <retry_after_ms> <state>
//            <verdict> <attempts> <persisted>
//            <mlen>:<message><elen>:<evidence><xlen>:<exhaustion>
//
// ops: submit | poll | cancel | status | ring. <key> is the
// client-chosen idempotency key (a valid store request id); <job> is a
// serialized JobSpec (submit only, empty otherwise). `ring` takes no
// key and asks a fabric member for its serialized `relcomp-fabric/1`
// ring record (returned in the reply's <message> segment; a standalone
// server answers with a singleton ring naming itself, so a FabricClient
// can bootstrap off any endpoint). Every variable-length field
// is <len>:<bytes> framed, so keys, specs, and evidence may contain
// spaces or newlines without escaping. Deserialize accepts exactly
// what Serialize emits and rejects everything else with a typed
// kInvalidArgument — the hostile-input corpus in net_wire_test.cc
// sweeps truncations, flips, oversized lengths and version skew.

inline constexpr char kMessageMagic[] = "relcomp-net/1";

/// Request operation.
enum class WireOp : uint8_t { kSubmit, kPoll, kCancel, kStatus, kRing };

const char* WireOpToString(WireOp op);

struct WireRequest {
  WireOp op = WireOp::kStatus;
  /// Client-chosen idempotency key == the DecisionService request id.
  /// Required for submit/poll/cancel; must be empty for status/ring.
  std::string key;
  /// Serialized JobSpec (submit only; empty otherwise).
  std::string job;

  std::string Serialize() const;
  static Result<WireRequest> Deserialize(std::string_view text);
};

/// Job state as reported by a poll reply.
enum class WireJobState : uint8_t { kNone, kQueued, kRunning, kDone };

const char* WireJobStateToString(WireJobState state);

struct WireReply {
  /// kOk, or the typed failure (kResourceExhausted = backpressure /
  /// load shedding, kUnavailable = backend restarting, retry both;
  /// kInvalidArgument / kNotFound / kFailedPrecondition are terminal).
  StatusCode code = StatusCode::kOk;
  /// Human-readable detail (error text, or the status-op report).
  std::string message;
  /// Backpressure hint: how long the client should wait before
  /// retrying (0 = no hint). Set on kResourceExhausted and
  /// kUnavailable replies.
  uint64_t retry_after_ms = 0;
  /// Poll replies: where the job is.
  WireJobState state = WireJobState::kNone;
  /// state == kDone only: the terminal verdict and canonical evidence
  /// string (bit-for-bit comparable across runs), plus effort counters.
  Verdict verdict = Verdict::kUnknown;
  std::string evidence;
  uint64_t attempts = 0;
  uint64_t persisted = 0;
  /// Exhaustion rendering for kUnknown verdicts ("" otherwise).
  std::string exhaustion;

  std::string Serialize() const;
  static Result<WireReply> Deserialize(std::string_view text);

  /// Status as seen by a caller: OK for kOk, typed error otherwise.
  Status ToStatus() const {
    return code == StatusCode::kOk ? Status::OK() : Status(code, message);
  }
};

// --- Socket-level fault injection ------------------------------------

/// Deterministically injures the server's outbound replies so the
/// client's retry/reconnect path is proven, not assumed. Faults are
/// addressed by the server-wide reply ordinal (1-based, in send
/// order): `at` fires once, `every` fires periodically (ordinal % every
/// == 0); both may be combined with `at_byte` for position sweeps.
struct SocketFaultPlan {
  enum class Kind : uint8_t {
    kNone,
    /// Send only the first `at_byte` bytes of the reply frame, then
    /// close the connection (a torn frame / partial write + FIN).
    kTornFrame,
    /// Flip one bit of the frame byte at `at_byte` (mod frame size)
    /// before sending — the CRC must catch it on the client.
    kBitFlip,
    /// Drop the connection with a TCP RST (SO_LINGER 0) instead of
    /// replying — the mid-frame reset / ambiguous-failure case.
    kReset,
    /// Swallow the reply and keep the connection open — the stalled
    /// server case; the client's read deadline must fire.
    kStall,
  };
  Kind kind = Kind::kNone;
  /// 1-based reply ordinal to injure once (0 = disabled).
  size_t at = 0;
  /// Injure every Nth reply (0 = disabled).
  size_t every = 0;
  /// Byte position for kTornFrame / kBitFlip.
  size_t at_byte = 0;

  bool active() const { return kind != Kind::kNone && (at > 0 || every > 0); }
  bool Fires(size_t ordinal) const {
    return kind != Kind::kNone &&
           ((at > 0 && ordinal == at) || (every > 0 && ordinal % every == 0));
  }
};

}  // namespace relcomp

#endif  // RELCOMP_NET_WIRE_H_
