#ifndef RELCOMP_NET_WIRE_H_
#define RELCOMP_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "completeness/rcdp.h"
#include "util/status.h"

namespace relcomp {

// --- relcomp-net/1 frame layer ---------------------------------------
//
// Every message travels as one frame:
//
//   bytes 0..3   magic "RNF1" (frame-layer version)
//   bytes 4..7   payload length, unsigned little-endian 32 bit
//   bytes 8..    payload (the message text, see below)
//   last 4       CRC32 (IEEE, reflected) of the payload, little-endian
//
// The magic catches stream desynchronization and version skew at the
// first byte; the length prefix bounds the read (a frame longer than
// the receiver's cap is rejected before any allocation of that size);
// the trailing CRC catches torn tails, truncation, and bit flips
// anywhere in the payload. A frame-layer defect is NOT recoverable on
// the same connection — the byte stream position is lost — so both
// ends close the connection and the client reconnects and retries (its
// idempotency keys make the retry safe).

/// Frame-layer constants, shared by server, client, and the fuzz corpus.
inline constexpr char kFrameMagic[4] = {'R', 'N', 'F', '1'};
inline constexpr size_t kFrameHeaderSize = 8;   // magic + length
inline constexpr size_t kFrameTrailerSize = 4;  // crc32
inline constexpr size_t kFrameOverhead = kFrameHeaderSize + kFrameTrailerSize;
/// Default cap on a frame's payload; a length prefix above the
/// receiver's cap is a typed error, never an allocation.
inline constexpr size_t kDefaultMaxFramePayload = 1u << 20;

// --- relcomp-net/2 frame extension -----------------------------------
//
// The v2 frame carries optional per-frame compression and a keyed
// authentication tag:
//
//   bytes 0..3    magic "RNF2"
//   byte  4       flags (bit0 = compressed, bit1 = authenticated)
//   bytes 5..8    raw payload length (after decompression), u32 LE
//   bytes 9..12   body length (bytes on the wire), u32 LE
//   bytes 13..    body (raw payload, or an LZ4-style block)
//   next 4        CRC32 of the body, u32 LE
//   last 16       keyed BLAKE2s tag over ALL preceding frame bytes
//                 (authenticated frames only)
//
// Both declared lengths are checked against the receiver's cap before
// any allocation, and a compressed body must expand to exactly the
// declared raw length — a lying length is a typed error. v2 acceptance
// is OPT-IN on the decoder: a default decoder stays relcomp-net/1-only
// (an unknown magic remains "version skew"), and each side sends v2
// only when authentication or compression is actually engaged, so
// mixed-version fleets interoperate on v1 frames. When a decoder holds
// an auth key, EVERY inbound frame must carry a valid tag; violations
// surface as kPermissionDenied (terminal), distinct from the
// kInvalidArgument of a torn or corrupt frame.

inline constexpr char kFrameMagicV2[4] = {'R', 'N', 'F', '2'};
inline constexpr size_t kFrameHeaderSizeV2 = 13;  // magic + flags + 2 lengths
inline constexpr uint8_t kFrameFlagCompressed = 1u << 0;
inline constexpr uint8_t kFrameFlagAuthenticated = 1u << 1;

/// Encode-side knobs shared by client and server (the decoder takes
/// them via setters).
struct FrameCodecOptions {
  /// Shared fabric secret; non-empty = every sent frame carries a tag
  /// and every received frame must verify against it.
  std::string auth_key;
  /// Compress payloads of at least this many bytes (0 = never). Only
  /// engaged toward peers that already spoke v2 (or when auth is on,
  /// which implies v2 on both sides).
  size_t compress_threshold = 0;

  bool v2() const { return !auth_key.empty() || compress_threshold > 0; }
};

/// Wraps `payload` in a relcomp-net/1 frame.
std::string EncodeFrame(std::string_view payload);

/// Wraps `payload` in a relcomp-net/2 frame, compressing and tagging
/// it per `options`. If compression does not shrink the payload the
/// raw bytes are sent (still v2-framed).
std::string EncodeFrameV2(std::string_view payload,
                          const FrameCodecOptions& options);

/// Incremental frame decoder for one connection's byte stream. Feed()
/// arbitrary chunks (as the socket delivers them); Next() yields
/// complete payloads in order. Any defect — bad magic, oversized
/// length, CRC mismatch, bad auth tag — is sticky: the stream is
/// desynchronized and the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(std::string_view data) { buffer_.append(data); }

  /// True: `*payload` holds the next complete frame's payload.
  /// False with OK status: need more bytes.
  /// Non-OK: frame-layer defect; sticky. kInvalidArgument for framing
  /// defects, kPermissionDenied for authentication violations.
  Result<bool> Next(std::string* payload);

  /// Opts in to relcomp-net/2 frames. Off by default: a v2 magic at a
  /// v1-only decoder stays a version-skew error.
  void set_accept_v2(bool accept) { accept_v2_ = accept; }

  /// Requires every inbound frame to carry a valid keyed tag (implies
  /// v2 acceptance; a v1 frame is then an authentication violation).
  void set_auth_key(std::string key) {
    auth_key_ = std::move(key);
    if (!auth_key_.empty()) accept_v2_ = true;
  }

  /// Optional secondary key for rotation windows: an inbound tag that
  /// fails the primary is re-checked against this key before the frame
  /// is refused. Encoders never tag with the secondary — it only
  /// widens acceptance, so two fleets mid-rotation (old fleet still on
  /// the outgoing key, new fleet on the incoming one) interoperate
  /// with zero kPermissionDenied. Meaningless without a primary key.
  void set_auth_key2(std::string key) { auth_key2_ = std::move(key); }

  /// True once any v2 frame decoded on this stream — the server's
  /// signal that the peer understands v2 replies (compression
  /// negotiation).
  bool saw_v2() const { return saw_v2_; }

  /// Bytes buffered but not yet consumed (a non-empty value that stays
  /// non-empty is a partial frame — the server's slowloris deadline
  /// watches this).
  size_t buffered() const { return buffer_.size(); }

 private:
  /// Decodes one v2 frame; the caller already matched the magic.
  Result<bool> NextV2(std::string* payload);

  size_t max_payload_;
  std::string buffer_;
  bool poisoned_ = false;
  bool accept_v2_ = false;
  bool saw_v2_ = false;
  std::string auth_key_;
  std::string auth_key2_;
};

// --- relcomp-net/1 message layer -------------------------------------
//
// The frame payload is versioned text:
//
//   request: relcomp-net/1 req <op> <klen>:<key><jlen>:<job>
//   reply:   relcomp-net/1 rep <code> <retry_after_ms> <state>
//            <verdict> <attempts> <persisted>
//            <mlen>:<message><elen>:<evidence><xlen>:<exhaustion>
//
// ops: submit | poll | cancel | status | ring | adopt | handoff |
// health.
// <key> is the client-chosen idempotency key (a valid store request
// id); <job> is a serialized JobSpec (submit only, empty otherwise).
// `ring` takes no key and asks a fabric member for its serialized
// `relcomp-fabric/1` ring record (returned in the reply's <message>
// segment; a standalone server answers with a singleton ring naming
// itself, so a FabricClient can bootstrap off any endpoint). The
// fabric-operation ops reuse the two segments differently: `adopt`
// carries the shard number (decimal) in <key> and an empty <job>;
// `handoff` carries the shard number in <key> and the successor's
// endpoint in <job>. Every variable-length field is <len>:<bytes>
// framed, so keys, specs, and evidence may contain spaces or newlines
// without escaping. Deserialize accepts exactly what Serialize emits
// and rejects everything else with a typed kInvalidArgument — the
// hostile-input corpus in net_wire_test.cc sweeps truncations, flips,
// oversized lengths and version skew.

inline constexpr char kMessageMagic[] = "relcomp-net/1";

/// First token of a health reply's <message> segment. The full report:
///
///   relcomp-health/1 <worst-state>
///   shard <label> state=<state> io_errors=<n> write_failures=<n>
///       fsync_failures=<n> probes=<succeeded>/<attempted> shed=<n>
///       ephemeral=<n>        (one line per owned shard)
///
/// <worst-state> is the worst over all lines ("down" > "readonly" >
/// "degraded" > "healthy") so a client can steer on the first line
/// without parsing the rest.
inline constexpr char kHealthMagic[] = "relcomp-health/1";

/// Extracts <worst-state> from a health report's first line ("" when
/// the report is not a relcomp-health/1 document).
std::string_view HealthReportState(std::string_view report);

/// Request operation.
enum class WireOp : uint8_t {
  kSubmit,
  kPoll,
  kCancel,
  kStatus,
  kRing,
  /// Fabric operation: adopt the shard named (decimal) by the key —
  /// the receiving member opens the shard store and re-publishes the
  /// ring. Sent by a handing-off owner to its successor, or by an
  /// operator reviving an orphaned shard.
  kAdopt,
  /// Fabric operation: hand the shard named by the key off to the
  /// successor endpoint carried in the job segment. The receiving
  /// member must currently own the shard.
  kHandoff,
  /// Asks the member for its `relcomp-health/1` store-health report
  /// (per owned shard: healthy/degraded/read-only plus error
  /// counters), returned in the reply's <message> segment. Takes no
  /// key and no job payload, and — like `ring` — is answered even by
  /// a member whose backend is down, so clients can steer away from
  /// sick members instead of timing out against them.
  kHealth,
};

const char* WireOpToString(WireOp op);

struct WireRequest {
  WireOp op = WireOp::kStatus;
  /// Client-chosen idempotency key == the DecisionService request id.
  /// Required for submit/poll/cancel; must be empty for
  /// status/ring/health.
  std::string key;
  /// Serialized JobSpec (submit only; empty otherwise).
  std::string job;

  std::string Serialize() const;
  static Result<WireRequest> Deserialize(std::string_view text);
};

/// Job state as reported by a poll reply.
enum class WireJobState : uint8_t { kNone, kQueued, kRunning, kDone };

const char* WireJobStateToString(WireJobState state);

struct WireReply {
  /// kOk, or the typed failure (kResourceExhausted = backpressure /
  /// load shedding, kUnavailable = backend restarting, retry both;
  /// kInvalidArgument / kNotFound / kFailedPrecondition are terminal).
  StatusCode code = StatusCode::kOk;
  /// Human-readable detail (error text, or the status-op report).
  std::string message;
  /// Backpressure hint: how long the client should wait before
  /// retrying (0 = no hint). Set on kResourceExhausted and
  /// kUnavailable replies.
  uint64_t retry_after_ms = 0;
  /// Poll replies: where the job is.
  WireJobState state = WireJobState::kNone;
  /// state == kDone only: the terminal verdict and canonical evidence
  /// string (bit-for-bit comparable across runs), plus effort counters.
  Verdict verdict = Verdict::kUnknown;
  std::string evidence;
  uint64_t attempts = 0;
  uint64_t persisted = 0;
  /// Exhaustion rendering for kUnknown verdicts ("" otherwise).
  std::string exhaustion;

  std::string Serialize() const;
  static Result<WireReply> Deserialize(std::string_view text);

  /// Status as seen by a caller: OK for kOk, typed error otherwise.
  Status ToStatus() const {
    return code == StatusCode::kOk ? Status::OK() : Status(code, message);
  }
};

// --- Socket-level fault injection ------------------------------------

/// Deterministically injures the server's outbound replies so the
/// client's retry/reconnect path is proven, not assumed. Faults are
/// addressed by the server-wide reply ordinal (1-based, in send
/// order): `at` fires once, `every` fires periodically (ordinal % every
/// == 0); both may be combined with `at_byte` for position sweeps.
struct SocketFaultPlan {
  enum class Kind : uint8_t {
    kNone,
    /// Send only the first `at_byte` bytes of the reply frame, then
    /// close the connection (a torn frame / partial write + FIN).
    kTornFrame,
    /// Flip one bit of the frame byte at `at_byte` (mod frame size)
    /// before sending — the CRC must catch it on the client.
    kBitFlip,
    /// Drop the connection with a TCP RST (SO_LINGER 0) instead of
    /// replying — the mid-frame reset / ambiguous-failure case.
    kReset,
    /// Swallow the reply and keep the connection open — the stalled
    /// server case; the client's read deadline must fire.
    kStall,
  };
  Kind kind = Kind::kNone;
  /// 1-based reply ordinal to injure once (0 = disabled).
  size_t at = 0;
  /// Injure every Nth reply (0 = disabled).
  size_t every = 0;
  /// Byte position for kTornFrame / kBitFlip.
  size_t at_byte = 0;

  bool active() const { return kind != Kind::kNone && (at > 0 || every > 0); }
  bool Fires(size_t ordinal) const {
    return kind != Kind::kNone &&
           ((at > 0 && ordinal == at) || (every > 0 && ordinal % every == 0));
  }
};

}  // namespace relcomp

#endif  // RELCOMP_NET_WIRE_H_
