#ifndef RELCOMP_NET_COMPRESS_H_
#define RELCOMP_NET_COMPRESS_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace relcomp {

/// LZ4-style block compression for large wire frames (streamed
/// Δ-evidence payloads, batched specs). The format is the LZ4 block
/// layout: a sequence of [token][literal-length ext][literals]
/// [2-byte LE match offset][match-length ext], where the token's high
/// nibble is the literal length (15 = more bytes follow, each 255
/// continuing) and the low nibble is the match length minus 4. The
/// final sequence is literals-only. No entropy stage — the decoder is
/// a tight bounds-checked copy loop, which is the property the hostile
/// corpus cares about.

/// Compresses `input` greedily with a 4-byte hash chain. Always
/// produces a valid block; callers compare sizes and keep the raw
/// payload when compression does not help.
std::string CompressBlock(std::string_view input);

/// Decompresses a block that must expand to EXACTLY `raw_len` bytes.
/// `raw_len` is attacker-controlled (it rides the frame header), so the
/// caller caps it against the frame payload limit before calling; this
/// function never allocates more than `raw_len` bytes of output and
/// fails typed on truncated input, out-of-range match offsets, and
/// blocks whose true size disagrees with the declared one — a lying
/// length is a protocol error, not a crash.
Status DecompressBlock(std::string_view input, size_t raw_len,
                       std::string* out);

}  // namespace relcomp

#endif  // RELCOMP_NET_COMPRESS_H_
