#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "fabric/ring.h"
#include "util/str.h"

namespace relcomp {
namespace {

using Clock = std::chrono::steady_clock;

Status ErrnoStatus(std::string_view what) {
  return Status::Internal(StrCat(what, ": ", std::strerror(errno)));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

/// "unix:<path>" or "tcp:<ipv4>:<port>".
struct ParsedAddress {
  bool is_unix = false;
  std::string path;
  std::string ip;
  uint16_t port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = address.substr(5);
    if (out.path.empty()) {
      return Status::InvalidArgument("unix address has an empty path");
    }
    if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument(
          StrCat("unix socket path too long (", out.path.size(), " bytes): ",
                 out.path));
    }
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    std::string rest = address.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          StrCat("tcp address needs <ipv4>:<port>: ", address));
    }
    out.ip = rest.substr(0, colon);
    std::string port = rest.substr(colon + 1);
    unsigned long value = 0;
    for (char c : port) {
      if (c < '0' || c > '9' || value > 65535) {
        return Status::InvalidArgument(StrCat("bad tcp port: ", port));
      }
      value = value * 10 + static_cast<unsigned long>(c - '0');
    }
    if (value > 65535 || port.empty()) {
      return Status::InvalidArgument(StrCat("bad tcp port: ", port));
    }
    out.port = static_cast<uint16_t>(value);
    struct in_addr probe;
    if (::inet_pton(AF_INET, out.ip.c_str(), &probe) != 1) {
      return Status::InvalidArgument(
          StrCat("tcp host must be an IPv4 literal: ", out.ip));
    }
    return out;
  }
  return Status::InvalidArgument(
      StrCat("address must start with unix: or tcp:, got ", address));
}

}  // namespace

/// Per-connection state, owned by the loop thread.
struct NetServer::Conn {
  int fd = -1;
  FrameDecoder decoder;
  /// Buffered outbound bytes not yet accepted by the kernel.
  std::string out;
  size_t out_off = 0;
  /// Replies currently buffered in `out` (the pipeline gauge).
  size_t pending_replies = 0;
  /// Stop decoding/serving; flush `out`, then close.
  bool close_after_flush = false;
  /// Reads disabled until `out` drains (backpressure).
  bool paused = false;
  /// Clock::time_point::max() = unarmed.
  Clock::time_point read_deadline_at = Clock::time_point::max();
  Clock::time_point write_deadline_at = Clock::time_point::max();

  Conn(size_t max_payload, const std::string& auth_key,
       const std::string& auth_key2)
      : decoder(max_payload) {
    // Servers always understand v2 frames; what the DEFAULT decoder
    // rejects as version skew, a live endpoint negotiates. The auth
    // key (when set) makes every inbound frame prove itself; the
    // secondary key widens acceptance during a rotation window.
    decoder.set_accept_v2(true);
    if (!auth_key.empty()) {
      decoder.set_auth_key(auth_key);
      decoder.set_auth_key2(auth_key2);
    }
  }
};

NetServer::NetServer(DecisionService* service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  fault_ = options_.fault;
}

Result<std::unique_ptr<NetServer>> NetServer::Start(
    DecisionService* service, const std::string& address,
    const NetServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("NetServer needs a DecisionService");
  }
  RELCOMP_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));

  std::unique_ptr<NetServer> server(new NetServer(service, options));
  int fd = -1;
  if (parsed.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, parsed.path.c_str(), parsed.path.size() + 1);
    // A stale socket file from a dead server blocks bind; the store
    // directory's flock is the real single-owner guarantee, so the
    // file is safe to recycle.
    ::unlink(parsed.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = ErrnoStatus(StrCat("bind ", parsed.path));
      ::close(fd);
      return st;
    }
    server->listen_unix_ = true;
    server->unix_path_ = parsed.path;
    server->address_ = StrCat("unix:", parsed.path);
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket(tcp)");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(parsed.port);
    ::inet_pton(AF_INET, parsed.ip.c_str(), &addr.sin_addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = ErrnoStatus(StrCat("bind ", address));
      ::close(fd);
      return st;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      Status st = ErrnoStatus("getsockname");
      ::close(fd);
      return st;
    }
    server->address_ = StrCat("tcp:", parsed.ip, ":", ntohs(bound.sin_port));
  }
  if (::listen(fd, 64) != 0) {
    Status st = ErrnoStatus("listen");
    ::close(fd);
    return st;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  server->listen_fd_ = fd;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return ErrnoStatus("pipe");
  }
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(pipe_fds[0]);
  SetNonBlocking(pipe_fds[1]);

  server->loop_ = std::thread([srv = server.get()] { srv->Loop(); });
  return server;
}

NetServer::~NetServer() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  if (listen_unix_) ::unlink(unix_path_.c_str());
}

void NetServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (joined_) return;
  stop_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    char byte = 'w';
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
  if (loop_.joinable()) loop_.join();
  joined_ = true;
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void NetServer::InjectFault(const SocketFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_ = plan;
}

void NetServer::Loop() {
  bool accepting = true;
  // Drain phase bound: once stop_ is seen, buffered replies get
  // write_deadline to leave; whatever remains is cut.
  Clock::time_point drain_deadline = Clock::time_point::max();

  for (;;) {
    const bool stopping = stop_.load(std::memory_order_acquire);
    if (stopping && accepting) {
      accepting = false;
      drain_deadline = Clock::now() + options_.write_deadline;
      // Stop reading everywhere; flush what is already buffered.
      for (auto& conn : conns_) {
        conn->close_after_flush = true;
      }
    }
    if (stopping) {
      // Drop connections that have nothing left to say (or that missed
      // the drain deadline).
      const Clock::time_point now = Clock::now();
      for (size_t i = 0; i < conns_.size();) {
        Conn* conn = conns_[i].get();
        if (conn->out_off >= conn->out.size() || now >= drain_deadline) {
          CloseConn(conn);
          conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (conns_.empty()) return;
    }

    // Poll set: wake pipe, listener (while accepting and under the
    // connection cap), and every connection.
    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 2);
    fds.push_back({wake_read_fd_, POLLIN, 0});
    size_t listener_index = SIZE_MAX;
    if (accepting && conns_.size() < options_.max_connections) {
      listener_index = fds.size();
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    const size_t conn_base = fds.size();
    // AcceptNew (below) appends to conns_ mid-iteration, so remember
    // how many connections this poll set actually covers — the new
    // ones have no pollfd until the next cycle.
    const size_t polled_conns = conns_.size();
    Clock::time_point next_deadline =
        stopping ? drain_deadline : Clock::time_point::max();
    for (auto& conn : conns_) {
      short events = 0;
      if (!conn->close_after_flush && !conn->paused) events |= POLLIN;
      if (conn->out_off < conn->out.size()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      next_deadline = std::min(next_deadline, conn->read_deadline_at);
      next_deadline = std::min(next_deadline, conn->write_deadline_at);
    }

    int timeout_ms = 500;  // periodic tick (cheap; bounds lost wakeups)
    if (next_deadline != Clock::time_point::max()) {
      auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                       next_deadline - Clock::now())
                       .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(until, 0, 500));
    }
    int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) return;  // unrecoverable loop failure

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (listener_index != SIZE_MAX &&
        (fds[listener_index].revents & POLLIN)) {
      AcceptNew();
    }

    const Clock::time_point now = Clock::now();
    // Two cursors: `p` walks the polled pollfds, `i` the (possibly
    // erased-from) conns_ — an erase advances `p` but not `i`, keeping
    // every remaining connection paired with its own pollfd.
    size_t i = 0;
    for (size_t p = 0; p < polled_conns; ++p) {
      Conn* conn = conns_[i].get();
      const pollfd& pfd = fds[conn_base + p];
      bool alive = true;

      if (pfd.revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (pfd.revents & POLLIN)) alive = ReadAndServe(conn);
      // POLLHUP with pending input is handled by the read above (recv
      // returns the residue, then 0).
      if (alive && (pfd.revents & POLLHUP) && !(pfd.revents & POLLIN)) {
        alive = false;
      }
      if (alive && (pfd.revents & POLLOUT)) alive = FlushWrites(conn);
      if (alive && (now >= conn->read_deadline_at ||
                    now >= conn->write_deadline_at)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.deadline_closes;
        alive = false;
      }
      if (alive && conn->close_after_flush &&
          conn->out_off >= conn->out.size()) {
        alive = false;
      }
      if (!alive) {
        CloseConn(conn);
        conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

void NetServer::AcceptNew() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; the next poll retries
    }
    if (conns_.size() >= options_.max_connections) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_rejected;
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Conn>(options_.max_frame_payload,
                                       options_.auth_key,
                                       options_.auth_key2);
    conn->fd = fd;
    conns_.push_back(std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

bool NetServer::ReadAndServe(Conn* conn) {
  char buf[1 << 14];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed its write side. Serve what is already buffered,
      // flush, then close.
      if (!ProcessFrames(conn)) return false;
      conn->close_after_flush = true;
      return conn->out_off < conn->out.size();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // ECONNRESET and friends
  }
  return ProcessFrames(conn);
}

bool NetServer::ProcessFrames(Conn* conn) {
  std::string payload;
  while (!conn->close_after_flush) {
    if (conn->pending_replies >= options_.max_pipeline) {
      // Backpressure: stop reading (and decoding) until the buffered
      // replies drain; bytes already received wait in the decoder.
      conn->paused = true;
      break;
    }
    Result<bool> next = conn->decoder.Next(&payload);
    if (!next.ok()) {
      // Frame-layer defect: the stream is desynchronized. Flush any
      // replies already earned, then close. An authentication
      // violation additionally earns a typed refusal first, so the
      // unauthenticated peer learns WHY instead of seeing a bare FIN.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      if (next.status().code() == StatusCode::kPermissionDenied) {
        WireReply denied;
        denied.code = StatusCode::kPermissionDenied;
        denied.message = next.status().message();
        // Plain v1 frame: the refused peer (keyless, or holding the
        // wrong key) could not verify a tagged reply, and the denial
        // carries no secret.
        if (!SendReply(conn, denied, /*force_v1=*/true)) return false;
      }
      conn->close_after_flush = true;
      return conn->out_off < conn->out.size();
    }
    if (!*next) break;  // need more bytes
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_received;
    }
    Result<WireRequest> request = WireRequest::Deserialize(payload);
    WireReply reply;
    if (!request.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.bad_requests;
      reply.code = StatusCode::kInvalidArgument;
      reply.message = request.status().message();
    } else {
      reply = HandleRequest(*request);
    }
    if (!SendReply(conn, reply)) return false;
  }
  // Slowloris deadline: armed while a partial frame sits in the
  // decoder (and the connection is actually being read), cleared the
  // moment the buffer is empty between frames.
  if (conn->decoder.buffered() > 0 && !conn->paused &&
      !conn->close_after_flush) {
    if (conn->read_deadline_at == Clock::time_point::max()) {
      conn->read_deadline_at = Clock::now() + options_.read_deadline;
    }
  } else {
    conn->read_deadline_at = Clock::time_point::max();
  }
  if (conn->out.size() - conn->out_off > options_.max_write_buffer) {
    return false;  // memory cap of last resort
  }
  return true;
}

WireReply NetServer::HandleRequest(const WireRequest& request) {
  // Ring first, and outside the crashed() gate: placement discovery
  // must work even while every backing service is down, or a client
  // could never learn where a shard went.
  if (request.op == WireOp::kRing) return HandleRing();
  // Health likewise bypasses the gate: a member whose backend (or
  // disk) is down must still be able to say so, or clients would have
  // to infer sickness from timeouts.
  if (request.op == WireOp::kHealth) return HandleHealth();
  // Fabric operations address a shard, not a key: they bypass routing
  // and the crashed() gate (adopting a shard is exactly what revives a
  // member whose own services died).
  if (request.op == WireOp::kAdopt || request.op == WireOp::kHandoff) {
    return HandleFabricOp(request);
  }
  DecisionService* service = service_;
  if (options_.route && request.op != WireOp::kStatus) {
    Result<DecisionService*> routed = options_.route(request.key);
    if (!routed.ok()) {
      // Typed shed: a key whose shard this member does not own (or
      // that no live member owns) is told so, with a retry hint when
      // the condition is transient — never a hang, never a silent
      // misplacement.
      WireReply reply;
      reply.code = routed.status().code();
      reply.message = routed.status().message();
      if (reply.code == StatusCode::kUnavailable) {
        reply.retry_after_ms = options_.retry_after_ms;
      }
      return reply;
    }
    service = *routed;
  }
  // A dead backend is the retryable condition par excellence: the
  // operator restarts the service, recovery resumes every in-flight
  // job, and the client's idempotency key reattaches to it.
  if (service->crashed()) {
    WireReply reply;
    reply.code = StatusCode::kUnavailable;
    reply.message = "decision service is down (crashed or restarting)";
    reply.retry_after_ms = options_.retry_after_ms;
    return reply;
  }
  switch (request.op) {
    case WireOp::kSubmit: return HandleSubmit(service, request);
    case WireOp::kPoll: return HandlePoll(service, request);
    case WireOp::kCancel: return HandleCancel(service, request);
    case WireOp::kStatus: return HandleStatus();
    case WireOp::kRing:
    case WireOp::kAdopt:
    case WireOp::kHandoff:
    case WireOp::kHealth:
      break;  // handled above
  }
  WireReply reply;
  reply.code = StatusCode::kInternal;
  reply.message = "unreachable request op";
  return reply;
}

WireReply NetServer::HandleFabricOp(const WireRequest& request) {
  WireReply reply;
  const bool is_adopt = request.op == WireOp::kAdopt;
  if ((is_adopt && !options_.adopt) || (!is_adopt && !options_.handoff)) {
    reply.code = StatusCode::kUnsupported;
    reply.message = StrCat("this server does not serve fabric ",
                           WireOpToString(request.op), " operations");
    return reply;
  }
  // The key carries the shard number in decimal.
  size_t shard = 0;
  bool valid = !request.key.empty() && request.key.size() <= 6;
  for (char c : request.key) {
    if (c < '0' || c > '9') {
      valid = false;
      break;
    }
    shard = shard * 10 + static_cast<size_t>(c - '0');
  }
  if (!valid) {
    reply.code = StatusCode::kInvalidArgument;
    reply.message =
        StrCat("fabric op wants a decimal shard number, got \"",
               request.key, "\"");
    return reply;
  }
  // Deliberately synchronous on the loop thread: store replay (adopt)
  // or quiesce-flush-journal (handoff) pauses this member's serving,
  // but fabric operations are rare, operator-paced, and bounded by the
  // caller's deadline.
  Status done = is_adopt ? options_.adopt(shard)
                         : options_.handoff(shard, request.job);
  reply.code = done.code();
  reply.message = done.ok()
                      ? StrCat(WireOpToString(request.op), " of shard ",
                               shard, " complete")
                      : done.message();
  if (reply.code == StatusCode::kUnavailable) {
    reply.retry_after_ms = options_.retry_after_ms;
  }
  return reply;
}

WireReply NetServer::HandleRing() {
  WireReply reply;
  reply.message = options_.ring ? options_.ring()
                                : FabricRing::Singleton(address_).Serialize();
  return reply;
}

WireReply NetServer::HandleHealth() {
  WireReply reply;
  if (options_.health) {
    reply.message = options_.health();
    return reply;
  }
  // Standalone server: the fleet is this one service.
  reply.message = StrCat(kHealthMagic, " ", service_->HealthState(), "\n",
                         service_->HealthLine("-"), "\n");
  return reply;
}

WireReply NetServer::HandleSubmit(DecisionService* service,
                                  const WireRequest& request) {
  WireReply reply;
  Result<JobSpec> spec = JobSpec::Deserialize(request.job);
  if (!spec.ok()) {
    reply.code = spec.status().code();
    reply.message = spec.status().message();
    return reply;
  }
  // Idempotency-key dedup: a client that retries after an ambiguous
  // failure (timeout, reset mid-reply) must never double-submit. The
  // serialized spec is the identity — same key + same bytes is the
  // same job, same key + different bytes is a collision.
  Result<JobSpec> existing = service->GetJobSpec(request.key);
  if (existing.ok()) {
    if (existing->Serialize() == spec->Serialize()) {
      reply.message = "duplicate";
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.submits_deduped;
      return reply;
    }
    reply.code = StatusCode::kInvalidArgument;
    reply.message = StrCat("idempotency key \"", request.key,
                           "\" is already bound to a different job");
    return reply;
  }
  Status admitted = service->Submit(request.key, *spec);
  if (admitted.ok()) {
    reply.message = "admitted";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submits_admitted;
    return reply;
  }
  reply.code = admitted.code();
  reply.message = admitted.message();
  if (admitted.code() == StatusCode::kResourceExhausted) {
    // Backpressure, typed: the queue is full; try again after the hint.
    reply.retry_after_ms = options_.retry_after_ms;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submits_shed;
  } else if (admitted.code() == StatusCode::kFailedPrecondition) {
    // Crashed between the check above and the call: still retryable.
    reply.code = StatusCode::kUnavailable;
    reply.retry_after_ms = options_.retry_after_ms;
  }
  return reply;
}

WireReply NetServer::HandlePoll(DecisionService* service,
                                const WireRequest& request) {
  WireReply reply;
  Result<DecisionService::JobPoll> poll = service->Poll(request.key);
  if (!poll.ok()) {
    reply.code = poll.status().code();
    reply.message = poll.status().message();
    if (poll.status().code() == StatusCode::kFailedPrecondition) {
      reply.code = StatusCode::kUnavailable;
      reply.retry_after_ms = options_.retry_after_ms;
    }
    return reply;
  }
  if (!poll->terminal) {
    reply.state =
        poll->running ? WireJobState::kRunning : WireJobState::kQueued;
    return reply;
  }
  reply.state = WireJobState::kDone;
  reply.verdict = poll->result.verdict;
  reply.evidence = poll->result.evidence;
  reply.attempts = poll->result.attempts;
  reply.persisted = poll->result.persisted;
  if (poll->result.exhaustion.exhausted()) {
    reply.exhaustion = poll->result.exhaustion.ToString();
  }
  return reply;
}

WireReply NetServer::HandleCancel(DecisionService* service,
                                  const WireRequest& request) {
  WireReply reply;
  Status cancelled = service->Cancel(request.key);
  reply.code = cancelled.code();
  reply.message = cancelled.ok() ? "cancelled" : cancelled.message();
  if (cancelled.code() == StatusCode::kFailedPrecondition) {
    reply.code = StatusCode::kUnavailable;
    reply.retry_after_ms = options_.retry_after_ms;
  }
  return reply;
}

WireReply NetServer::HandleStatus() {
  NetServerStats snapshot = stats();
  WireReply reply;
  reply.message = StrCat(
      "address=", address_, "\nconnections_accepted=",
      snapshot.connections_accepted, "\nframes_received=",
      snapshot.frames_received, "\nreplies_sent=", snapshot.replies_sent,
      "\nprotocol_errors=", snapshot.protocol_errors, "\nbad_requests=",
      snapshot.bad_requests, "\ndeadline_closes=", snapshot.deadline_closes,
      "\nsubmits_admitted=", snapshot.submits_admitted, "\nsubmits_deduped=",
      snapshot.submits_deduped, "\nsubmits_shed=", snapshot.submits_shed,
      "\nservice_jobs_shed=", service_->jobs_shed(),
      "\nservice_checkpoints_persisted=", service_->checkpoints_persisted(),
      "\n");
  return reply;
}

bool NetServer::SendReply(Conn* conn, const WireReply& reply,
                          bool force_v1) {
  // Per-connection format negotiation: auth implies v2 on both sides;
  // otherwise v2 (and hence reply compression) engages only once the
  // peer has sent a v2 frame itself.
  std::string frame;
  if (!force_v1 && (!options_.auth_key.empty() ||
                    (options_.compress_threshold > 0 &&
                     conn->decoder.saw_v2()))) {
    FrameCodecOptions codec;
    codec.auth_key = options_.auth_key;
    codec.compress_threshold = options_.compress_threshold;
    frame = EncodeFrameV2(reply.Serialize(), codec);
  } else {
    frame = EncodeFrame(reply.Serialize());
  }
  ++reply_ordinal_;
  {
    // Counted per attempt, faulted or not, so replies_sent always
    // equals the fault-plan ordinal — the sweep tests aim `at` using
    // this counter.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.replies_sent;
  }
  SocketFaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    plan = fault_;
  }
  if (plan.Fires(reply_ordinal_)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.faults_injected;
    }
    switch (plan.kind) {
      case SocketFaultPlan::Kind::kTornFrame: {
        // Send a strict prefix, then FIN: the client sees a torn frame.
        const size_t cut =
            std::min(plan.at_byte, frame.size() > 0 ? frame.size() - 1 : 0);
        conn->out.append(frame.data(), cut);
        conn->close_after_flush = true;
        break;
      }
      case SocketFaultPlan::Kind::kBitFlip: {
        frame[plan.at_byte % frame.size()] =
            static_cast<char>(frame[plan.at_byte % frame.size()] ^ 0x01);
        conn->out += frame;
        break;
      }
      case SocketFaultPlan::Kind::kReset: {
        // RST instead of a reply: the ambiguous failure a retrying
        // client must treat as "maybe it happened".
        struct linger lg = {1, 0};
        ::setsockopt(conn->fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
        return false;
      }
      case SocketFaultPlan::Kind::kStall: {
        // Swallow the reply; the connection idles until the client's
        // read deadline fires.
        break;
      }
      case SocketFaultPlan::Kind::kNone:
        conn->out += frame;
        break;
    }
  } else {
    conn->out += frame;
  }
  ++conn->pending_replies;
  if (conn->out_off < conn->out.size() &&
      conn->write_deadline_at == Clock::time_point::max()) {
    conn->write_deadline_at = Clock::now() + options_.write_deadline;
  }
  // Opportunistic immediate flush: most replies fit the socket buffer,
  // so the common case completes without another poll round.
  return FlushWrites(conn);
}

bool NetServer::FlushWrites(Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                       conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // EPIPE / ECONNRESET
    }
    conn->out_off += static_cast<size_t>(n);
  }
  // Fully drained: recycle the buffer, resume reads, clear deadline.
  conn->out.clear();
  conn->out_off = 0;
  conn->pending_replies = 0;
  conn->write_deadline_at = Clock::time_point::max();
  if (conn->paused) {
    conn->paused = false;
    // Frames that arrived while paused are already in the decoder;
    // serve them now rather than waiting for more bytes.
    return ProcessFrames(conn);
  }
  return true;
}

void NetServer::CloseConn(Conn* conn) {
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.connections_closed;
}

}  // namespace relcomp
