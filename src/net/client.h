#ifndef RELCOMP_NET_CLIENT_H_
#define RELCOMP_NET_CLIENT_H_

#include <chrono>
#include <cstddef>
#include <random>
#include <string>
#include <vector>

#include "net/wire.h"
#include "service/decision_service.h"
#include "util/status.h"

namespace relcomp {

/// Client tuning.
struct NetClientOptions {
  /// Per-round-trip I/O deadline (connect, send, and await-reply each
  /// bounded by it). A server that stalls mid-reply is a kUnavailable
  /// after this long, not a hang.
  std::chrono::milliseconds io_timeout{5000};
  /// Transport-level retry budget per call: how many times a
  /// kUnavailable round trip (refused, reset, torn frame, bad CRC,
  /// deadline) is retried before the call fails. Retries reconnect
  /// from scratch and are safe by construction — every submit carries
  /// the caller's idempotency key, so the server absorbs duplicates.
  size_t max_retries = 8;
  /// Capped exponential backoff between retries: the k-th retry waits
  /// min(backoff_base << k, backoff_cap) plus uniform jitter in
  /// [0, that delay] — jitter breaks retry synchronization between
  /// clients hammering a recovering server.
  std::chrono::milliseconds backoff_base{2};
  std::chrono::milliseconds backoff_cap{250};
  /// Jitter PRNG seed (fixed default keeps tests deterministic).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Also honor server retry_after_ms hints (uses the larger of the
  /// hint and the computed backoff).
  bool honor_retry_after = true;
  /// Caller deadline on one Call(): total wall time across every
  /// attempt and backoff sleep. Once it elapses the call fails
  /// kDeadlineExceeded instead of burning through the remaining retry
  /// budget against endpoints that are all down. Zero = bounded only
  /// by max_retries (the historical behavior).
  std::chrono::milliseconds call_deadline{0};
  /// Shared fabric secret: non-empty = every request frame carries a
  /// keyed tag and every reply must verify (a stripped or forged reply
  /// is kPermissionDenied, terminal — never silently accepted).
  std::string auth_key = {};
  /// Optional outgoing key for a rotation window: replies tagged with
  /// either key verify; requests are always tagged with the primary.
  /// Ignored when auth_key is empty.
  std::string auth_key2 = {};
  /// Compress request payloads of at least this many bytes (0 =
  /// never). Either knob switches the client to relcomp-net/2 frames.
  size_t compress_threshold = 0;
};

/// Observability counters; monotonic for the client's lifetime.
struct NetClientStats {
  size_t round_trips = 0;   ///< completed request/reply exchanges
  size_t connects = 0;      ///< sockets opened (1 + reconnects)
  size_t retries = 0;       ///< transport-level retries performed
  size_t backoff_waits = 0; ///< sleeps taken before a retry
  size_t failovers = 0;     ///< endpoint rotations (multi-endpoint only)
};

/// Blocking request/reply client for a NetServer. One connection,
/// lazily (re)established; every transport failure — connection
/// refused, reset, torn frame, CRC mismatch, I/O deadline — is mapped
/// to kUnavailable and retried with capped exponential backoff and
/// jitter, reconnecting each time. Because submits carry idempotency
/// keys, a retry after an ambiguous failure (reply lost after the
/// server processed the request) is absorbed server-side: exactly-once
/// submission effect over an at-least-once transport.
///
/// The address may be a comma-separated endpoint list
/// ("unix:/a,unix:/b,tcp:127.0.0.1:9000"): the client talks to the
/// first endpoint it can reach and fails over in list order — a
/// transport failure or typed kUnavailable reply advances to the next
/// endpoint on the following attempt, wrapping around. With one
/// endpoint this degenerates to the historical reconnect-in-place.
///
/// Not thread-safe: one NetClient per thread.
class NetClient {
 public:
  explicit NetClient(std::string address,
                     NetClientOptions options = NetClientOptions());
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Submits `spec` under the client-chosen idempotency `key`.
  /// OK whether this call or an earlier retry admitted it (the reply
  /// message distinguishes "admitted" from "duplicate"). Typed errors
  /// pass through: kResourceExhausted = queue full (retry later),
  /// kInvalidArgument = bad spec or key collision.
  Status Submit(const std::string& key, const JobSpec& spec);

  /// Non-blocking server-side state probe for `key`.
  Result<WireReply> Poll(const std::string& key);

  /// Requests cooperative cancellation of `key`.
  Status Cancel(const std::string& key);

  /// Server status report (counters, one per line).
  Result<std::string> ServerStatus();

  /// Polls `key` until it is terminal (state == done), sleeping
  /// `poll_interval` between probes, up to `limit`. Spans server
  /// restarts: kUnavailable and still-running polls both keep waiting.
  /// kDeadlineExceeded once `limit` elapses without a terminal state.
  Result<WireReply> AwaitTerminal(
      const std::string& key,
      std::chrono::milliseconds poll_interval = std::chrono::milliseconds(5),
      std::chrono::milliseconds limit = std::chrono::milliseconds(60000));

  /// Fetches the server's serialized relcomp-fabric/1 ring record (a
  /// standalone server answers with a singleton ring naming itself).
  Result<std::string> Ring();

  /// Fetches the server's relcomp-health/1 store-health report (see
  /// kHealthMagic in wire.h). Answered even by a member whose backend
  /// is down.
  Result<std::string> Health();

  /// Asks the connected fabric member to adopt `shard` (open its store
  /// and re-publish the ring). kUnsupported against a plain server.
  Status Adopt(size_t shard);

  /// Asks the connected fabric member to hand `shard` off to
  /// `successor` via the planned-handoff protocol. The member must
  /// currently own the shard.
  Status Handoff(size_t shard, const std::string& successor);

  /// The endpoint the next attempt will use (failover cursor).
  const std::string& current_endpoint() const {
    return endpoints_[active_];
  }
  const std::vector<std::string>& endpoints() const { return endpoints_; }

  /// One request/reply exchange with retry/reconnect/backoff applied.
  /// Public for the FabricClient, which routes raw requests itself.
  Result<WireReply> Call(const WireRequest& request);

  /// Drops the current connection (the next call reconnects). Lets
  /// tests exercise the reconnect path explicitly.
  void Disconnect();

  const NetClientStats& stats() const { return stats_; }

 private:
  /// One attempt: ensure connected, send the frame, read one reply
  /// frame. Any transport defect returns kUnavailable (and drops the
  /// connection).
  Result<WireReply> RoundTripOnce(const WireRequest& request);
  Status EnsureConnected();
  /// Sends all of `data` within the I/O deadline.
  Status SendAll(std::string_view data);
  /// Reads until the decoder yields one frame, within the deadline.
  Result<std::string> ReadFrame();

  /// Advances the failover cursor to the next endpoint (no-op with one).
  void RotateEndpoint();

  /// The configured endpoints, in failover order (never empty).
  std::vector<std::string> endpoints_;
  size_t active_ = 0;
  NetClientOptions options_;
  int fd_ = -1;
  NetClientStats stats_;
  std::mt19937_64 jitter_;
};

}  // namespace relcomp

#endif  // RELCOMP_NET_CLIENT_H_
