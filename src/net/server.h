#ifndef RELCOMP_NET_SERVER_H_
#define RELCOMP_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "service/decision_service.h"
#include "util/status.h"

namespace relcomp {

/// Server tuning — every limit exists so one misbehaving client cannot
/// take the service down.
struct NetServerOptions {
  /// Reject any frame whose length prefix exceeds this before
  /// allocating (hostile length prefixes are a typed close, not an
  /// allocation).
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 64;
  /// Per-connection in-flight limit: a client with this many buffered
  /// unanswered replies stops being read (TCP backpressure) until its
  /// replies drain.
  size_t max_pipeline = 32;
  /// Slowloris guard: a partial frame older than this closes the
  /// connection. The clock starts when the first byte of a frame
  /// arrives and only a completed frame clears it — trickling one
  /// byte per second buys nothing.
  std::chrono::milliseconds read_deadline{5000};
  /// A connection whose buffered replies have not fully drained within
  /// this is closed (stuck or unreading peer).
  std::chrono::milliseconds write_deadline{5000};
  /// Retry-after hint attached to kResourceExhausted (queue full) and
  /// kUnavailable (backend crashed/restarting) replies.
  uint64_t retry_after_ms = 50;
  /// Hard cap on one connection's buffered outbound bytes; beyond it
  /// the connection is closed (memory protection of last resort —
  /// max_pipeline should engage long before).
  size_t max_write_buffer = 1u << 22;
  /// Outbound fault injection (tests and the fault benchmarks);
  /// replaceable at runtime via InjectFault.
  SocketFaultPlan fault;
  /// Fabric hooks, both optional and both called on the loop thread.
  /// `route` maps an idempotency key to the backing service for keyed
  /// ops (submit/poll/cancel); unset = the single service passed to
  /// Start. A route error becomes a typed reply — kUnavailable routes
  /// (a shard with no live owner) carry retry_after_ms so the shed is
  /// backpressure, never a hang. `ring` supplies the serialized
  /// relcomp-fabric/1 record for the ring op; unset = a singleton ring
  /// naming this server, so a FabricClient can bootstrap off any
  /// endpoint. The ring op is answered even while the backend is
  /// crashed — placement discovery must outlive any one service.
  std::function<Result<DecisionService*>(const std::string& key)> route;
  std::function<std::string()> ring;
  /// Supplies the `relcomp-health/1` report for the health op; unset =
  /// a report synthesized from the single service passed to Start.
  /// Like ring, health is answered even while the backend is crashed —
  /// a sick member must still be able to say it is sick.
  std::function<std::string()> health;
  /// Fabric-operation hooks, called on the loop thread with the shard
  /// number decoded from the request. Unset = typed kUnsupported.
  /// `adopt` opens the shard store here (replay included — a deliberate
  /// loop-thread pause: fabric operations are rare and the caller
  /// bounds them with its own deadline); `handoff` runs the full
  /// planned-handoff protocol, including the adopt RPC to the
  /// successor.
  std::function<Status(size_t shard)> adopt;
  std::function<Status(size_t shard, const std::string& successor)> handoff;
  /// Shared fabric secret: non-empty = every inbound frame must carry
  /// a valid keyed tag (violations get a typed kPermissionDenied reply
  /// and the connection closes) and every reply is tagged.
  std::string auth_key;
  /// Optional outgoing key for a rotation window: inbound tags are
  /// accepted under either key, outbound replies are always tagged
  /// with the primary. Ignored when auth_key is empty.
  std::string auth_key2;
  /// Compress replies of at least this many bytes (0 = never) toward
  /// peers that have spoken relcomp-net/2 on this connection.
  size_t compress_threshold = 0;
};

/// Observability counters; all monotonic since Start.
struct NetServerStats {
  size_t connections_accepted = 0;
  size_t connections_closed = 0;
  size_t connections_rejected = 0;  ///< over max_connections
  size_t frames_received = 0;
  /// Replies generated, including ones a fault plan injured or
  /// suppressed — always equal to the fault ordinal (see InjectFault).
  size_t replies_sent = 0;
  size_t protocol_errors = 0;  ///< frame-layer defects (connection closed)
  size_t bad_requests = 0;     ///< message-layer defects (typed reply)
  size_t deadline_closes = 0;  ///< slowloris / stuck-writer closes
  size_t submits_admitted = 0;
  size_t submits_deduped = 0;  ///< idempotency-key retries absorbed
  size_t submits_shed = 0;     ///< backpressure (queue exhaustion) replies
  size_t faults_injected = 0;
};

/// Network front end for a DecisionService: one event-loop thread,
/// poll(2) over a TCP (`tcp:<ipv4>:<port>`, port 0 = ephemeral) or
/// Unix-domain (`unix:<path>`) listener plus every live connection.
///
/// The protocol is strictly request/reply over relcomp-net/1 frames;
/// requests are served non-blockingly (Submit admits and returns,
/// clients poll for the verdict), so a slow decider never stalls the
/// loop's ability to shed, dedup, or answer status probes.
///
/// Failure contract:
///  * A frame-layer defect (bad magic, oversized length, CRC mismatch)
///    closes the connection — the stream is desynchronized and nothing
///    on it can be trusted. A message-layer defect inside a valid
///    frame earns a typed kInvalidArgument reply; the connection
///    lives on.
///  * A Submit retried with the same idempotency key is absorbed: if a
///    job with that key exists and its serialized spec is identical,
///    the reply is OK ("duplicate"), and no second job is admitted.
///    The same key with a different spec is kInvalidArgument.
///  * DecisionService queue exhaustion surfaces as a typed
///    kResourceExhausted reply carrying retry_after_ms — backpressure,
///    not a hang or a dropped connection.
///  * A crashed (or restarting) backend surfaces as kUnavailable with
///    retry_after_ms: the client's retry loop spans the restart, and
///    the restarted service's recovery makes the eventual verdict
///    bit-for-bit the uninterrupted one.
///  * Shutdown() drains gracefully: stop accepting, stop reading,
///    flush buffered replies (bounded by write_deadline), then close.
///    In-flight jobs stay with the DecisionService, whose own
///    destructor drains or whose store recovers them.
class NetServer {
 public:
  /// Binds `address` and spawns the loop. The service must outlive the
  /// server. For unix addresses a stale socket file is unlinked first
  /// (the store directory flock already guarantees single ownership of
  /// the backing service).
  static Result<std::unique_ptr<NetServer>> Start(
      DecisionService* service, const std::string& address,
      const NetServerOptions& options = NetServerOptions());

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Resolved listen address ("tcp:127.0.0.1:<bound port>" or
  /// "unix:<path>") — connectable even when port 0 was requested.
  const std::string& address() const { return address_; }

  /// Graceful drain; idempotent; blocks until the loop exits.
  void Shutdown();

  NetServerStats stats() const;

  /// Arms outbound fault injection for subsequent replies (replaces
  /// any earlier plan). Takes effect on the next reply the loop sends.
  void InjectFault(const SocketFaultPlan& plan);

 private:
  struct Conn;

  NetServer(DecisionService* service, NetServerOptions options);

  void Loop();
  void AcceptNew();
  /// Reads, decodes and serves `conn`; returns false when the
  /// connection must be closed.
  bool ReadAndServe(Conn* conn);
  bool ProcessFrames(Conn* conn);
  bool FlushWrites(Conn* conn);
  WireReply HandleRequest(const WireRequest& request);
  WireReply HandleSubmit(DecisionService* service,
                         const WireRequest& request);
  WireReply HandlePoll(DecisionService* service, const WireRequest& request);
  WireReply HandleCancel(DecisionService* service,
                         const WireRequest& request);
  WireReply HandleStatus();
  WireReply HandleRing();
  WireReply HandleHealth();
  WireReply HandleFabricOp(const WireRequest& request);
  /// Frames `reply` (negotiated v1/v2 unless `force_v1`), applies any
  /// armed fault, and buffers it on `conn`; returns false when the
  /// fault closed the connection.
  bool SendReply(Conn* conn, const WireReply& reply, bool force_v1 = false);
  void CloseConn(Conn* conn);

  DecisionService* service_;
  NetServerOptions options_;
  std::string address_;
  int listen_fd_ = -1;
  bool listen_unix_ = false;
  std::string unix_path_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::thread loop_;

  std::atomic<bool> stop_{false};
  std::mutex shutdown_mu_;  // serializes Shutdown callers
  bool joined_ = false;

  mutable std::mutex stats_mu_;
  NetServerStats stats_;

  mutable std::mutex fault_mu_;
  SocketFaultPlan fault_;
  size_t reply_ordinal_ = 0;  // loop thread only

  /// Loop-thread-only connection table.
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace relcomp

#endif  // RELCOMP_NET_SERVER_H_
