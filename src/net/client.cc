#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "util/str.h"

namespace relcomp {
namespace {

using Clock = std::chrono::steady_clock;

Status Transport(std::string_view what) {
  return Status::Unavailable(StrCat(what, ": ", std::strerror(errno)));
}

/// Remaining milliseconds before `deadline`, clamped to [0, int-max].
int MsUntil(Clock::time_point deadline) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
  return static_cast<int>(std::clamp<long long>(ms, 0, 1 << 30));
}

}  // namespace

NetClient::NetClient(std::string address, NetClientOptions options)
    : address_(std::move(address)),
      options_(options),
      jitter_(options.jitter_seed) {}

NetClient::~NetClient() { Disconnect(); }

void NetClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  int fd = -1;
  if (address_.rfind("unix:", 0) == 0) {
    std::string path = address_.substr(5);
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument(StrCat("bad unix address: ", address_));
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Transport("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = Transport(StrCat("connect ", address_));
      ::close(fd);
      return st;
    }
  } else if (address_.rfind("tcp:", 0) == 0) {
    std::string rest = address_.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(StrCat("bad tcp address: ", address_));
    }
    std::string ip = rest.substr(0, colon);
    int port = std::atoi(rest.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument(StrCat("bad tcp port in: ", address_));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument(
          StrCat("tcp host must be an IPv4 literal: ", ip));
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Transport("socket(tcp)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = Transport(StrCat("connect ", address_));
      ::close(fd);
      return st;
    }
  } else {
    return Status::InvalidArgument(
        StrCat("address must start with unix: or tcp:, got ", address_));
  }
  fd_ = fd;
  ++stats_.connects;
  return Status::OK();
}

Status NetClient::SendAll(std::string_view data) {
  const Clock::time_point deadline = Clock::now() + options_.io_timeout;
  size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{fd_, POLLOUT, 0};
    int rc = ::poll(&pfd, 1, MsUntil(deadline));
    if (rc == 0) return Status::Unavailable("send deadline exceeded");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Transport("poll(send)");
    }
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Transport("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> NetClient::ReadFrame() {
  const Clock::time_point deadline = Clock::now() + options_.io_timeout;
  FrameDecoder decoder;
  std::string payload;
  char buf[1 << 14];
  for (;;) {
    RELCOMP_ASSIGN_OR_RETURN(bool have, decoder.Next(&payload));
    if (have) return payload;
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, MsUntil(deadline));
    if (rc == 0) return Status::Unavailable("reply deadline exceeded");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Transport("poll(recv)");
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Unavailable(
          "connection closed before a complete reply (torn frame)");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Transport("recv");
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<WireReply> NetClient::RoundTripOnce(const WireRequest& request) {
  Status conn = EnsureConnected();
  if (!conn.ok()) return conn;
  Status sent = SendAll(EncodeFrame(request.Serialize()));
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  Result<std::string> payload = ReadFrame();
  if (!payload.ok()) {
    Disconnect();
    // Frame-layer defects (bad magic, CRC mismatch) come back as
    // kInvalidArgument from the decoder, but for the caller they are
    // transport failures: the stream is dead, reconnect and retry.
    if (payload.status().code() != StatusCode::kUnavailable) {
      return Status::Unavailable(payload.status().message());
    }
    return payload.status();
  }
  Result<WireReply> reply = WireReply::Deserialize(*payload);
  if (!reply.ok()) {
    Disconnect();
    return Status::Unavailable(
        StrCat("undecodable reply: ", reply.status().message()));
  }
  ++stats_.round_trips;
  return reply;
}

Result<WireReply> NetClient::Call(const WireRequest& request) {
  Status last = Status::OK();
  for (size_t attempt = 0;; ++attempt) {
    Result<WireReply> reply = RoundTripOnce(request);
    if (reply.ok()) {
      // A typed kUnavailable reply (backend restarting) is retryable
      // exactly like a transport failure — fall through to backoff.
      if (reply->code != StatusCode::kUnavailable) return reply;
      last = Status::Unavailable(reply->message);
      if (options_.honor_retry_after && reply->retry_after_ms > 0 &&
          attempt < options_.max_retries) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(reply->retry_after_ms));
        ++stats_.backoff_waits;
      }
    } else if (reply.status().code() == StatusCode::kUnavailable) {
      last = reply.status();
    } else {
      return reply.status();  // non-transport error: caller's problem
    }
    if (attempt >= options_.max_retries) {
      return Status::Unavailable(
          StrCat("giving up after ", attempt + 1, " attempts: ",
                 last.message()));
    }
    ++stats_.retries;
    // Capped exponential backoff with full jitter.
    const uint64_t base = static_cast<uint64_t>(options_.backoff_base.count());
    const uint64_t cap = static_cast<uint64_t>(options_.backoff_cap.count());
    uint64_t delay = std::min(cap, base << std::min<size_t>(attempt, 20));
    if (delay > 0) {
      delay = std::uniform_int_distribution<uint64_t>(delay / 2, delay)(
          jitter_);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      ++stats_.backoff_waits;
    }
  }
}

Status NetClient::Submit(const std::string& key, const JobSpec& spec) {
  WireRequest req;
  req.op = WireOp::kSubmit;
  req.key = key;
  req.job = spec.Serialize();
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  return reply.ToStatus();
}

Result<WireReply> NetClient::Poll(const std::string& key) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = key;
  return Call(req);
}

Status NetClient::Cancel(const std::string& key) {
  WireRequest req;
  req.op = WireOp::kCancel;
  req.key = key;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  return reply.ToStatus();
}

Result<std::string> NetClient::ServerStatus() {
  WireRequest req;
  req.op = WireOp::kStatus;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  RELCOMP_RETURN_NOT_OK(reply.ToStatus());
  return reply.message;
}

Result<WireReply> NetClient::AwaitTerminal(const std::string& key,
                                           std::chrono::milliseconds poll_interval,
                                           std::chrono::milliseconds limit) {
  const Clock::time_point deadline = Clock::now() + limit;
  for (;;) {
    Result<WireReply> reply = Poll(key);
    if (reply.ok() && reply->code == StatusCode::kOk &&
        reply->state == WireJobState::kDone) {
      return reply;
    }
    // kUnavailable after exhausting Call's own retries: the server is
    // down for longer than one backoff cycle — keep waiting here, the
    // whole point is to span a restart. Other errors are terminal.
    if (!reply.ok() &&
        reply.status().code() != StatusCode::kUnavailable) {
      return reply.status();
    }
    if (reply.ok() && reply->code != StatusCode::kOk &&
        reply->code != StatusCode::kUnavailable) {
      return reply->ToStatus();
    }
    if (Clock::now() >= deadline) {
      return Status::Unavailable(
          StrCat("job \"", key, "\" not terminal within ", limit.count(),
                 " ms"));
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

}  // namespace relcomp
