#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "util/str.h"

namespace relcomp {
namespace {

using Clock = std::chrono::steady_clock;

Status Transport(std::string_view what) {
  return Status::Unavailable(StrCat(what, ": ", std::strerror(errno)));
}

/// Remaining milliseconds before `deadline`, clamped to [0, int-max].
int MsUntil(Clock::time_point deadline) {
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
  return static_cast<int>(std::clamp<long long>(ms, 0, 1 << 30));
}

}  // namespace

NetClient::NetClient(std::string address, NetClientOptions options)
    : options_(options), jitter_(options.jitter_seed) {
  // Split the comma-separated failover list. Empty segments are
  // dropped; a wholly empty address yields one empty endpoint whose
  // connect attempt reports the usual typed error.
  size_t pos = 0;
  while (pos <= address.size()) {
    size_t comma = address.find(',', pos);
    if (comma == std::string::npos) comma = address.size();
    std::string endpoint = address.substr(pos, comma - pos);
    if (!endpoint.empty()) endpoints_.push_back(std::move(endpoint));
    pos = comma + 1;
  }
  if (endpoints_.empty()) endpoints_.push_back(std::string());
}

NetClient::~NetClient() { Disconnect(); }

void NetClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::RotateEndpoint() {
  if (endpoints_.size() < 2) return;
  active_ = (active_ + 1) % endpoints_.size();
  ++stats_.failovers;
}

Status NetClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  const std::string& address = endpoints_[active_];
  int fd = -1;
  if (address.rfind("unix:", 0) == 0) {
    std::string path = address.substr(5);
    if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return Status::InvalidArgument(StrCat("bad unix address: ", address));
    }
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Transport("socket(unix)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = Transport(StrCat("connect ", address));
      ::close(fd);
      return st;
    }
  } else if (address.rfind("tcp:", 0) == 0) {
    std::string rest = address.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(StrCat("bad tcp address: ", address));
    }
    std::string ip = rest.substr(0, colon);
    int port = std::atoi(rest.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      return Status::InvalidArgument(StrCat("bad tcp port in: ", address));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument(
          StrCat("tcp host must be an IPv4 literal: ", ip));
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Transport("socket(tcp)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = Transport(StrCat("connect ", address));
      ::close(fd);
      return st;
    }
  } else {
    return Status::InvalidArgument(
        StrCat("address must start with unix: or tcp:, got ", address));
  }
  fd_ = fd;
  ++stats_.connects;
  return Status::OK();
}

Status NetClient::SendAll(std::string_view data) {
  const Clock::time_point deadline = Clock::now() + options_.io_timeout;
  size_t off = 0;
  while (off < data.size()) {
    pollfd pfd{fd_, POLLOUT, 0};
    int rc = ::poll(&pfd, 1, MsUntil(deadline));
    if (rc == 0) return Status::Unavailable("send deadline exceeded");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Transport("poll(send)");
    }
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Transport("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> NetClient::ReadFrame() {
  const Clock::time_point deadline = Clock::now() + options_.io_timeout;
  FrameDecoder decoder;
  // Replies may arrive v2 (the server mirrors our format, or has
  // compression/auth of its own); with a key set, every reply must
  // prove itself.
  decoder.set_accept_v2(true);
  if (!options_.auth_key.empty()) {
    decoder.set_auth_key(options_.auth_key);
    decoder.set_auth_key2(options_.auth_key2);
  }
  std::string payload;
  char buf[1 << 14];
  for (;;) {
    RELCOMP_ASSIGN_OR_RETURN(bool have, decoder.Next(&payload));
    if (have) return payload;
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, MsUntil(deadline));
    if (rc == 0) return Status::Unavailable("reply deadline exceeded");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Transport("poll(recv)");
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Unavailable(
          "connection closed before a complete reply (torn frame)");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Transport("recv");
    }
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

Result<WireReply> NetClient::RoundTripOnce(const WireRequest& request) {
  Status conn = EnsureConnected();
  if (!conn.ok()) return conn;
  FrameCodecOptions codec;
  codec.auth_key = options_.auth_key;
  codec.compress_threshold = options_.compress_threshold;
  Status sent = SendAll(codec.v2()
                            ? EncodeFrameV2(request.Serialize(), codec)
                            : EncodeFrame(request.Serialize()));
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  Result<std::string> payload = ReadFrame();
  if (!payload.ok()) {
    Disconnect();
    // An authentication violation is terminal — retrying with the same
    // key cannot succeed, so it must not be laundered into a retryable
    // kUnavailable.
    if (payload.status().code() == StatusCode::kPermissionDenied) {
      return payload.status();
    }
    // Frame-layer defects (bad magic, CRC mismatch) come back as
    // kInvalidArgument from the decoder, but for the caller they are
    // transport failures: the stream is dead, reconnect and retry.
    if (payload.status().code() != StatusCode::kUnavailable) {
      return Status::Unavailable(payload.status().message());
    }
    return payload.status();
  }
  Result<WireReply> reply = WireReply::Deserialize(*payload);
  if (!reply.ok()) {
    Disconnect();
    return Status::Unavailable(
        StrCat("undecodable reply: ", reply.status().message()));
  }
  ++stats_.round_trips;
  return reply;
}

Result<WireReply> NetClient::Call(const WireRequest& request) {
  const bool bounded = options_.call_deadline.count() > 0;
  const Clock::time_point deadline = Clock::now() + options_.call_deadline;
  // Sleeps never overshoot the caller deadline.
  auto bounded_sleep = [&](uint64_t ms) {
    if (bounded) ms = std::min<uint64_t>(ms, static_cast<uint64_t>(
                                                 MsUntil(deadline)));
    if (ms == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    ++stats_.backoff_waits;
  };
  Status last = Status::OK();
  for (size_t attempt = 0;; ++attempt) {
    Result<WireReply> reply = RoundTripOnce(request);
    if (reply.ok()) {
      // A typed kUnavailable reply (backend restarting, orphaned
      // shard) is retryable exactly like a transport failure — but
      // against the NEXT endpoint of a failover list, this one having
      // just declared itself unable to serve.
      if (reply->code != StatusCode::kUnavailable) return reply;
      last = Status::Unavailable(reply->message);
      if (endpoints_.size() > 1) Disconnect();
      RotateEndpoint();
      if (options_.honor_retry_after && reply->retry_after_ms > 0 &&
          attempt < options_.max_retries) {
        bounded_sleep(reply->retry_after_ms);
      }
    } else if (reply.status().code() == StatusCode::kUnavailable) {
      last = reply.status();
      RotateEndpoint();
    } else {
      return reply.status();  // non-transport error: caller's problem
    }
    if (attempt >= options_.max_retries) {
      return Status::Unavailable(
          StrCat("giving up after ", attempt + 1, " attempts: ",
                 last.message()));
    }
    if (bounded && Clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          StrCat("call deadline (", options_.call_deadline.count(),
                 " ms) exceeded after ", attempt + 1, " attempts: ",
                 last.message()));
    }
    ++stats_.retries;
    // Capped exponential backoff with full jitter.
    const uint64_t base = static_cast<uint64_t>(options_.backoff_base.count());
    const uint64_t cap = static_cast<uint64_t>(options_.backoff_cap.count());
    uint64_t delay = std::min(cap, base << std::min<size_t>(attempt, 20));
    if (delay > 0) {
      delay = std::uniform_int_distribution<uint64_t>(delay / 2, delay)(
          jitter_);
      bounded_sleep(delay);
    }
  }
}

Status NetClient::Submit(const std::string& key, const JobSpec& spec) {
  WireRequest req;
  req.op = WireOp::kSubmit;
  req.key = key;
  req.job = spec.Serialize();
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  return reply.ToStatus();
}

Result<WireReply> NetClient::Poll(const std::string& key) {
  WireRequest req;
  req.op = WireOp::kPoll;
  req.key = key;
  return Call(req);
}

Status NetClient::Cancel(const std::string& key) {
  WireRequest req;
  req.op = WireOp::kCancel;
  req.key = key;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  return reply.ToStatus();
}

Result<std::string> NetClient::ServerStatus() {
  WireRequest req;
  req.op = WireOp::kStatus;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  RELCOMP_RETURN_NOT_OK(reply.ToStatus());
  return reply.message;
}

Result<std::string> NetClient::Ring() {
  WireRequest req;
  req.op = WireOp::kRing;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  RELCOMP_RETURN_NOT_OK(reply.ToStatus());
  return reply.message;
}

Result<std::string> NetClient::Health() {
  WireRequest req;
  req.op = WireOp::kHealth;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  RELCOMP_RETURN_NOT_OK(reply.ToStatus());
  return reply.message;
}

Status NetClient::Adopt(size_t shard) {
  WireRequest req;
  req.op = WireOp::kAdopt;
  req.key = StrCat(shard);
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  return reply.ToStatus();
}

Status NetClient::Handoff(size_t shard, const std::string& successor) {
  WireRequest req;
  req.op = WireOp::kHandoff;
  req.key = StrCat(shard);
  req.job = successor;
  RELCOMP_ASSIGN_OR_RETURN(WireReply reply, Call(req));
  return reply.ToStatus();
}

Result<WireReply> NetClient::AwaitTerminal(const std::string& key,
                                           std::chrono::milliseconds poll_interval,
                                           std::chrono::milliseconds limit) {
  const Clock::time_point deadline = Clock::now() + limit;
  for (;;) {
    Result<WireReply> reply = Poll(key);
    if (reply.ok() && reply->code == StatusCode::kOk &&
        reply->state == WireJobState::kDone) {
      return reply;
    }
    // kUnavailable (or a per-call deadline expiry) after exhausting
    // Call's own retries: the server is down for longer than one
    // backoff cycle — keep waiting here, the whole point is to span a
    // restart; `limit` is the overall bound. Other errors are terminal.
    if (!reply.ok() &&
        reply.status().code() != StatusCode::kUnavailable &&
        reply.status().code() != StatusCode::kDeadlineExceeded) {
      return reply.status();
    }
    if (reply.ok() && reply->code != StatusCode::kOk &&
        reply->code != StatusCode::kUnavailable) {
      return reply->ToStatus();
    }
    if (Clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          StrCat("job \"", key, "\" not terminal within ", limit.count(),
                 " ms"));
    }
    std::this_thread::sleep_for(poll_interval);
  }
}

}  // namespace relcomp
