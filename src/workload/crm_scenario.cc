#include "workload/crm_scenario.h"

#include "constraints/integrity_constraints.h"
#include "query/parser.h"
#include "util/str.h"

namespace relcomp {

Result<CrmScenario> CrmScenario::Make(const CrmOptions& options) {
  CrmScenario s;
  s.options_ = options;

  auto db_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(RelationSchema(
      "Cust", {AttributeDef::Inf("cid"), AttributeDef::Inf("name"),
               AttributeDef::Inf("cc"), AttributeDef::Inf("ac"),
               AttributeDef::Inf("phn")})));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(RelationSchema(
      "Supt", {AttributeDef::Inf("eid"), AttributeDef::Inf("dept"),
               AttributeDef::Inf("cid")})));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(RelationSchema(
      "Manage", {AttributeDef::Inf("eid1"), AttributeDef::Inf("eid2")})));
  s.db_schema_ = db_schema;

  auto master_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(RelationSchema(
      "DCust", {AttributeDef::Inf("cid"), AttributeDef::Inf("name"),
                AttributeDef::Inf("ac"), AttributeDef::Inf("phn")})));
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(RelationSchema(
      "Managem", {AttributeDef::Inf("eid1"), AttributeDef::Inf("eid2")})));
  RELCOMP_RETURN_NOT_OK(EnsureEmptyMasterRelation(master_schema.get()));
  s.master_schema_ = master_schema;

  s.db_ = Database(db_schema);
  s.master_ = Database(master_schema);

  // Master data: all domestic customers.
  for (size_t i = 0; i < options.num_domestic; ++i) {
    std::string ac = (options.ac908_every > 0 && i % options.ac908_every == 0)
                         ? "908"
                         : "201";
    RELCOMP_RETURN_NOT_OK(s.master_.Insert(
        "DCust", Tuple({Value::Str(StrCat("c", i)),
                        Value::Str(StrCat("n", i)), Value::Str(ac),
                        Value::Str(StrCat("555-", 1000 + i))})));
  }
  // Master data: the management chain e0 <- e1 <- ... (ei+1 manages ei:
  // Managem(eid1, eid2) says eid2 reports directly to eid1).
  for (size_t i = 0; i + 1 < options.manage_chain; ++i) {
    RELCOMP_RETURN_NOT_OK(s.master_.Insert(
        "Managem", Tuple({Value::Str(StrCat("e", i + 1)),
                          Value::Str(StrCat("e", i))})));
  }

  // Database: every domestic customer (cc = "01") plus the
  // international ones (cc = "44").
  for (size_t i = 0; i < options.num_domestic; ++i) {
    std::string ac = (options.ac908_every > 0 && i % options.ac908_every == 0)
                         ? "908"
                         : "201";
    RELCOMP_RETURN_NOT_OK(s.db_.Insert(
        "Cust", Tuple({Value::Str(StrCat("c", i)),
                       Value::Str(StrCat("n", i)), Value::Str("01"),
                       Value::Str(ac),
                       Value::Str(StrCat("555-", 1000 + i))})));
  }
  for (size_t i = 0; i < options.num_international; ++i) {
    RELCOMP_RETURN_NOT_OK(s.db_.Insert(
        "Cust", Tuple({Value::Str(StrCat("x", i)),
                       Value::Str(StrCat("xn", i)), Value::Str("44"),
                       Value::Str("20"),
                       Value::Str(StrCat("777-", 1000 + i))})));
  }
  // Support assignments, round-robin over the domestic customers.
  size_t cust_cursor = 0;
  for (size_t e = 0; e < options.num_employees; ++e) {
    for (size_t j = 0;
         j < options.support_per_employee && options.num_domestic > 0; ++j) {
      size_t c = cust_cursor++ % options.num_domestic;
      RELCOMP_RETURN_NOT_OK(s.db_.Insert(
          "Supt", Tuple({Value::Str(StrCat("e", e)),
                         Value::Str(StrCat("d", e % 2)),
                         Value::Str(StrCat("c", c))})));
    }
  }
  // Manage mirrors the master chain (it contains all of Managem).
  for (size_t i = 0; i + 1 < options.manage_chain; ++i) {
    RELCOMP_RETURN_NOT_OK(s.db_.Insert(
        "Manage", Tuple({Value::Str(StrCat("e", i + 1)),
                         Value::Str(StrCat("e", i))})));
  }
  return s;
}

Result<ContainmentConstraint> CrmScenario::Phi0() const {
  RELCOMP_ASSIGN_OR_RETURN(
      ConjunctiveQuery q,
      ParseConjunctiveQuery(
          R"(q0(c) :- Cust(c, n, cc, a, p), Supt(e, d, c), cc = "01".)"));
  RELCOMP_RETURN_NOT_OK(q.Validate(*db_schema_));
  return ContainmentConstraint::Subset(AnyQuery::Cq(std::move(q)), "DCust",
                                       {0});
}

Result<ContainmentConstraint> CrmScenario::Phi1(size_t k) const {
  // q(e) :- Supt(e, d1, c1), ..., Supt(e, d_{k+1}, c_{k+1}),
  //         ci != cj for i < j   ⊆ ∅
  std::vector<Atom> body;
  for (size_t i = 0; i <= k; ++i) {
    body.push_back(Atom::Relation(
        "Supt", {Term::Var("e"), Term::Var(StrCat("d", i)),
                 Term::Var(StrCat("c", i))}));
  }
  for (size_t i = 0; i <= k; ++i) {
    for (size_t j = i + 1; j <= k; ++j) {
      body.push_back(
          Atom::Ne(Term::Var(StrCat("c", i)), Term::Var(StrCat("c", j))));
    }
  }
  ConjunctiveQuery q(StrCat("phi1_k", k), {Term::Var("e")}, std::move(body));
  RELCOMP_RETURN_NOT_OK(q.Validate(*db_schema_));
  return ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(q)));
}

Result<ConstraintSet> CrmScenario::FdSigma2() const {
  // Supt: eid -> dept, cid (columns 0 -> 1, 2).
  FunctionalDependency fd("Supt", {0}, {1, 2});
  RELCOMP_ASSIGN_OR_RETURN(std::vector<ContainmentConstraint> ccs,
                           fd.ToContainmentConstraints(*db_schema_));
  ConstraintSet set;
  for (ContainmentConstraint& cc : ccs) set.Add(std::move(cc));
  return set;
}

Result<ConstraintSet> CrmScenario::IndConstraints() const {
  ConstraintSet set;
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint supt_cc,
      MakeIndToMaster(*db_schema_, "Supt", {2}, "DCust", {0}));
  set.Add(std::move(supt_cc));
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint manage_cc,
      MakeIndToMaster(*db_schema_, "Manage", {0, 1}, "Managem", {0, 1}));
  set.Add(std::move(manage_cc));
  return set;
}

namespace {

Result<AnyQuery> ParseValidatedCq(const std::string& text,
                                  const Schema& schema) {
  RELCOMP_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseConjunctiveQuery(text));
  RELCOMP_RETURN_NOT_OK(q.Validate(schema));
  return AnyQuery::Cq(std::move(q));
}

}  // namespace

Result<AnyQuery> CrmScenario::Q0() const {
  return ParseValidatedCq(
      R"(Q0(c, n) :- Cust(c, n, cc, a, p), a = "908".)", *db_schema_);
}

Result<AnyQuery> CrmScenario::Q1() const {
  return ParseValidatedCq(
      R"(Q1(c) :- Cust(c, n, cc, a, p), Supt(e, d, c), a = "908",
                  cc = "01", e = "e0".)",
      *db_schema_);
}

Result<AnyQuery> CrmScenario::Q2() const {
  return ParseValidatedCq(R"(Q2(c) :- Supt(e, d, c), e = "e0".)",
                          *db_schema_);
}

Result<AnyQuery> CrmScenario::Q3Datalog() const {
  RELCOMP_ASSIGN_OR_RETURN(DatalogProgram p, ParseDatalogProgram(R"(
      Above(x) :- Manage(x, y), y = "e0".
      Above(x) :- Manage(x, y), Above(y).
  )"));
  RELCOMP_RETURN_NOT_OK(p.Validate(*db_schema_));
  return AnyQuery::Fp(std::move(p));
}

Result<AnyQuery> CrmScenario::Q3Cq() const {
  return ParseValidatedCq(R"(Q3(x) :- Manage(x, y), y = "e0".)",
                          *db_schema_);
}

Result<AnyQuery> CrmScenario::Q4() const {
  return ParseValidatedCq(
      R"(Q4(e, d, c) :- Supt(e, d, c), e = "e0", d = "d0".)", *db_schema_);
}

}  // namespace relcomp
