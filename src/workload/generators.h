#ifndef RELCOMP_WORKLOAD_GENERATORS_H_
#define RELCOMP_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "constraints/containment_constraint.h"
#include "query/conjunctive_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Deterministic pseudo-random generators for property tests and
/// scaling benchmarks. All generators take an explicit engine so runs
/// are reproducible from a seed.
using Rng = std::mt19937_64;

/// Parameters for random relational instances.
struct RandomInstanceOptions {
  size_t num_relations = 2;
  size_t min_arity = 1;
  size_t max_arity = 3;
  /// Values are Int(0..value_pool-1).
  size_t value_pool = 4;
  size_t tuples_per_relation = 3;
};

/// A random schema with relations R0..R{n-1} over the infinite domain.
std::shared_ptr<Schema> RandomSchema(const RandomInstanceOptions& options,
                                     Rng* rng);

/// A random instance of `schema` with values drawn from the pool.
Database RandomDatabase(std::shared_ptr<const Schema> schema,
                        const RandomInstanceOptions& options, Rng* rng);

/// Parameters for random conjunctive queries.
struct RandomCqOptions {
  size_t num_atoms = 2;
  size_t num_variables = 3;
  size_t num_head_terms = 2;
  /// Probability (percent) that an atom argument is a constant.
  int constant_pct = 20;
  /// Probability (percent) of appending one disequality atom.
  int disequality_pct = 30;
  size_t value_pool = 4;
};

/// A random safe CQ over `schema`. Head terms are variables occurring
/// in the body (safety holds by construction).
ConjunctiveQuery RandomCq(const Schema& schema, const RandomCqOptions& options,
                          Rng* rng);

/// A random set of IND containment constraints from `db_schema`
/// relations into `master_schema` relations (matching arities by
/// truncation to the shorter; skips pairs that cannot align).
Result<ConstraintSet> RandomIndConstraints(const Schema& db_schema,
                                           const Schema& master_schema,
                                           size_t count, Rng* rng);

}  // namespace relcomp

#endif  // RELCOMP_WORKLOAD_GENERATORS_H_
