#ifndef RELCOMP_WORKLOAD_CRM_SCENARIO_H_
#define RELCOMP_WORKLOAD_CRM_SCENARIO_H_

#include <memory>
#include <string>

#include "constraints/containment_constraint.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Parameters for the synthetic CRM workload modeled on the paper's
/// running example (Examples 1.1, 2.1, 2.2 and Section 2.3).
struct CrmOptions {
  /// Domestic customers in master relation DCust (ids c0..c{n-1}).
  size_t num_domestic = 4;
  /// International customers present only in Cust.
  size_t num_international = 2;
  /// Employees e0..e{m-1}.
  size_t num_employees = 2;
  /// Supt tuples per employee (assigned round-robin over customers).
  size_t support_per_employee = 2;
  /// The "an employee supports at most k customers" bound of CC φ1.
  size_t k_limit = 3;
  /// Share of domestic customers with area code 908 (the NJ query);
  /// every `ac908_every`-th domestic customer gets ac = "908".
  size_t ac908_every = 2;
  /// Depth of the management chain in Manage/Managem.
  size_t manage_chain = 3;
};

/// The paper's CRM scenario, fully materialized:
///
///   database schema R:  Cust(cid, name, cc, ac, phn),
///                       Supt(eid, dept, cid),
///                       Manage(eid1, eid2)
///   master schema  Rm:  DCust(cid, name, ac, phn),
///                       Managem(eid1, eid2),
///                       _Empty()
///
/// with master data Dm (all domestic customers; the management
/// hierarchy), a partially closed database D, the containment
/// constraints of Example 2.1 and the queries of Examples 1.1/2.3.
class CrmScenario {
 public:
  static Result<CrmScenario> Make(const CrmOptions& options = CrmOptions());

  const CrmOptions& options() const { return options_; }
  const std::shared_ptr<const Schema>& db_schema() const { return db_schema_; }
  const std::shared_ptr<const Schema>& master_schema() const {
    return master_schema_;
  }
  const Database& db() const { return db_; }
  const Database& master() const { return master_; }
  Database& mutable_db() { return db_; }

  // ---- Containment constraints (Example 2.1) -------------------------

  /// φ0: domestic supported customers are bounded by DCust:
  ///   q(c) :- Cust(c,n,cc,a,p), Supt(e,d,c), cc = "01"  ⊆  π_cid(DCust).
  Result<ContainmentConstraint> Phi0() const;

  /// φ1: each employee supports at most k customers (CC with target ∅,
  /// built over k+1 Supt atoms with pairwise-distinct cids).
  Result<ContainmentConstraint> Phi1(size_t k) const;

  /// The FD eid -> dept, cid on Supt, compiled to CQ CCs (Prop 2.1).
  Result<ConstraintSet> FdSigma2() const;

  /// Pure-IND variant used by the IND rows of Tables I/II:
  ///   π_cid(Supt) ⊆ π_cid(DCust)  and  π_{eid1,eid2}(Manage) ⊆ Managem.
  Result<ConstraintSet> IndConstraints() const;

  // ---- Queries (Examples 1.1 and Section 2.3) ------------------------

  /// Q0: all customers with ac = "908" (over Cust alone).
  Result<AnyQuery> Q0() const;
  /// Q1: customers with ac = "908" supported by employee e0.
  Result<AnyQuery> Q1() const;
  /// Q2: all customers supported by employee e0.
  Result<AnyQuery> Q2() const;
  /// Q3 (datalog): everybody above e0 in the management hierarchy.
  Result<AnyQuery> Q3Datalog() const;
  /// Q3 (CQ): direct managers of e0 only (the paper's point: the CQ
  /// version cannot be complete unless Manage holds the transitive
  /// closure).
  Result<AnyQuery> Q3Cq() const;
  /// Q4: Supt tuples with eid = e0 and dept = d0 (Example 4.1).
  Result<AnyQuery> Q4() const;

 private:
  CrmOptions options_;
  std::shared_ptr<const Schema> db_schema_;
  std::shared_ptr<const Schema> master_schema_;
  Database db_;
  Database master_;
};

}  // namespace relcomp

#endif  // RELCOMP_WORKLOAD_CRM_SCENARIO_H_
