#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "constraints/integrity_constraints.h"
#include "util/str.h"

namespace relcomp {
namespace {

size_t UniformSize(Rng* rng, size_t lo, size_t hi) {
  return std::uniform_int_distribution<size_t>(lo, hi)(*rng);
}

bool Percent(Rng* rng, int pct) {
  return std::uniform_int_distribution<int>(0, 99)(*rng) < pct;
}

Value RandomValue(Rng* rng, size_t pool) {
  return Value::Int(static_cast<int64_t>(UniformSize(rng, 0, pool - 1)));
}

}  // namespace

std::shared_ptr<Schema> RandomSchema(const RandomInstanceOptions& options,
                                     Rng* rng) {
  auto schema = std::make_shared<Schema>();
  for (size_t i = 0; i < options.num_relations; ++i) {
    size_t arity = UniformSize(rng, options.min_arity, options.max_arity);
    // AddRelation with generated names cannot fail here.
    Status st = schema->AddRelation(StrCat("R", i), arity);
    (void)st;
  }
  return schema;
}

Database RandomDatabase(std::shared_ptr<const Schema> schema,
                        const RandomInstanceOptions& options, Rng* rng) {
  Database db(schema);
  for (const std::string& name : db.schema().relation_names()) {
    const RelationSchema* rs = db.schema().FindRelation(name);
    for (size_t i = 0; i < options.tuples_per_relation; ++i) {
      std::vector<Value> values;
      values.reserve(rs->arity());
      for (size_t c = 0; c < rs->arity(); ++c) {
        values.push_back(RandomValue(rng, options.value_pool));
      }
      db.InsertUnchecked(name, Tuple(std::move(values)));
    }
  }
  return db;
}

ConjunctiveQuery RandomCq(const Schema& schema, const RandomCqOptions& options,
                          Rng* rng) {
  std::vector<std::string> var_names;
  for (size_t i = 0; i < options.num_variables; ++i) {
    var_names.push_back(StrCat("v", i));
  }
  const std::vector<std::string>& relations = schema.relation_names();
  std::vector<Atom> body;
  std::set<std::string> used_vars;
  for (size_t a = 0; a < options.num_atoms; ++a) {
    const std::string& rel =
        relations[UniformSize(rng, 0, relations.size() - 1)];
    const RelationSchema* rs = schema.FindRelation(rel);
    std::vector<Term> args;
    for (size_t c = 0; c < rs->arity(); ++c) {
      if (Percent(rng, options.constant_pct)) {
        args.push_back(Term::Const(RandomValue(rng, options.value_pool)));
      } else {
        const std::string& v =
            var_names[UniformSize(rng, 0, var_names.size() - 1)];
        used_vars.insert(v);
        args.push_back(Term::Var(v));
      }
    }
    body.push_back(Atom::Relation(rel, std::move(args)));
  }
  std::vector<std::string> bound(used_vars.begin(), used_vars.end());
  if (!bound.empty() && Percent(rng, options.disequality_pct)) {
    const std::string& v1 = bound[UniformSize(rng, 0, bound.size() - 1)];
    const std::string& v2 = bound[UniformSize(rng, 0, bound.size() - 1)];
    if (v1 != v2) body.push_back(Atom::Ne(Term::Var(v1), Term::Var(v2)));
  }
  std::vector<Term> head;
  for (size_t h = 0; h < options.num_head_terms && !bound.empty(); ++h) {
    head.push_back(Term::Var(bound[UniformSize(rng, 0, bound.size() - 1)]));
  }
  return ConjunctiveQuery("Qr", std::move(head), std::move(body));
}

Result<ConstraintSet> RandomIndConstraints(const Schema& db_schema,
                                           const Schema& master_schema,
                                           size_t count, Rng* rng) {
  ConstraintSet set;
  const std::vector<std::string>& db_rels = db_schema.relation_names();
  std::vector<std::string> master_rels;
  for (const std::string& name : master_schema.relation_names()) {
    if (master_schema.FindRelation(name)->arity() > 0) {
      master_rels.push_back(name);
    }
  }
  if (db_rels.empty() || master_rels.empty()) return set;
  for (size_t i = 0; i < count; ++i) {
    const std::string& db_rel =
        db_rels[UniformSize(rng, 0, db_rels.size() - 1)];
    const std::string& m_rel =
        master_rels[UniformSize(rng, 0, master_rels.size() - 1)];
    size_t width = std::min(db_schema.FindRelation(db_rel)->arity(),
                            master_schema.FindRelation(m_rel)->arity());
    if (width == 0) continue;
    size_t cols = UniformSize(rng, 1, width);
    std::vector<size_t> db_cols(cols), m_cols(cols);
    for (size_t c = 0; c < cols; ++c) {
      db_cols[c] = c;
      m_cols[c] = c;
    }
    RELCOMP_ASSIGN_OR_RETURN(
        ContainmentConstraint cc,
        MakeIndToMaster(db_schema, db_rel, std::move(db_cols), m_rel,
                        std::move(m_cols)));
    set.Add(std::move(cc));
  }
  return set;
}

}  // namespace relcomp
