#ifndef RELCOMP_RELATIONAL_RADIX_INDEX_H_
#define RELCOMP_RELATIONAL_RADIX_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relational/value_interner.h"

namespace relcomp {

/// Adaptive radix tree over fixed-length packed big-endian ValueId
/// keys (4 bytes per indexed column, so lexicographic byte order equals
/// column-major ValueId order — NOT Value order; ids are opaque).
///
/// Nodes adapt among four sizes (4/16/48/256 children) and compress
/// one-child paths into inline prefixes, so a composite index over k
/// columns costs O(distinct prefixes), not O(rows · k). Every leaf
/// sits at full key depth and holds the posting list of matching row
/// indexes in insertion order (ascending when built from a scan).
///
/// Build is single-threaded; once built the tree is immutable and
/// probes are safe from any number of readers concurrently.
class RadixIndex {
 public:
  /// At most 8 columns per composite key (32 key bytes) — wider bound
  /// sets fall back to a prefix of the first 8.
  static constexpr size_t kMaxColumns = 8;
  static constexpr size_t kMaxKeyBytes = kMaxColumns * sizeof(ValueId);

  /// `key_bytes` must be a positive multiple of 4, at most kMaxKeyBytes.
  explicit RadixIndex(size_t key_bytes);
  ~RadixIndex();

  RadixIndex(const RadixIndex&) = delete;
  RadixIndex& operator=(const RadixIndex&) = delete;

  /// Packs `n` ids big-endian into `out` (4·n bytes).
  static void PackKey(const ValueId* ids, size_t n, uint8_t* out) {
    for (size_t i = 0; i < n; ++i) {
      ValueId id = ids[i];
      out[4 * i + 0] = static_cast<uint8_t>(id >> 24);
      out[4 * i + 1] = static_cast<uint8_t>(id >> 16);
      out[4 * i + 2] = static_cast<uint8_t>(id >> 8);
      out[4 * i + 3] = static_cast<uint8_t>(id);
    }
  }

  /// Appends `row` to the posting list of `key` (key_bytes() bytes).
  void Insert(const uint8_t* key, uint32_t row);

  /// Posting list for `key`, or nullptr when absent. The returned
  /// vector lives as long as the index and is never mutated after
  /// build.
  const std::vector<uint32_t>* Probe(const uint8_t* key) const;

  size_t key_bytes() const { return key_bytes_; }

  /// Heap footprint estimate (nodes + posting lists), for budget
  /// charging.
  size_t ApproxBytes() const { return bytes_; }

 private:
  struct Node;
  struct LeafNode;
  struct Node4;
  struct Node16;
  struct Node48;
  struct Node256;

  Node** FindChild(Node* n, uint8_t byte) const;
  /// Adds `child` under `byte`, growing `*slot` to the next node size
  /// when full.
  void AddChild(Node** slot, uint8_t byte, Node* child);
  LeafNode* NewLeaf(const uint8_t* suffix, size_t len, uint32_t row);
  static void FreeNode(Node* n);

  Node* root_ = nullptr;
  size_t key_bytes_;
  size_t bytes_ = 0;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_RADIX_INDEX_H_
