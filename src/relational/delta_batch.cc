#include "relational/delta_batch.h"

#include "util/str.h"

namespace relcomp {
namespace {

/// Validation pass: every op must name a schema relation, match its
/// arity, and (inserts) respect the attribute domains — the same rules
/// Database::Insert enforces, checked here before anything mutates.
Status ValidateOps(const std::vector<DeltaOp>& ops, const Schema& schema,
                   std::string_view side) {
  for (const DeltaOp& op : ops) {
    const RelationSchema* rs = schema.FindRelation(op.relation);
    if (rs == nullptr) {
      return Status::NotFound(
          StrCat("delta batch (", side, "): unknown relation: ",
                 op.relation));
    }
    if (op.tuple.arity() != rs->arity()) {
      return Status::InvalidArgument(
          StrCat("delta batch (", side, "): arity mismatch for ",
                 op.relation, ": tuple has ", op.tuple.arity(),
                 " values, schema has ", rs->arity()));
    }
    if (!op.insert) continue;
    for (size_t i = 0; i < op.tuple.arity(); ++i) {
      if (!rs->attribute(i).domain->Contains(op.tuple[i])) {
        return Status::InvalidArgument(
            StrCat("delta batch (", side, "): value ",
                   op.tuple[i].ToString(), " not in domain ",
                   rs->attribute(i).domain->name(), " of ", op.relation,
                   ".", rs->attribute(i).name));
      }
    }
  }
  return Status::OK();
}

/// Applies one side's ops, snapshotting each touched relation's built
/// indexes the first time it is effectively mutated.
void ApplySide(const std::vector<DeltaOp>& ops, Database* target,
               std::string_view side, std::set<std::string>* inserted,
               std::set<std::string>* deleted, DeltaApplyReport* report) {
  for (const DeltaOp& op : ops) {
    const bool first_touch = inserted->count(op.relation) == 0 &&
                             deleted->count(op.relation) == 0;
    std::vector<std::vector<size_t>> built;
    if (first_touch) {
      built = target->Get(op.relation).BuiltIndexColumnSets();
    }
    bool effective;
    if (op.insert) {
      effective = target->InsertUnchecked(op.relation, op.tuple);
      if (effective) {
        ++report->applied_inserts;
        inserted->insert(op.relation);
      }
    } else {
      effective = target->Erase(op.relation, op.tuple);
      if (effective) {
        ++report->applied_deletes;
        deleted->insert(op.relation);
      }
    }
    if (!effective) {
      ++report->noops;
      continue;
    }
    if (first_touch) {
      for (std::vector<size_t>& cols : built) {
        report->dirtied_indexes.push_back(
            DirtiedIndex{std::string(side), op.relation, std::move(cols)});
      }
    }
  }
}

}  // namespace

std::string DeltaOp::ToString() const {
  return StrCat(insert ? "insert " : "delete ", relation,
                tuple.ToString());
}

std::string DeltaBatch::ToString() const {
  std::string out;
  for (const DeltaOp& op : db_ops) {
    out += op.ToString();
    out.push_back('\n');
  }
  for (const DeltaOp& op : master_ops) {
    out += "master ";
    out += op.ToString();
    out.push_back('\n');
  }
  return out;
}

std::string DirtiedIndex::ToString() const {
  std::string cols;
  for (size_t c : columns) {
    if (!cols.empty()) cols.push_back(',');
    cols += StrCat(c);
  }
  return StrCat(side, ":", relation, "[", cols, "]");
}

std::string DeltaApplyReport::ToString() const {
  std::string out = StrCat("applied ", applied_inserts, " inserts, ",
                           applied_deletes, " deletes, ", noops, " no-ops");
  auto names = [](const std::set<std::string>& s) {
    std::string joined;
    for (const std::string& n : s) {
      if (!joined.empty()) joined.push_back(',');
      joined += n;
    }
    return joined;
  };
  if (!db_inserted.empty()) out += StrCat("; D+={", names(db_inserted), "}");
  if (!db_deleted.empty()) out += StrCat("; D-={", names(db_deleted), "}");
  if (!master_inserted.empty()) {
    out += StrCat("; Dm+={", names(master_inserted), "}");
  }
  if (!master_deleted.empty()) {
    out += StrCat("; Dm-={", names(master_deleted), "}");
  }
  if (!dirtied_indexes.empty()) {
    out += "; dirtied indexes: ";
    for (size_t i = 0; i < dirtied_indexes.size(); ++i) {
      if (i > 0) out += ", ";
      out += dirtied_indexes[i].ToString();
    }
  }
  return out;
}

Result<DeltaApplyReport> ApplyDeltaBatch(const DeltaBatch& batch,
                                         Database* db, Database* master) {
  if (db == nullptr) {
    return Status::InvalidArgument("ApplyDeltaBatch: db must not be null");
  }
  if (master == nullptr && !batch.master_ops.empty()) {
    return Status::InvalidArgument(
        "ApplyDeltaBatch: batch has master ops but master is null");
  }
  RELCOMP_RETURN_NOT_OK(ValidateOps(batch.db_ops, db->schema(), "db"));
  if (master != nullptr) {
    RELCOMP_RETURN_NOT_OK(
        ValidateOps(batch.master_ops, master->schema(), "master"));
  }
  DeltaApplyReport report;
  ApplySide(batch.db_ops, db, "db", &report.db_inserted,
            &report.db_deleted, &report);
  if (master != nullptr) {
    ApplySide(batch.master_ops, master, "master", &report.master_inserted,
              &report.master_deleted, &report);
  }
  return report;
}

Status StageInsertsOnOverlay(const DeltaBatch& batch,
                             DatabaseOverlay* overlay) {
  if (overlay == nullptr) {
    return Status::InvalidArgument(
        "StageInsertsOnOverlay: overlay must not be null");
  }
  if (!batch.master_ops.empty()) {
    return Status::InvalidArgument(
        "StageInsertsOnOverlay: overlays stage D-side inserts only");
  }
  for (const DeltaOp& op : batch.db_ops) {
    if (!op.insert) {
      return Status::InvalidArgument(
          StrCat("StageInsertsOnOverlay: the overlay layer is insert-only; "
                 "cannot stage ",
                 op.ToString()));
    }
  }
  for (const DeltaOp& op : batch.db_ops) {
    overlay->Add(op.relation, op.tuple);
  }
  return Status::OK();
}

}  // namespace relcomp
