#include "relational/value_interner.h"

namespace relcomp {

ValueId ValueInterner::Insert(const Value& v, bool fresh) {
  ValueId id = fresh ? kInvalidValueId - 1 - static_cast<ValueId>(high_.size())
                     : static_cast<ValueId>(low_.size());
  if (v.is_int()) {
    auto [it, added] = ints_.emplace(v.AsInt(), id);
    if (!added) return it->second;
  } else {
    auto [it, added] = strings_.emplace(v.AsString(), id);
    if (!added) return it->second;
  }
  assert(!frozen() &&
         "ValueInterner grew while frozen for concurrent reads; intern all "
         "values before forking workers");
  (fresh ? high_ : low_).push_back(v);
  return id;
}

ValueId ValueInterner::Intern(const Value& v) { return Insert(v, false); }

ValueId ValueInterner::InternFresh(const Value& v) { return Insert(v, true); }

ValueId ValueInterner::ReserveFreshRange(const std::vector<Value>& values) {
  ValueId first = kInvalidValueId - 1 - static_cast<ValueId>(high_.size());
  for (const Value& v : values) InternFresh(v);
  return first;
}

std::optional<ValueId> ValueInterner::TryGet(const Value& v) const {
  if (v.is_int()) {
    auto it = ints_.find(v.AsInt());
    if (it == ints_.end()) return std::nullopt;
    return it->second;
  }
  auto it = strings_.find(v.AsString());
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

}  // namespace relcomp
