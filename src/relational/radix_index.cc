#include "relational/radix_index.h"

#include <cassert>
#include <cstring>

namespace relcomp {

enum NodeType : uint8_t { kLeaf, kNode4, kNode16, kNode48, kNode256 };

struct RadixIndex::Node {
  NodeType type;
  uint8_t prefix_len = 0;
  uint16_t num_children = 0;
  // Keys are short (≤32 bytes) so the whole compressed path is stored
  // inline — no optimistic prefix skipping, probes never re-check.
  uint8_t prefix[kMaxKeyBytes];

  explicit Node(NodeType t) : type(t) {}
};

struct RadixIndex::LeafNode : Node {
  LeafNode() : Node(kLeaf) {}
  std::vector<uint32_t> rows;
};

struct RadixIndex::Node4 : Node {
  Node4() : Node(kNode4) {}
  uint8_t keys[4];
  Node* children[4] = {nullptr, nullptr, nullptr, nullptr};
};

struct RadixIndex::Node16 : Node {
  Node16() : Node(kNode16) {}
  uint8_t keys[16];
  Node* children[16] = {};
};

struct RadixIndex::Node48 : Node {
  Node48() : Node(kNode48) { std::memset(index, 0xFF, sizeof(index)); }
  uint8_t index[256];  // byte -> child slot, 0xFF when absent
  Node* children[48] = {};
};

struct RadixIndex::Node256 : Node {
  Node256() : Node(kNode256) {}
  Node* children[256] = {};
};

RadixIndex::RadixIndex(size_t key_bytes) : key_bytes_(key_bytes) {
  assert(key_bytes > 0 && key_bytes <= kMaxKeyBytes &&
         key_bytes % sizeof(ValueId) == 0);
}

RadixIndex::~RadixIndex() { FreeNode(root_); }

void RadixIndex::FreeNode(Node* n) {
  if (n == nullptr) return;
  switch (n->type) {
    case kLeaf:
      delete static_cast<LeafNode*>(n);
      return;
    case kNode4: {
      Node4* p = static_cast<Node4*>(n);
      for (int i = 0; i < p->num_children; ++i) FreeNode(p->children[i]);
      delete p;
      return;
    }
    case kNode16: {
      Node16* p = static_cast<Node16*>(n);
      for (int i = 0; i < p->num_children; ++i) FreeNode(p->children[i]);
      delete p;
      return;
    }
    case kNode48: {
      Node48* p = static_cast<Node48*>(n);
      for (int i = 0; i < 48; ++i) FreeNode(p->children[i]);
      delete p;
      return;
    }
    case kNode256: {
      Node256* p = static_cast<Node256*>(n);
      for (int i = 0; i < 256; ++i) FreeNode(p->children[i]);
      delete p;
      return;
    }
  }
}

RadixIndex::LeafNode* RadixIndex::NewLeaf(const uint8_t* suffix, size_t len,
                                          uint32_t row) {
  LeafNode* leaf = new LeafNode();
  leaf->prefix_len = static_cast<uint8_t>(len);
  std::memcpy(leaf->prefix, suffix, len);
  leaf->rows.push_back(row);
  bytes_ += sizeof(LeafNode) + sizeof(uint32_t);
  return leaf;
}

RadixIndex::Node** RadixIndex::FindChild(Node* n, uint8_t byte) const {
  switch (n->type) {
    case kLeaf:
      return nullptr;
    case kNode4: {
      Node4* p = static_cast<Node4*>(n);
      for (int i = 0; i < p->num_children; ++i) {
        if (p->keys[i] == byte) return &p->children[i];
      }
      return nullptr;
    }
    case kNode16: {
      Node16* p = static_cast<Node16*>(n);
      for (int i = 0; i < p->num_children; ++i) {
        if (p->keys[i] == byte) return &p->children[i];
      }
      return nullptr;
    }
    case kNode48: {
      Node48* p = static_cast<Node48*>(n);
      if (p->index[byte] == 0xFF) return nullptr;
      return &p->children[p->index[byte]];
    }
    case kNode256: {
      Node256* p = static_cast<Node256*>(n);
      if (p->children[byte] == nullptr) return nullptr;
      return &p->children[byte];
    }
  }
  return nullptr;
}

void RadixIndex::AddChild(Node** slot, uint8_t byte, Node* child) {
  Node* n = *slot;
  switch (n->type) {
    case kLeaf:
      assert(false && "leaves have no children");
      return;
    case kNode4: {
      Node4* p = static_cast<Node4*>(n);
      if (p->num_children < 4) {
        p->keys[p->num_children] = byte;
        p->children[p->num_children] = child;
        ++p->num_children;
        return;
      }
      Node16* grown = new Node16();
      bytes_ += sizeof(Node16) - sizeof(Node4);
      grown->prefix_len = p->prefix_len;
      std::memcpy(grown->prefix, p->prefix, p->prefix_len);
      grown->num_children = p->num_children;
      std::memcpy(grown->keys, p->keys, p->num_children);
      std::memcpy(grown->children, p->children,
                  p->num_children * sizeof(Node*));
      delete p;
      *slot = grown;
      AddChild(slot, byte, child);
      return;
    }
    case kNode16: {
      Node16* p = static_cast<Node16*>(n);
      if (p->num_children < 16) {
        p->keys[p->num_children] = byte;
        p->children[p->num_children] = child;
        ++p->num_children;
        return;
      }
      Node48* grown = new Node48();
      bytes_ += sizeof(Node48) - sizeof(Node16);
      grown->prefix_len = p->prefix_len;
      std::memcpy(grown->prefix, p->prefix, p->prefix_len);
      grown->num_children = p->num_children;
      for (int i = 0; i < p->num_children; ++i) {
        grown->index[p->keys[i]] = static_cast<uint8_t>(i);
        grown->children[i] = p->children[i];
      }
      delete p;
      *slot = grown;
      AddChild(slot, byte, child);
      return;
    }
    case kNode48: {
      Node48* p = static_cast<Node48*>(n);
      if (p->num_children < 48) {
        p->index[byte] = static_cast<uint8_t>(p->num_children);
        p->children[p->num_children] = child;
        ++p->num_children;
        return;
      }
      Node256* grown = new Node256();
      bytes_ += sizeof(Node256) - sizeof(Node48);
      grown->prefix_len = p->prefix_len;
      std::memcpy(grown->prefix, p->prefix, p->prefix_len);
      grown->num_children = p->num_children;
      for (int b = 0; b < 256; ++b) {
        if (p->index[b] != 0xFF) grown->children[b] = p->children[p->index[b]];
      }
      delete p;
      *slot = grown;
      AddChild(slot, byte, child);
      return;
    }
    case kNode256: {
      Node256* p = static_cast<Node256*>(n);
      assert(p->children[byte] == nullptr);
      p->children[byte] = child;
      ++p->num_children;
      return;
    }
  }
}

void RadixIndex::Insert(const uint8_t* key, uint32_t row) {
  if (root_ == nullptr) {
    root_ = NewLeaf(key, key_bytes_, row);
    return;
  }
  Node** slot = &root_;
  size_t depth = 0;
  for (;;) {
    Node* n = *slot;
    // Length of the agreement between the node's compressed path and
    // the remaining key bytes.
    size_t common = 0;
    while (common < n->prefix_len &&
           n->prefix[common] == key[depth + common]) {
      ++common;
    }
    if (common < n->prefix_len) {
      // Path-compression split: a new Node4 takes the shared prefix;
      // the existing node keeps its tail past the diverging byte.
      Node4* split = new Node4();
      bytes_ += sizeof(Node4);
      split->prefix_len = static_cast<uint8_t>(common);
      std::memcpy(split->prefix, n->prefix, common);
      uint8_t old_byte = n->prefix[common];
      uint8_t new_byte = key[depth + common];
      size_t tail = n->prefix_len - common - 1;
      std::memmove(n->prefix, n->prefix + common + 1, tail);
      n->prefix_len = static_cast<uint8_t>(tail);
      *slot = split;
      Node* fresh = NewLeaf(key + depth + common + 1,
                            key_bytes_ - depth - common - 1, row);
      AddChild(slot, old_byte, n);
      AddChild(slot, new_byte, fresh);
      return;
    }
    depth += n->prefix_len;
    if (n->type == kLeaf) {
      assert(depth == key_bytes_);
      LeafNode* leaf = static_cast<LeafNode*>(n);
      leaf->rows.push_back(row);
      bytes_ += sizeof(uint32_t);
      return;
    }
    uint8_t byte = key[depth];
    Node** child = FindChild(n, byte);
    if (child == nullptr) {
      Node* fresh = NewLeaf(key + depth + 1, key_bytes_ - depth - 1, row);
      AddChild(slot, byte, fresh);
      return;
    }
    slot = child;
    ++depth;
  }
}

const std::vector<uint32_t>* RadixIndex::Probe(const uint8_t* key) const {
  const Node* n = root_;
  size_t depth = 0;
  while (n != nullptr) {
    if (n->prefix_len != 0 &&
        std::memcmp(n->prefix, key + depth, n->prefix_len) != 0) {
      return nullptr;
    }
    depth += n->prefix_len;
    if (n->type == kLeaf) {
      return &static_cast<const LeafNode*>(n)->rows;
    }
    Node** child = FindChild(const_cast<Node*>(n), key[depth]);
    if (child == nullptr) return nullptr;
    n = *child;
    ++depth;
  }
  return nullptr;
}

}  // namespace relcomp
