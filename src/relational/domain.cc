#include "relational/domain.h"

#include <algorithm>

namespace relcomp {

std::shared_ptr<const Domain> Domain::Infinite() {
  static const std::shared_ptr<const Domain>& kInfinite =
      *new std::shared_ptr<const Domain>(
          new Domain("d", std::nullopt));
  return kInfinite;
}

std::shared_ptr<const Domain> Domain::Boolean() {
  static const std::shared_ptr<const Domain>& kBoolean =
      *new std::shared_ptr<const Domain>(new Domain(
          "bool", std::vector<Value>{Value::Int(0), Value::Int(1)}));
  return kBoolean;
}

std::shared_ptr<const Domain> Domain::FiniteInts(const std::string& name,
                                                 int64_t n) {
  std::vector<Value> values;
  values.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) values.push_back(Value::Int(i));
  return std::shared_ptr<const Domain>(new Domain(name, std::move(values)));
}

std::shared_ptr<const Domain> Domain::Enumerated(const std::string& name,
                                                 std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return std::shared_ptr<const Domain>(new Domain(name, std::move(values)));
}

bool Domain::Contains(const Value& v) const {
  if (is_infinite()) return true;
  return std::binary_search(finite_values_->begin(), finite_values_->end(), v);
}

}  // namespace relcomp
