#ifndef RELCOMP_RELATIONAL_VALUE_INTERNER_H_
#define RELCOMP_RELATIONAL_VALUE_INTERNER_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace relcomp {

/// Dense 32-bit handle for an interned Value. Ids are only meaningful
/// relative to the ValueInterner that produced them: equal ids mean
/// equal values, but id order is arrival order, not Value order.
using ValueId = uint32_t;

/// Sentinel for "no id" (never produced by an interner).
inline constexpr ValueId kInvalidValueId = 0xFFFFFFFFu;

/// Maps Values to dense ValueIds and back. One interner is shared per
/// database family (D, Dm, and the scratch instances derived from
/// them), so the relational core can compare, hash and index constants
/// as 32-bit ids instead of heap-allocated Values.
///
/// Two id ranges exist:
///   * normal ids, assigned ascending from 0 by Intern(), and
///   * reserved high ids (>= kFreshIdBase), assigned descending from
///     kInvalidValueId - 1 by InternFresh() for the paper's `New`
///     values — fresh constants minted by ActiveDomain outside the
///     constants of D, Dm, Q and V. Keeping them in a distinct range
///     lets the deciders distinguish fresh ids from instance ids
///     without consulting the value.
///
/// Interners only grow; ids stay stable for the interner's lifetime.
///
/// Concurrency contract: mutation (Intern/InternFresh of a NEW value)
/// is single-threaded; lookups (TryGet, ValueOf, IsFreshId) are safe
/// from any number of threads provided no mutation is concurrent. The
/// parallel valuation search enforces this by interning everything it
/// needs — instance constants via the relations, the fresh pool via
/// ReserveFreshRange — before workers fork, then freezing the interner
/// for the read-only phase. Freeze() is a debug tripwire: while the
/// freeze count is positive, growing the interner asserts.
class ValueInterner {
 public:
  /// First id of the reserved fresh range.
  static constexpr ValueId kFreshIdBase = 0x80000000u;

  ValueInterner() = default;

  /// Returns the id of `v`, interning it in the normal range if new.
  ValueId Intern(const Value& v);

  /// Returns the id of `v`, interning it in the reserved high range if
  /// new. Idempotent; a value already interned (in either range) keeps
  /// its existing id.
  ValueId InternFresh(const Value& v);

  /// Pre-interns a whole fresh pool in one call and returns the id of
  /// the first value (ids descend contiguously from it for values that
  /// were new). Workers of the parallel search partition candidate
  /// ranges over this pre-reserved pool instead of interning
  /// concurrently; combined with symmetry_break_fresh (position i sees
  /// fresh_0..fresh_i) every worker observes the identical id
  /// assignment, so no post-fork interning can occur.
  ValueId ReserveFreshRange(const std::vector<Value>& values);

  /// The id of `v` if it was interned before, nullopt otherwise. Never
  /// interns — an index probe for a never-seen value is an instant miss.
  std::optional<ValueId> TryGet(const Value& v) const;

  /// The value behind `id`. Precondition: `id` was produced by this
  /// interner.
  const Value& ValueOf(ValueId id) const {
    return id < kFreshIdBase ? low_[id]
                             : high_[kInvalidValueId - 1 - id];
  }

  static bool IsFreshId(ValueId id) {
    return id >= kFreshIdBase && id != kInvalidValueId;
  }

  /// Total number of interned values across both ranges.
  size_t size() const { return low_.size() + high_.size(); }

  /// Number of ids in the base (non-fresh) range: base ids are exactly
  /// [0, num_base_ids()). The eval engine parks per-call synthetic ids
  /// for never-interned values in the unused gap just below
  /// kFreshIdBase, and asserts against this bound.
  size_t num_base_ids() const { return low_.size(); }

  /// Rough heap footprint of the interned value tables, used by the
  /// deciders to charge interner growth against an ExecutionBudget
  /// (the delta of ApproxBytes() around a growth phase).
  size_t ApproxBytes() const {
    size_t bytes = sizeof(ValueInterner);
    for (const Value& v : low_) bytes += v.ApproxBytes();
    for (const Value& v : high_) bytes += v.ApproxBytes();
    // Hash-map entries: key + id + bucket bookkeeping, estimated.
    bytes += ints_.size() * (sizeof(int64_t) + sizeof(ValueId) + 16);
    for (const auto& [s, id] : strings_) {
      bytes += s.capacity() + sizeof(ValueId) + 16;
    }
    return bytes;
  }

  /// Enters/leaves the frozen (concurrent read-only) phase. Nests:
  /// freeze counts are balanced, so a decider freezing a database whose
  /// interner another decider already froze stays safe. While frozen,
  /// interning a new value asserts in debug builds — the tripwire that
  /// catches any code path trying to grow shared state mid-search.
  void Freeze() { freeze_count_.fetch_add(1, std::memory_order_relaxed); }
  void Unfreeze() { freeze_count_.fetch_sub(1, std::memory_order_relaxed); }
  bool frozen() const {
    return freeze_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  ValueId Insert(const Value& v, bool fresh);

  std::unordered_map<int64_t, ValueId> ints_;
  std::unordered_map<std::string, ValueId> strings_;
  /// id -> Value for the normal range (id == index).
  std::vector<Value> low_;
  /// id -> Value for the fresh range (id == kInvalidValueId - 1 - index).
  std::vector<Value> high_;
  std::atomic<int> freeze_count_{0};
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_VALUE_INTERNER_H_
