#ifndef RELCOMP_RELATIONAL_VALUE_INTERNER_H_
#define RELCOMP_RELATIONAL_VALUE_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace relcomp {

/// Dense 32-bit handle for an interned Value. Ids are only meaningful
/// relative to the ValueInterner that produced them: equal ids mean
/// equal values, but id order is arrival order, not Value order.
using ValueId = uint32_t;

/// Sentinel for "no id" (never produced by an interner).
inline constexpr ValueId kInvalidValueId = 0xFFFFFFFFu;

/// Maps Values to dense ValueIds and back. One interner is shared per
/// database family (D, Dm, and the scratch instances derived from
/// them), so the relational core can compare, hash and index constants
/// as 32-bit ids instead of heap-allocated Values.
///
/// Two id ranges exist:
///   * normal ids, assigned ascending from 0 by Intern(), and
///   * reserved high ids (>= kFreshIdBase), assigned descending from
///     kInvalidValueId - 1 by InternFresh() for the paper's `New`
///     values — fresh constants minted by ActiveDomain outside the
///     constants of D, Dm, Q and V. Keeping them in a distinct range
///     lets the deciders distinguish fresh ids from instance ids
///     without consulting the value.
///
/// Interners only grow; ids stay stable for the interner's lifetime.
/// Not thread-safe (like the rest of the relational core).
class ValueInterner {
 public:
  /// First id of the reserved fresh range.
  static constexpr ValueId kFreshIdBase = 0x80000000u;

  ValueInterner() = default;

  /// Returns the id of `v`, interning it in the normal range if new.
  ValueId Intern(const Value& v);

  /// Returns the id of `v`, interning it in the reserved high range if
  /// new. Idempotent; a value already interned (in either range) keeps
  /// its existing id.
  ValueId InternFresh(const Value& v);

  /// The id of `v` if it was interned before, nullopt otherwise. Never
  /// interns — an index probe for a never-seen value is an instant miss.
  std::optional<ValueId> TryGet(const Value& v) const;

  /// The value behind `id`. Precondition: `id` was produced by this
  /// interner.
  const Value& ValueOf(ValueId id) const {
    return id < kFreshIdBase ? low_[id]
                             : high_[kInvalidValueId - 1 - id];
  }

  static bool IsFreshId(ValueId id) {
    return id >= kFreshIdBase && id != kInvalidValueId;
  }

  /// Total number of interned values across both ranges.
  size_t size() const { return low_.size() + high_.size(); }

 private:
  ValueId Insert(const Value& v, bool fresh);

  std::unordered_map<int64_t, ValueId> ints_;
  std::unordered_map<std::string, ValueId> strings_;
  /// id -> Value for the normal range (id == index).
  std::vector<Value> low_;
  /// id -> Value for the fresh range (id == kInvalidValueId - 1 - index).
  std::vector<Value> high_;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_VALUE_INTERNER_H_
