#include "relational/relation.h"

#include <algorithm>
#include <numeric>

#include "relational/radix_index.h"

namespace relcomp {

Relation::~Relation() = default;

Relation::Relation(const Relation& other)
    : arity_(other.arity_),
      interner_(other.interner_),
      tuples_(other.tuples_),
      ids_(other.ids_),
      sorted_(other.sorted_),
      dedup_(other.dedup_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  arity_ = other.arity_;
  interner_ = other.interner_;
  tuples_ = other.tuples_;
  ids_ = other.ids_;
  sorted_ = other.sorted_;
  dedup_ = other.dedup_;
  InvalidateIndexes();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : arity_(other.arity_),
      interner_(std::move(other.interner_)),
      tuples_(std::move(other.tuples_)),
      ids_(std::move(other.ids_)),
      sorted_(other.sorted_),
      dedup_(std::move(other.dedup_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  arity_ = other.arity_;
  interner_ = std::move(other.interner_);
  tuples_ = std::move(other.tuples_);
  ids_ = std::move(other.ids_);
  sorted_ = other.sorted_;
  dedup_ = std::move(other.dedup_);
  InvalidateIndexes();
  return *this;
}

Relation::InsertOutcome Relation::TryInsert(Tuple t) {
  if (t.arity() != arity_) return InsertOutcome::kArityMismatch;
  if (interner_ == nullptr) interner_ = std::make_shared<ValueInterner>();
  ValueId stack_ids[8];
  std::vector<ValueId> heap_ids;
  ValueId* row_ids = stack_ids;
  if (arity_ > 8) {
    heap_ids.resize(arity_);
    row_ids = heap_ids.data();
  }
  for (size_t i = 0; i < arity_; ++i) row_ids[i] = interner_->Intern(t[i]);
  uint64_t h = HashIds(row_ids, arity_);
  auto it = dedup_.find(h);
  if (it != dedup_.end()) {
    for (uint32_t row : it->second) {
      if (std::equal(row_ids, row_ids + arity_,
                     ids_.data() + static_cast<size_t>(row) * arity_)) {
        return InsertOutcome::kDuplicate;
      }
    }
  }
  // Appending a tuple that sorts after the current tail keeps the
  // relation sorted — bulk loads in Value order (the common case:
  // copying another relation's sorted iteration) never trigger a sort.
  if (sorted_ && !tuples_.empty() && t < tuples_.back()) sorted_ = false;
  uint32_t row = static_cast<uint32_t>(tuples_.size());
  tuples_.push_back(std::move(t));
  ids_.insert(ids_.end(), row_ids, row_ids + arity_);
  dedup_[h].push_back(row);
  InvalidateIndexes();
  return InsertOutcome::kInserted;
}

uint32_t Relation::FindRow(const Tuple& t) const {
  if (t.arity() != arity_ || tuples_.empty() || interner_ == nullptr) {
    return kNoRow;
  }
  ValueId stack_ids[8];
  std::vector<ValueId> heap_ids;
  ValueId* row_ids = stack_ids;
  if (arity_ > 8) {
    heap_ids.resize(arity_);
    row_ids = heap_ids.data();
  }
  for (size_t i = 0; i < arity_; ++i) {
    std::optional<ValueId> id = interner_->TryGet(t[i]);
    if (!id.has_value()) return kNoRow;  // never-seen value: no row has it
    row_ids[i] = *id;
  }
  auto it = dedup_.find(HashIds(row_ids, arity_));
  if (it == dedup_.end()) return kNoRow;
  for (uint32_t row : it->second) {
    if (std::equal(row_ids, row_ids + arity_,
                   ids_.data() + static_cast<size_t>(row) * arity_)) {
      return row;
    }
  }
  return kNoRow;
}

bool Relation::ContainsValues(const Value* const* vals) const {
  if (tuples_.empty() || interner_ == nullptr) return false;
  ValueId stack_ids[16];
  std::vector<ValueId> heap_ids;
  ValueId* ids = stack_ids;
  if (arity_ > 16) {
    heap_ids.resize(arity_);
    ids = heap_ids.data();
  }
  for (size_t c = 0; c < arity_; ++c) {
    std::optional<ValueId> id = interner_->TryGet(*vals[c]);
    if (!id.has_value()) return false;  // never interned ⇒ never stored
    ids[c] = *id;
  }
  return ContainsIds(ids);
}

bool Relation::Erase(const Tuple& t) {
  uint32_t row = FindRow(t);
  if (row == kNoRow) return false;
  tuples_.erase(tuples_.begin() + row);
  ids_.erase(ids_.begin() + static_cast<size_t>(row) * arity_,
             ids_.begin() + static_cast<size_t>(row + 1) * arity_);
  RebuildDedup();
  InvalidateIndexes();
  return true;
}

void Relation::EnsureSorted() const {
  if (sorted_) return;
  size_t n = tuples_.size();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [this](uint32_t a, uint32_t b) {
    return tuples_[a] < tuples_[b];
  });
  std::vector<Tuple> sorted_tuples;
  sorted_tuples.reserve(n);
  std::vector<ValueId> sorted_ids;
  sorted_ids.reserve(ids_.size());
  for (uint32_t row : perm) {
    sorted_tuples.push_back(std::move(tuples_[row]));
    const ValueId* src = ids_.data() + static_cast<size_t>(row) * arity_;
    sorted_ids.insert(sorted_ids.end(), src, src + arity_);
  }
  tuples_ = std::move(sorted_tuples);
  ids_ = std::move(sorted_ids);
  sorted_ = true;
  RebuildDedup();
  InvalidateIndexes();
}

void Relation::RebuildDedup() const {
  dedup_.clear();
  for (uint32_t row = 0; row < tuples_.size(); ++row) {
    dedup_[HashIds(ids_.data() + static_cast<size_t>(row) * arity_, arity_)]
        .push_back(row);
  }
}

std::vector<std::vector<size_t>> Relation::BuiltIndexColumnSets() const {
  std::vector<std::vector<size_t>> out;
  for (size_t col = 0; col < col_index_built_.size(); ++col) {
    if (col_index_built_[col]) out.push_back({col});
  }
  std::lock_guard<std::mutex> lock(composite_mu_);
  for (const auto& [mask, index] : composite_) {
    std::vector<size_t> cols;
    for (size_t col = 0; col < 32; ++col) {
      if (mask & (1u << col)) cols.push_back(col);
    }
    out.push_back(std::move(cols));
  }
  return out;
}

void Relation::InvalidateIndexes() const {
  col_index_.clear();
  col_index_built_.clear();
  std::lock_guard<std::mutex> lock(composite_mu_);
  composite_.clear();
}

void Relation::EnsureColumnIndex(size_t col) const {
  EnsureSorted();  // first: sorting invalidates any per-column index
  if (col_index_built_.empty()) {
    col_index_.resize(arity_);
    col_index_built_.assign(arity_, 0);
  }
  if (col_index_built_[col]) return;
  auto& index = col_index_[col];
  for (uint32_t row = 0; row < tuples_.size(); ++row) {
    index[ids_[static_cast<size_t>(row) * arity_ + col]].push_back(row);
  }
  col_index_built_[col] = 1;
}

void Relation::PrepareForRead(const std::vector<size_t>* columns) const {
  EnsureSorted();
  if (columns != nullptr) {
    for (size_t col : *columns) EnsureColumnIndex(col);
  } else {
    for (size_t col = 0; col < arity_; ++col) EnsureColumnIndex(col);
  }
}

const std::vector<uint32_t>* Relation::Probe(size_t col,
                                             const Value& v) const {
  if (tuples_.empty() || interner_ == nullptr) return nullptr;
  std::optional<ValueId> id = interner_->TryGet(v);
  if (!id.has_value()) return nullptr;
  EnsureSorted();
  EnsureColumnIndex(col);
  auto it = col_index_[col].find(*id);
  if (it == col_index_[col].end()) return nullptr;
  return &it->second;
}

const std::vector<uint32_t>* Relation::ProbeId(size_t col, ValueId id) const {
  if (tuples_.empty()) return nullptr;
  EnsureSorted();
  EnsureColumnIndex(col);
  auto it = col_index_[col].find(id);
  if (it == col_index_[col].end()) return nullptr;
  return &it->second;
}

const std::vector<uint32_t>* Relation::CompositeProbe(
    const size_t* cols, size_t n, const ValueId* ids,
    size_t* bytes_built) const {
  if (bytes_built != nullptr) *bytes_built = 0;
  if (tuples_.empty()) return nullptr;
  assert(n >= 1 && n <= RadixIndex::kMaxColumns);
  uint32_t mask = 0;
  for (size_t i = 0; i < n; ++i) {
    assert(cols[i] < arity_ && cols[i] < 32 &&
           (i == 0 || cols[i] > cols[i - 1]));
    mask |= 1u << cols[i];
  }
  // Sort outside the lock: EnsureSorted invalidates indexes, which
  // itself takes composite_mu_. In concurrent use the relation is
  // already prepared (sorted), so this is a plain flag read.
  EnsureSorted();
  const RadixIndex* index = nullptr;
  {
    std::lock_guard<std::mutex> lock(composite_mu_);
    std::unique_ptr<RadixIndex>& slot = composite_[mask];
    if (slot == nullptr) {
      auto built = std::make_unique<RadixIndex>(n * sizeof(ValueId));
      uint8_t key[RadixIndex::kMaxKeyBytes];
      ValueId row_key[RadixIndex::kMaxColumns];
      for (uint32_t row = 0; row < tuples_.size(); ++row) {
        const ValueId* row_ids =
            ids_.data() + static_cast<size_t>(row) * arity_;
        for (size_t i = 0; i < n; ++i) row_key[i] = row_ids[cols[i]];
        RadixIndex::PackKey(row_key, n, key);
        built->Insert(key, row);
      }
      if (bytes_built != nullptr) {
        *bytes_built = sizeof(RadixIndex) + built->ApproxBytes();
      }
      slot = std::move(built);
    }
    index = slot.get();
  }
  uint8_t key[RadixIndex::kMaxKeyBytes];
  RadixIndex::PackKey(ids, n, key);
  return index->Probe(key);
}

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

void Relation::UnionWith(const Relation& other) {
  if (&other == this) return;
  for (const Tuple& t : other) Insert(t);
}

bool Relation::operator==(const Relation& other) const {
  if (arity_ != other.arity_ || tuples_.size() != other.tuples_.size()) {
    return false;
  }
  EnsureSorted();
  other.EnsureSorted();
  return tuples_ == other.tuples_;
}

std::string Relation::ToString() const {
  EnsureSorted();
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : tuples_) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out.push_back('}');
  return out;
}

}  // namespace relcomp
