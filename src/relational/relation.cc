#include "relational/relation.h"

namespace relcomp {

bool Relation::IsSubsetOf(const Relation& other) const {
  if (arity_ != other.arity_) return false;
  for (const Tuple& t : tuples_) {
    if (!other.Contains(t)) return false;
  }
  return true;
}

void Relation::UnionWith(const Relation& other) {
  for (const Tuple& t : other.tuples_) tuples_.insert(t);
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : tuples_) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out.push_back('}');
  return out;
}

}  // namespace relcomp
