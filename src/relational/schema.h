#ifndef RELCOMP_RELATIONAL_SCHEMA_H_
#define RELCOMP_RELATIONAL_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relational/domain.h"
#include "util/status.h"

namespace relcomp {

/// One attribute of a relation schema: a name plus its domain.
struct AttributeDef {
  std::string name;
  std::shared_ptr<const Domain> domain;

  /// Infinite-domain attribute.
  static AttributeDef Inf(std::string name) {
    return AttributeDef{std::move(name), Domain::Infinite()};
  }
  /// Attribute over an explicit domain.
  static AttributeDef Over(std::string name,
                           std::shared_ptr<const Domain> domain) {
    return AttributeDef{std::move(name), std::move(domain)};
  }
};

/// Schema of a single relation: a name and an ordered attribute list.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `name`, or -1 if absent.
  int AttributeIndex(std::string_view name) const;

  /// "R(a: d, b: bool)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

/// A catalog of relation schemas (the paper's R = (R1, ..., Rn)).
/// Immutable once built; shared by Database instances via shared_ptr.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation schema. Fails on duplicate names.
  Status AddRelation(RelationSchema relation);

  /// Convenience: adds a relation whose attributes all range over the
  /// infinite domain. Attribute names are a0..a{arity-1}.
  Status AddRelation(const std::string& name, size_t arity);

  bool HasRelation(std::string_view name) const;

  /// nullptr if absent.
  const RelationSchema* FindRelation(std::string_view name) const;

  /// Names in insertion order.
  const std::vector<std::string>& relation_names() const { return order_; }
  size_t size() const { return order_.size(); }

  std::string ToString() const;

 private:
  std::map<std::string, RelationSchema, std::less<>> relations_;
  std::vector<std::string> order_;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_SCHEMA_H_
