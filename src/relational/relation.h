#ifndef RELCOMP_RELATIONAL_RELATION_H_
#define RELCOMP_RELATIONAL_RELATION_H_

#include <set>
#include <string>

#include "relational/tuple.h"
#include "util/status.h"

namespace relcomp {

/// A finite set of tuples of a fixed arity (set semantics, as in the
/// paper). Backed by an ordered set so iteration is deterministic; all
/// deciders rely on deterministic enumeration for reproducible
/// counterexamples.
class Relation {
 public:
  /// Creates an empty relation of the given arity.
  explicit Relation(size_t arity = 0) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple; returns true if it was newly added. The tuple's
  /// arity must match (checked; mismatches are dropped with false --
  /// use Database::Insert for a checked Status API).
  bool Insert(Tuple t) {
    if (t.arity() != arity_) return false;
    return tuples_.insert(std::move(t)).second;
  }

  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }
  bool Erase(const Tuple& t) { return tuples_.erase(t) > 0; }

  /// Subset test: every tuple of *this is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Adds every tuple of `other` (arity must match; mismatched tuples
  /// are impossible if both relations were built through checked APIs).
  void UnionWith(const Relation& other);

  bool operator==(const Relation& other) const {
    return arity_ == other.arity_ && tuples_ == other.tuples_;
  }
  bool operator!=(const Relation& other) const { return !(*this == other); }

  using const_iterator = std::set<Tuple>::const_iterator;
  const_iterator begin() const { return tuples_.begin(); }
  const_iterator end() const { return tuples_.end(); }

  /// "{(1, 2), (3, 4)}".
  std::string ToString() const;

 private:
  size_t arity_;
  std::set<Tuple> tuples_;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_RELATION_H_
