#ifndef RELCOMP_RELATIONAL_RELATION_H_
#define RELCOMP_RELATIONAL_RELATION_H_

#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/radix_index.h"
#include "relational/tuple.h"
#include "relational/value_interner.h"
#include "util/status.h"

namespace relcomp {

/// A finite set of tuples of a fixed arity (set semantics, as in the
/// paper). Iteration is deterministic in Value order; all deciders rely
/// on deterministic enumeration for reproducible counterexamples.
///
/// Storage is a flat sorted tuple vector backed by an interned
/// ValueId plane: every tuple is additionally stored as a row of
/// 32-bit ids (row-major in `ids_`), and duplicate detection, equality
/// and index probes all run on ids instead of heap-allocated Values.
/// Sorting is lazy — inserts append and mark the relation unsorted;
/// the first read re-establishes Value order. Per-column hash indexes
/// (ValueId -> ascending row list) are built lazily by Probe() and
/// invalidated by Insert/Erase.
class Relation {
 public:
  /// Outcome of TryInsert: the arity-mismatch case is distinguishable
  /// from an already-present tuple (Insert() collapses both to false,
  /// which is ambiguous; see below).
  enum class InsertOutcome { kInserted, kDuplicate, kArityMismatch };

  /// Creates an empty relation of the given arity. If `interner` is
  /// null, one is created lazily on first insert (Database passes its
  /// shared per-family interner).
  explicit Relation(size_t arity = 0,
                    std::shared_ptr<ValueInterner> interner = nullptr)
      : arity_(arity), interner_(std::move(interner)) {}
  ~Relation();

  // Copies and moves carry the data plane; the lazily built composite
  // indexes stay behind (they rebuild on demand) so the mutex member
  // never needs to transfer.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple; returns true if it was newly added. The tuple's
  /// arity must match: mismatches assert in debug builds and return
  /// false in release builds, indistinguishable from a duplicate — use
  /// TryInsert for a distinguishable outcome or Database::Insert for a
  /// checked Status API.
  bool Insert(Tuple t) {
    InsertOutcome outcome = TryInsert(std::move(t));
    assert(outcome != InsertOutcome::kArityMismatch &&
           "Relation::Insert: tuple arity does not match relation arity");
    return outcome == InsertOutcome::kInserted;
  }

  /// Inserts a tuple, reporting arity mismatches distinctly.
  InsertOutcome TryInsert(Tuple t);

  bool Contains(const Tuple& t) const { return FindRow(t) != kNoRow; }

  /// Membership test from a row of `arity()` Value pointers: each value
  /// resolves through this relation's interner (TryGet only — a value
  /// the interner has never seen cannot be stored here) and the id row
  /// delegates to ContainsIds. No Tuple is materialized per probe.
  bool ContainsValues(const Value* const* vals) const;

  bool Erase(const Tuple& t);

  /// Subset test: every tuple of *this is in `other`.
  bool IsSubsetOf(const Relation& other) const;

  /// Adds every tuple of `other` (arity must match; mismatched tuples
  /// are impossible if both relations were built through checked APIs).
  void UnionWith(const Relation& other);

  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  using const_iterator = std::vector<Tuple>::const_iterator;
  const_iterator begin() const {
    EnsureSorted();
    return tuples_.begin();
  }
  const_iterator end() const {
    EnsureSorted();
    return tuples_.end();
  }

  // --- Indexed access (the eval engine's fast path). -----------------

  /// Rows (ascending, in iteration order) whose column `col` equals
  /// `v`, via the lazily built per-column hash index; nullptr when no
  /// row matches. Precondition: col < arity().
  const std::vector<uint32_t>* Probe(size_t col, const Value& v) const;

  /// Number of rows Probe(col, v) would return (0 on miss) without
  /// forcing the index for other values.
  size_t ProbeCount(size_t col, const Value& v) const {
    const std::vector<uint32_t>* rows = Probe(col, v);
    return rows == nullptr ? 0 : rows->size();
  }

  /// Id-plane Probe: same result as Probe(col, Resolve(id)) but skips
  /// the Value hash lookup entirely. `id` must come from this
  /// relation's interner family (ids from a foreign interner are
  /// meaningless here).
  const std::vector<uint32_t>* ProbeId(size_t col, ValueId id) const;

  /// Rows whose columns `cols[0..n)` (strictly ascending, n >= 1, every
  /// col < min(arity, 32)) equal `ids[0..n)`, via a lazily built
  /// adaptive radix index keyed on the packed big-endian id bytes of
  /// exactly that column set; nullptr when no row matches. The first
  /// call per column set scans the relation once to build the tree;
  /// `*bytes_built` (may be null) receives the heap bytes that build
  /// allocated (0 for every later call) so callers can charge an
  /// ExecutionBudget. Build is serialized behind a mutex, so lazy
  /// first probes are safe from concurrent readers of a prepared
  /// relation; at most 8 columns are indexed (extra columns must be
  /// re-checked by the caller).
  const std::vector<uint32_t>* CompositeProbe(const size_t* cols, size_t n,
                                              const ValueId* ids,
                                              size_t* bytes_built) const;

  /// Containment on the id plane: true iff some row's ids equal
  /// `row_ids[0..arity)`. Ids must be from this relation's interner
  /// family; pure read (the dedup map is maintained eagerly), so it is
  /// safe on a prepared relation from concurrent threads.
  bool ContainsIds(const ValueId* row_ids) const {
    if (tuples_.empty()) return false;
    auto it = dedup_.find(HashIds(row_ids, arity_));
    if (it == dedup_.end()) return false;
    for (uint32_t row : it->second) {
      if (std::equal(row_ids, row_ids + arity_,
                     ids_.data() + static_cast<size_t>(row) * arity_)) {
        return true;
      }
    }
    return false;
  }

  /// The tuple at `row` in iteration order. Precondition: row < size().
  const Tuple& TupleAt(size_t row) const {
    EnsureSorted();
    return tuples_[row];
  }

  /// The interned id row at `row` (arity() consecutive ids), valid
  /// until the next mutation. Precondition: row < size().
  const ValueId* RowIds(size_t row) const {
    EnsureSorted();
    return ids_.data() + row * arity_;
  }

  /// The id of `v` under this relation's interner, if seen before.
  std::optional<ValueId> IdOf(const Value& v) const {
    if (interner_ == nullptr) return std::nullopt;
    return interner_->TryGet(v);
  }

  /// The value behind an id from RowIds(). Precondition: id was
  /// produced by this relation's interner.
  const Value& Resolve(ValueId id) const { return interner_->ValueOf(id); }

  /// The shared interner (null until the first insert if none was
  /// passed at construction).
  const std::shared_ptr<ValueInterner>& interner() const { return interner_; }

  /// Column sets of the currently materialized lazy indexes: one
  /// singleton set per built per-column hash index, then one ascending
  /// multi-column set per built composite radix index. Every mutation
  /// (Insert/Erase/UnionWith) drops all of them, so the delta-apply
  /// layer snapshots this before a batch to report exactly which
  /// (relation, column-set) indexes the batch dirtied. Deterministic
  /// order (per-column ascending, then composite by bitmask).
  std::vector<std::vector<size_t>> BuiltIndexColumnSets() const;

  /// Eagerly materializes every lazily built read structure: the
  /// Value-sorted row order, the dedup map, and the per-column hash
  /// indexes for `columns` (all columns when null). After this call,
  /// const reads — begin/end, TupleAt, RowIds, Contains, IdOf, Resolve,
  /// and Probe on a prepared column — touch no mutable state and are
  /// safe from concurrent threads. Any mutation (Insert/Erase/
  /// UnionWith) voids the guarantee until the next PrepareForRead.
  void PrepareForRead(const std::vector<size_t>* columns = nullptr) const;

  /// "{(1, 2), (3, 4)}".
  std::string ToString() const;

 private:
  static constexpr uint32_t kNoRow = 0xFFFFFFFFu;

  /// Row index of `t`, or kNoRow. Never interns.
  uint32_t FindRow(const Tuple& t) const;

  /// Re-establishes Value-sorted row order (no-op when already sorted).
  void EnsureSorted() const;
  void EnsureColumnIndex(size_t col) const;
  void RebuildDedup() const;
  void InvalidateIndexes() const;

  static uint64_t HashIds(const ValueId* ids, size_t n) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) h = (h ^ ids[i]) * 0x100000001b3ull;
    return h;
  }

  size_t arity_;
  std::shared_ptr<ValueInterner> interner_;
  /// Rows; sorted by Value order when sorted_ (lazily restored).
  mutable std::vector<Tuple> tuples_;
  /// Row-major id plane, parallel to tuples_.
  mutable std::vector<ValueId> ids_;
  mutable bool sorted_ = true;
  /// Duplicate detection: hash of a row's ids -> rows with that hash.
  /// Always maintained (rebuilt when sorting permutes rows).
  mutable std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;
  /// Lazily built per-column indexes over the sorted order.
  mutable std::vector<std::unordered_map<ValueId, std::vector<uint32_t>>>
      col_index_;
  mutable std::vector<char> col_index_built_;
  /// Lazily built composite indexes, keyed by column bitmask. Guarded
  /// by composite_mu_ so the lazy build under ParallelValuationSearch
  /// is race free; a built tree is immutable and probed lock free.
  mutable std::map<uint32_t, std::unique_ptr<RadixIndex>> composite_;
  mutable std::mutex composite_mu_;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_RELATION_H_
