#include "relational/schema.h"

#include "util/str.h"

namespace relcomp {

int RelationSchema::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::string out = name_;
  out.push_back('(');
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += attributes_[i].domain->name();
  }
  out.push_back(')');
  return out;
}

Status Schema::AddRelation(RelationSchema relation) {
  if (relation.name().empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  const std::string name = relation.name();
  if (relations_.count(name) > 0) {
    return Status::InvalidArgument(
        StrCat("duplicate relation schema: ", name));
  }
  relations_.emplace(name, std::move(relation));
  order_.push_back(name);
  return Status::OK();
}

Status Schema::AddRelation(const std::string& name, size_t arity) {
  std::vector<AttributeDef> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back(AttributeDef::Inf(StrCat("a", i)));
  }
  return AddRelation(RelationSchema(name, std::move(attrs)));
}

bool Schema::HasRelation(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

const RelationSchema* Schema::FindRelation(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

std::string Schema::ToString() const {
  std::string out;
  for (const std::string& name : order_) {
    out += FindRelation(name)->ToString();
    out.push_back('\n');
  }
  return out;
}

}  // namespace relcomp
