#ifndef RELCOMP_RELATIONAL_DATABASE_OVERLAY_H_
#define RELCOMP_RELATIONAL_DATABASE_OVERLAY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "relational/database.h"
#include "util/execution_control.h"

namespace relcomp {

/// A copy-on-write view over a base Database: the base plus a small
/// set of staged (pending) tuple inserts. The deciders' inner loops
/// check thousands of candidate extensions D ∪ Δ per run; an overlay
/// makes each candidate O(|Δ|) to stage and O(1) to discard instead of
/// copying D, and leaves the base relations untouched so their lazily
/// built column indexes stay valid across candidates.
///
/// Staged tuples may name relations absent from the base schema; those
/// behave as pending-only virtual relations (the delta-constraint
/// checker stages its `R$ccdelta` relations this way).
///
/// The view never mutates the base. It is invalidated by any mutation
/// of the base database.
class DatabaseOverlay {
 public:
  explicit DatabaseOverlay(const Database* base) : base_(base) {}
  ~DatabaseOverlay() {
    if (tracker_ != nullptr && tracked_bytes_ > 0) {
      tracker_->ReleaseBytes(tracked_bytes_);
    }
  }
  /// Non-copyable once trackers exist (a copy would double-release its
  /// byte charge); movable — the move transfers the charge.
  DatabaseOverlay(const DatabaseOverlay&) = delete;
  DatabaseOverlay& operator=(const DatabaseOverlay&) = delete;
  DatabaseOverlay(DatabaseOverlay&& other) noexcept
      : base_(other.base_),
        pending_(std::move(other.pending_)),
        pending_count_(other.pending_count_),
        tracker_(other.tracker_),
        tracked_bytes_(other.tracked_bytes_) {
    other.pending_count_ = 0;
    other.tracker_ = nullptr;
    other.tracked_bytes_ = 0;
  }
  DatabaseOverlay& operator=(DatabaseOverlay&& other) noexcept {
    if (this != &other) {
      if (tracker_ != nullptr && tracked_bytes_ > 0) {
        tracker_->ReleaseBytes(tracked_bytes_);
      }
      base_ = other.base_;
      pending_ = std::move(other.pending_);
      pending_count_ = other.pending_count_;
      tracker_ = other.tracker_;
      tracked_bytes_ = other.tracked_bytes_;
      other.pending_count_ = 0;
      other.tracker_ = nullptr;
      other.tracked_bytes_ = 0;
    }
    return *this;
  }

  const Database& base() const { return *base_; }

  /// Attaches an ExecutionBudget-style byte tracker (not owned; may be
  /// null). Add() charges each staged tuple's approximate footprint;
  /// Clear() releases the whole charge. The tracker never fails in
  /// place — a tripped memory limit surfaces at the owner's next
  /// decision point — so overlay staging itself stays infallible.
  void set_memory_tracker(ExecutionBudget* tracker) { tracker_ = tracker; }

  /// Stages `t` for insertion into `relation`. Returns true if the
  /// tuple is new, false if it is already in the base or staged.
  bool Add(std::string_view relation, Tuple t);

  /// Drops every staged tuple (capacity is retained — the deciders
  /// call Add/Clear once per candidate valuation).
  void Clear();

  /// Base-or-staged membership.
  bool Contains(std::string_view relation, const Tuple& t) const;

  /// The base instance of `relation` (empty for virtual relations).
  const Relation& BaseRelation(std::string_view relation) const {
    return base_->Get(relation);
  }

  /// The staged tuples of `relation` (empty vector if none).
  const std::vector<Tuple>& Pending(std::string_view relation) const;

  /// Total staged tuples across all relations.
  size_t PendingCount() const { return pending_count_; }
  bool HasPending() const { return pending_count_ > 0; }

  /// Base plus staged tuple count for `relation` (the eval engine's
  /// atom-ordering heuristic).
  size_t Size(std::string_view relation) const {
    return BaseRelation(relation).size() + Pending(relation).size();
  }

  /// Flattens the view into a standalone Database over the base
  /// schema. Staged tuples of virtual relations (unknown to the base
  /// schema) are dropped. Used by evaluation paths that do not support
  /// overlays (FO fallback) and for diagnostics.
  Database Materialize() const;

 private:
  const Database* base_;
  /// Staged inserts per relation; vectors keep capacity across Clear().
  std::map<std::string, std::vector<Tuple>, std::less<>> pending_;
  size_t pending_count_ = 0;
  /// Optional byte tracker (see set_memory_tracker) and the charge
  /// currently held against it.
  ExecutionBudget* tracker_ = nullptr;
  size_t tracked_bytes_ = 0;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_DATABASE_OVERLAY_H_
