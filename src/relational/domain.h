#ifndef RELCOMP_RELATIONAL_DOMAIN_H_
#define RELCOMP_RELATIONAL_DOMAIN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace relcomp {

/// An attribute domain. The paper distinguishes a countably infinite
/// domain `d` from finite domains `d_f` (with at least two elements);
/// this distinction drives the completeness characterizations: a
/// variable ranging over a finite domain is trivially bounded, whereas
/// an infinite-domain variable must be bounded by master data via the
/// containment constraints.
class Domain {
 public:
  /// The shared countably-infinite domain `d`.
  static std::shared_ptr<const Domain> Infinite();

  /// The Boolean domain {0, 1}, the most common finite domain in the
  /// paper's reductions.
  static std::shared_ptr<const Domain> Boolean();

  /// A finite domain with integer elements {0, ..., n-1}. n >= 1.
  static std::shared_ptr<const Domain> FiniteInts(const std::string& name,
                                                  int64_t n);

  /// A finite domain with the given (deduplicated, sorted) elements.
  static std::shared_ptr<const Domain> Enumerated(const std::string& name,
                                                  std::vector<Value> values);

  const std::string& name() const { return name_; }

  /// True for the infinite domain `d`.
  bool is_infinite() const { return !finite_values_.has_value(); }
  bool is_finite() const { return finite_values_.has_value(); }

  /// Precondition: is_finite(). Sorted, deduplicated.
  const std::vector<Value>& finite_values() const { return *finite_values_; }

  /// True iff `v` is a member of this domain (always true if infinite).
  bool Contains(const Value& v) const;

 private:
  Domain(std::string name, std::optional<std::vector<Value>> values)
      : name_(std::move(name)), finite_values_(std::move(values)) {}

  std::string name_;
  std::optional<std::vector<Value>> finite_values_;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_DOMAIN_H_
