#ifndef RELCOMP_RELATIONAL_VALUE_H_
#define RELCOMP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace relcomp {

/// A single constant in a database: either a 64-bit integer or a string.
///
/// The paper works over abstract domains (a countably infinite domain `d`
/// and a finite domain `d_f`). We realize constants as integers and
/// strings; both kinds live in one ordered value space so relations can
/// mix them. "Fresh" values (the paper's `New` set, one per query
/// variable) are minted by ActiveDomain outside the constants occurring
/// in D, Dm, Q and V.
class Value {
 public:
  enum class Kind : uint8_t { kInt = 0, kString = 1 };

  /// Default-constructs the integer 0.
  Value() : kind_(Kind::kInt), int_(0) {}

  static Value Int(int64_t v) {
    Value out;
    out.kind_ = Kind::kInt;
    out.int_ = v;
    return out;
  }

  static Value Str(std::string_view v) {
    Value out;
    out.kind_ = Kind::kString;
    out.str_ = std::string(v);
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Precondition: is_int().
  int64_t AsInt() const { return int_; }
  /// Precondition: is_string().
  const std::string& AsString() const { return str_; }

  /// Total order: all ints before all strings; then natural order.
  bool operator<(const Value& other) const {
    if (kind_ != other.kind_) return kind_ < other.kind_;
    if (kind_ == Kind::kInt) return int_ < other.int_;
    return str_ < other.str_;
  }
  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    if (kind_ == Kind::kInt) return int_ == other.int_;
    return str_ == other.str_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Renders ints as decimal and strings with surrounding quotes.
  std::string ToString() const;

  size_t Hash() const {
    if (kind_ == Kind::kInt) {
      return std::hash<int64_t>()(int_) * 0x9e3779b97f4a7c15ULL;
    }
    return std::hash<std::string>()(str_) ^ 0x5851f42d4c957f2dULL;
  }

  /// Rough heap footprint, used for ExecutionBudget memory tracking
  /// (an accounting estimate, not allocator truth).
  size_t ApproxBytes() const {
    return sizeof(Value) + (kind_ == Kind::kString ? str_.capacity() : 0);
  }

 private:
  Kind kind_;
  int64_t int_ = 0;
  std::string str_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_VALUE_H_
