#include "relational/database.h"

#include "util/str.h"

namespace relcomp {

Database::Database(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)),
      interner_(std::make_shared<ValueInterner>()) {}

Database::Database(std::shared_ptr<const Schema> schema,
                   std::shared_ptr<ValueInterner> interner)
    : schema_(std::move(schema)), interner_(std::move(interner)) {
  if (interner_ == nullptr) interner_ = std::make_shared<ValueInterner>();
}

Status Database::Insert(std::string_view relation, Tuple tuple) {
  const RelationSchema* rs = schema_->FindRelation(relation);
  if (rs == nullptr) {
    return Status::NotFound(StrCat("unknown relation: ", relation));
  }
  if (tuple.arity() != rs->arity()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch for ", relation, ": tuple has ", tuple.arity(),
               " values, schema has ", rs->arity()));
  }
  for (size_t i = 0; i < tuple.arity(); ++i) {
    if (!rs->attribute(i).domain->Contains(tuple[i])) {
      return Status::InvalidArgument(
          StrCat("value ", tuple[i].ToString(), " not in domain ",
                 rs->attribute(i).domain->name(), " of ", relation, ".",
                 rs->attribute(i).name));
    }
  }
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    it = relations_
             .emplace(std::string(relation), Relation(rs->arity(), interner_))
             .first;
  }
  it->second.Insert(std::move(tuple));
  return Status::OK();
}

bool Database::InsertUnchecked(std::string_view relation, Tuple tuple) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) {
    const RelationSchema* rs = schema_->FindRelation(relation);
    if (rs == nullptr) return false;
    it = relations_
             .emplace(std::string(relation), Relation(rs->arity(), interner_))
             .first;
  }
  return it->second.Insert(std::move(tuple));
}

bool Database::Contains(std::string_view relation, const Tuple& tuple) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  return it->second.Contains(tuple);
}

bool Database::Erase(std::string_view relation, const Tuple& tuple) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  return it->second.Erase(tuple);
}

const Relation& Database::Get(std::string_view relation) const {
  auto it = relations_.find(relation);
  if (it != relations_.end()) return it->second;
  auto cached = empty_cache_.find(relation);
  if (cached != empty_cache_.end()) return cached->second;
  const RelationSchema* rs = schema_->FindRelation(relation);
  if (rs == nullptr) {
    // Names outside the schema (e.g. the delta checker's virtual
    // "$ccdelta" relations probed against the base) share one immutable
    // empty relation instead of growing the cache: concurrent workers
    // may ask for such names after Freeze(), and the cache map is not
    // synchronized.
    static const Relation kUnknownEmpty{0};
    return kUnknownEmpty;
  }
  return empty_cache_.emplace(std::string(relation), Relation(rs->arity()))
      .first->second;
}

void Database::Freeze() const {
  for (const std::string& name : schema_->relation_names()) {
    Get(name).PrepareForRead();
  }
  if (interner_ != nullptr) interner_->Freeze();
}

void Database::Unfreeze() const {
  if (interner_ != nullptr) interner_->Unfreeze();
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

bool Database::IsSubsetOf(const Database& other) const {
  for (const auto& [name, rel] : relations_) {
    if (rel.empty()) continue;
    if (!rel.IsSubsetOf(other.Get(name))) return false;
  }
  return true;
}

void Database::UnionWith(const Database& other) {
  for (const auto& [name, rel] : other.relations_) {
    if (rel.empty()) continue;
    auto it = relations_.find(name);
    if (it == relations_.end()) {
      // Re-intern tuple by tuple instead of copying the Relation
      // wholesale, so every relation of this database keeps sharing
      // its interner.
      it = relations_.emplace(name, Relation(rel.arity(), interner_)).first;
    }
    it->second.UnionWith(rel);
  }
}

bool Database::operator==(const Database& other) const {
  return IsSubsetOf(other) && other.IsSubsetOf(*this);
}

void Database::CollectConstants(std::set<Value>* out) const {
  for (const auto& [name, rel] : relations_) {
    for (const Tuple& t : rel) {
      for (const Value& v : t.values()) out->insert(v);
    }
  }
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& name : schema_->relation_names()) {
    const Relation& rel = Get(name);
    if (rel.empty()) continue;
    out += name;
    out += " = ";
    out += rel.ToString();
    out.push_back('\n');
  }
  if (out.empty()) out = "(empty database)\n";
  return out;
}

}  // namespace relcomp
