#include "relational/value.h"

#include <sstream>

namespace relcomp {

std::string Value::ToString() const {
  if (kind_ == Kind::kInt) return std::to_string(int_);
  std::string out;
  out.reserve(str_.size() + 2);
  out.push_back('"');
  out += str_;
  out.push_back('"');
  return out;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace relcomp
