#include "relational/tuple.h"

namespace relcomp {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out.push_back(')');
  return out;
}

std::ostream& operator<<(std::ostream& os, const Tuple& t) {
  return os << t.ToString();
}

}  // namespace relcomp
