#include "relational/database_overlay.h"

#include <algorithm>

namespace relcomp {
namespace {
const std::vector<Tuple>& EmptyPending() {
  static const std::vector<Tuple> empty;
  return empty;
}
}  // namespace

bool DatabaseOverlay::Add(std::string_view relation, Tuple t) {
  if (base_->schema().HasRelation(relation) &&
      base_->Contains(relation, t)) {
    return false;
  }
  auto it = pending_.find(relation);
  if (it == pending_.end()) {
    it = pending_.emplace(std::string(relation), std::vector<Tuple>()).first;
  }
  // Staged sets are small (tableau rows, candidate deltas); a linear
  // scan beats maintaining a hash set per candidate.
  if (std::find(it->second.begin(), it->second.end(), t) !=
      it->second.end()) {
    return false;
  }
  if (tracker_ != nullptr) {
    size_t bytes = t.ApproxBytes();
    tracker_->TrackBytes(bytes);
    tracked_bytes_ += bytes;
  }
  it->second.push_back(std::move(t));
  ++pending_count_;
  return true;
}

void DatabaseOverlay::Clear() {
  for (auto& [name, staged] : pending_) staged.clear();
  pending_count_ = 0;
  if (tracker_ != nullptr && tracked_bytes_ > 0) {
    tracker_->ReleaseBytes(tracked_bytes_);
    tracked_bytes_ = 0;
  }
}

bool DatabaseOverlay::Contains(std::string_view relation,
                               const Tuple& t) const {
  if (base_->Contains(relation, t)) return true;
  const std::vector<Tuple>& staged = Pending(relation);
  return std::find(staged.begin(), staged.end(), t) != staged.end();
}

const std::vector<Tuple>& DatabaseOverlay::Pending(
    std::string_view relation) const {
  auto it = pending_.find(relation);
  return it == pending_.end() ? EmptyPending() : it->second;
}

Database DatabaseOverlay::Materialize() const {
  Database out = *base_;
  for (const auto& [name, staged] : pending_) {
    for (const Tuple& t : staged) out.InsertUnchecked(name, t);
  }
  return out;
}

}  // namespace relcomp
