#ifndef RELCOMP_RELATIONAL_DATABASE_H_
#define RELCOMP_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value_interner.h"
#include "util/status.h"

namespace relcomp {

/// A database instance D = (I1, ..., In) of a Schema. Also used for
/// master data instances Dm. Holds one Relation per relation schema;
/// relations for which no tuples were inserted are empty instances.
class Database {
 public:
  Database()
      : schema_(std::make_shared<Schema>()),
        interner_(std::make_shared<ValueInterner>()) {}
  explicit Database(std::shared_ptr<const Schema> schema);

  /// Shares an existing interner instead of creating a fresh one, so
  /// the new (typically scratch) instance agrees on ValueIds with the
  /// family that owns `interner` — the deciders' empty worker
  /// databases use this so id rows flow across instances without
  /// re-interning. Inserting values the interner has not seen grows
  /// it, which trips the freeze tripwire during a frozen search; only
  /// stage values that are already interned (instantiated tableau rows
  /// over interned candidates qualify).
  Database(std::shared_ptr<const Schema> schema,
           std::shared_ptr<ValueInterner> interner);

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  /// The per-family value interner shared by this database's relations
  /// (copies of a Database share it, so D and the scratch instances
  /// derived from D agree on ids). Interning is a cache, not logical
  /// state, so the accessor is const.
  const std::shared_ptr<ValueInterner>& interner() const { return interner_; }

  /// Inserts a tuple into the named relation, validating existence,
  /// arity (kInvalidArgument on mismatch — the checked counterpart of
  /// Relation::Insert's debug assert), and per-attribute domain
  /// membership.
  Status Insert(std::string_view relation, Tuple tuple);

  /// Unchecked fast-path insert used by the deciders on tuples that were
  /// already validated (e.g. instantiated tableau rows). Returns true if
  /// newly added; false if the relation is unknown, the arity mismatches,
  /// or the tuple was already present.
  bool InsertUnchecked(std::string_view relation, Tuple tuple);

  bool Contains(std::string_view relation, const Tuple& tuple) const;

  /// Id-plane containment: true iff `relation` holds a row whose ids
  /// equal `row_ids` (ids under this database's interner family).
  bool ContainsIds(std::string_view relation, const ValueId* row_ids) const {
    auto it = relations_.find(relation);
    if (it == relations_.end()) return false;
    return it->second.ContainsIds(row_ids);
  }
  bool Erase(std::string_view relation, const Tuple& tuple);

  /// The instance of `relation`; an empty relation of the schema arity
  /// if nothing was inserted. Precondition: the relation exists.
  const Relation& Get(std::string_view relation) const;

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;
  bool Empty() const { return TotalTuples() == 0; }

  /// Instance containment D ⊆ D' (same schema assumed).
  bool IsSubsetOf(const Database& other) const;

  /// Adds every tuple of `other` (schemas must agree on shared names).
  void UnionWith(const Database& other);

  bool operator==(const Database& other) const;
  bool operator!=(const Database& other) const { return !(*this == other); }

  /// Prepares the database for a concurrent read-only phase: forces
  /// every relation's lazily built structures (sort order, dedup map,
  /// per-column indexes) via Relation::PrepareForRead, pre-populates
  /// the empty-relation cache for every schema name, and freezes the
  /// shared interner (debug tripwire against mid-search interning).
  /// After Freeze() returns, any number of threads may concurrently
  /// call the const read APIs (Get, Contains, and the Relation read
  /// paths) as long as no mutation is interleaved. Balanced by
  /// Unfreeze(); freezes nest. Const because only mutable caches and
  /// the interner's freeze count change.
  void Freeze() const;
  void Unfreeze() const;

  /// All constants occurring in some tuple of this instance.
  void CollectConstants(std::set<Value>* out) const;

  /// Multi-line rendering of all non-empty relations.
  std::string ToString() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<ValueInterner> interner_;
  /// Lazily populated; absent entries denote empty instances.
  std::map<std::string, Relation, std::less<>> relations_;
  /// Scratch empty relations returned by Get() for untouched names.
  mutable std::map<std::string, Relation, std::less<>> empty_cache_;
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_DATABASE_H_
