#ifndef RELCOMP_RELATIONAL_DELTA_BATCH_H_
#define RELCOMP_RELATIONAL_DELTA_BATCH_H_

#include <set>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/database_overlay.h"
#include "util/status.h"

namespace relcomp {

/// One update of an instance: insert (or delete) `tuple` into the named
/// relation.
struct DeltaOp {
  bool insert = true;
  std::string relation;
  Tuple tuple;

  std::string ToString() const;
};

/// A batch of updates against a completeness instance: db_ops target D,
/// master_ops target Dm. The incremental decider consumes the batch
/// through ApplyDeltaBatch, whose report drives the dependency-graph
/// invalidation (which UCQ disjuncts and constraints must re-run).
struct DeltaBatch {
  std::vector<DeltaOp> db_ops;
  std::vector<DeltaOp> master_ops;

  bool empty() const { return db_ops.empty() && master_ops.empty(); }
  size_t size() const { return db_ops.size() + master_ops.size(); }
  std::string ToString() const;
};

/// A lazy index the batch dirtied: any effective mutation of a relation
/// invalidates all of its materialized per-column hash indexes
/// (singleton column sets) and composite radix indexes (multi-column
/// sets), which rebuild on the next probe.
struct DirtiedIndex {
  /// "db" or "master".
  std::string side;
  std::string relation;
  std::vector<size_t> columns;

  std::string ToString() const;
};

/// What a batch actually changed. No-op operations (inserting a present
/// tuple, deleting an absent one) are counted but do not mark a
/// relation changed — the incremental decider's dirtiness analysis is
/// over *effective* content changes only.
struct DeltaApplyReport {
  /// Relations of D with at least one effective insert / delete.
  std::set<std::string> db_inserted;
  std::set<std::string> db_deleted;
  /// Same for Dm.
  std::set<std::string> master_inserted;
  std::set<std::string> master_deleted;
  size_t applied_inserts = 0;
  size_t applied_deletes = 0;
  size_t noops = 0;
  /// The (relation, column-set) indexes the batch invalidated,
  /// snapshotted before the first mutation of each changed relation.
  std::vector<DirtiedIndex> dirtied_indexes;

  bool db_changed(const std::string& relation) const {
    return db_inserted.count(relation) > 0 || db_deleted.count(relation) > 0;
  }
  bool master_changed(const std::string& relation) const {
    return master_inserted.count(relation) > 0 ||
           master_deleted.count(relation) > 0;
  }
  bool changed_any() const {
    return !db_inserted.empty() || !db_deleted.empty() ||
           !master_inserted.empty() || !master_deleted.empty();
  }
  std::string ToString() const;
};

/// Applies `batch` to `db` and `master` in place, on the id plane
/// (inserts intern through the family interner exactly like
/// Database::Insert). Every op is validated up front — unknown
/// relation, arity mismatch, or a value outside an attribute domain
/// fails with the Database::Insert error and NOTHING is applied, so a
/// bad batch never leaves a half-updated instance. `master` may be
/// null when the batch has no master_ops.
Result<DeltaApplyReport> ApplyDeltaBatch(const DeltaBatch& batch,
                                         Database* db, Database* master);

/// Stages the batch's inserts on `overlay` (a what-if preview of
/// D ∪ batch without touching D). The overlay layer is insert-only, so
/// a batch containing any delete is rejected with kInvalidArgument.
Status StageInsertsOnOverlay(const DeltaBatch& batch,
                             DatabaseOverlay* overlay);

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_DELTA_BATCH_H_
