#ifndef RELCOMP_RELATIONAL_TUPLE_H_
#define RELCOMP_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "relational/value.h"

namespace relcomp {

/// An ordered list of values; one row of a relation (or a query answer).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  /// Convenience constructors for test/example code.
  static Tuple Ints(std::initializer_list<int64_t> ints) {
    std::vector<Value> vs;
    vs.reserve(ints.size());
    for (int64_t i : ints) vs.push_back(Value::Int(i));
    return Tuple(std::move(vs));
  }

  size_t arity() const { return values_.size(); }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  bool operator<(const Tuple& other) const { return values_ < other.values_; }
  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// "(1, "abc", 3)".
  std::string ToString() const;

  size_t Hash() const {
    size_t h = 0x811c9dc5;
    for (const Value& v : values_) h = h * 1099511628211ULL + v.Hash();
    return h;
  }

  /// Rough heap footprint for ExecutionBudget memory tracking.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Tuple);
    for (const Value& v : values_) bytes += v.ApproxBytes();
    return bytes;
  }

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace relcomp

#endif  // RELCOMP_RELATIONAL_TUPLE_H_
