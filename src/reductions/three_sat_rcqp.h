#ifndef RELCOMP_REDUCTIONS_THREE_SAT_RCQP_H_
#define RELCOMP_REDUCTIONS_THREE_SAT_RCQP_H_

#include "reductions/common.h"
#include "reductions/sat.h"
#include "util/status.h"

namespace relcomp {

/// The coNP-hardness reduction of Theorem 4.5(1): encodes a 3SAT
/// formula φ as an RCQP(CQ, INDs) instance with fixed master data and
/// fixed IND constraints such that
///
///   RCQ(Q, Dm, V) is empty  iff  φ is satisfiable.
///
/// Construction: Rt(x, x̄) is bounded by the master truth-pair table
/// {(0,1), (1,0)}; Ror(l1,l2,l3) by the seven satisfying rows of a
/// disjunction; R(A, x1, x̄1, ..., xn, x̄n) carries an infinite-domain
/// attribute A that no IND bounds. Q(z) selects A-values of R rows
/// whose variable columns encode a satisfying assignment. If φ is
/// satisfiable the head variable z is realizable but unbounded (fresh
/// A-values keep changing the answer — no complete database exists);
/// if φ is unsatisfiable Q returns ∅ on every partially closed
/// database, and the empty database is complete.
Result<EncodedRcqpInstance> EncodeThreeSatRcqp(const CnfFormula& formula);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_THREE_SAT_RCQP_H_
