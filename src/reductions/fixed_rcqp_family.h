#ifndef RELCOMP_REDUCTIONS_FIXED_RCQP_FAMILY_H_
#define RELCOMP_REDUCTIONS_FIXED_RCQP_FAMILY_H_

#include "reductions/common.h"
#include "reductions/sat.h"
#include "util/status.h"

namespace relcomp {

/// A hardness family for RCQP(CQ, CQ) with *fixed* master data and
/// *fixed* containment constraints (only the query varies), in the
/// spirit of Corollary 4.6.
///
/// The paper proves Π₃ᵖ-completeness for this setting by a reduction
/// from ∃∀∃3SAT. Its published construction, however, leaves the
/// Rb(0, ·) rows unconstrained, which lets extensions pump fresh
/// answers through the q = 0 branch whenever some inner assignment
/// falsifies the matrix — collapsing the intended ∀Y∃Z alternation
/// (see DESIGN.md). We therefore implement the alternation we can
/// prove: an ∃X∀W family (still beyond NP, and still with fixed Dm
/// and V) such that
///
///   RCQ(Q, Dm, V) is nonempty  iff  ∃X ∀W φ(X, W) is true.
///
/// Construction: AsgnX(i, v) stores an X-assignment (i is a key by a
/// fixed CQ CC; v is IND-bounded to {0,1}); BoolR generates W values;
/// OrT/AndT/NotT are IND-bounded circuit tables; the query evaluates
/// φ's circuit to z and joins Rb(z, w). The fixed CC bounds Rb(1, ·)
/// by {(0)}, so fresh w-values can only be pumped through z = 0
/// derivations — which exist for some extension iff ∃W ¬φ(χ, W) for
/// the (unique, key-enforced) stored assignment χ, or iff χ can still
/// be completed adversarially.
struct FixedRcqpFamilyInstance {
  CnfFormula formula;
  size_t nx = 0;  // ∃-block: variables 0..nx-1
  size_t nw = 0;  // ∀-block: variables nx..nx+nw-1
};

/// Builds the RCQP instance (fixed Dm and V; Q varies with φ).
Result<EncodedRcqpInstance> EncodeFixedRcqpFamily(
    const FixedRcqpFamilyInstance& instance);

/// Builds the candidate witness for the ∃-assignment `chi` (values of
/// variables 0..nx-1): the stored assignment, the circuit tables, and
/// Rb = {(1, 0)}. By the family's correctness property, the witness is
/// complete for the encoded query iff ∀W φ(chi, W) holds.
Result<Database> BuildFixedFamilyWitness(
    const FixedRcqpFamilyInstance& instance, const std::vector<bool>& chi,
    const EncodedRcqpInstance& encoded);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_FIXED_RCQP_FAMILY_H_
