#include "reductions/three_sat_rcqp.h"

#include "constraints/integrity_constraints.h"
#include "util/str.h"

namespace relcomp {

using reductions_internal::GadgetRelationSchema;

Result<EncodedRcqpInstance> EncodeThreeSatRcqp(const CnfFormula& f) {
  if (f.num_vars == 0 || f.clauses.empty()) {
    return Status::InvalidArgument(
        "formula must have at least one variable and one clause");
  }
  EncodedRcqpInstance out;

  auto db_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(GadgetRelationSchema("Rt", 2)));
  RELCOMP_RETURN_NOT_OK(
      db_schema->AddRelation(GadgetRelationSchema("Ror", 3)));
  {
    // R(A, x1, x̄1, ..., xn, x̄n): A infinite, variable columns Boolean.
    std::vector<AttributeDef> attrs;
    attrs.push_back(AttributeDef::Inf("A"));
    for (size_t v = 0; v < f.num_vars; ++v) {
      attrs.push_back(AttributeDef::Over(StrCat("x", v), Domain::Boolean()));
      attrs.push_back(AttributeDef::Over(StrCat("nx", v), Domain::Boolean()));
    }
    RELCOMP_RETURN_NOT_OK(
        db_schema->AddRelation(RelationSchema("R", std::move(attrs))));
  }
  out.db_schema = db_schema;

  auto master_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(
      master_schema->AddRelation(GadgetRelationSchema("Rtm", 2)));
  RELCOMP_RETURN_NOT_OK(
      master_schema->AddRelation(GadgetRelationSchema("Rorm", 3)));
  out.master_schema = master_schema;
  out.master = Database(master_schema);

  // Fixed master data: the truth-pair table and the seven satisfying
  // rows of l1 ∨ l2 ∨ l3.
  RELCOMP_RETURN_NOT_OK(
      out.master.Insert("Rtm", Tuple({Value::Int(0), Value::Int(1)})));
  RELCOMP_RETURN_NOT_OK(
      out.master.Insert("Rtm", Tuple({Value::Int(1), Value::Int(0)})));
  for (int64_t a = 0; a <= 1; ++a) {
    for (int64_t b = 0; b <= 1; ++b) {
      for (int64_t c = 0; c <= 1; ++c) {
        if (a == 0 && b == 0 && c == 0) continue;
        RELCOMP_RETURN_NOT_OK(out.master.Insert(
            "Rorm",
            Tuple({Value::Int(a), Value::Int(b), Value::Int(c)})));
      }
    }
  }

  // Fixed IND constraints: Rt ⊆ Rtm and Ror ⊆ Rorm.
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint cc_rt,
      MakeIndToMaster(*db_schema, "Rt", {0, 1}, "Rtm", {0, 1}));
  out.constraints.Add(std::move(cc_rt));
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint cc_or,
      MakeIndToMaster(*db_schema, "Ror", {0, 1, 2}, "Rorm", {0, 1, 2}));
  out.constraints.Add(std::move(cc_or));

  // Q(z) :- R(z, x0, nx0, ...), Rt(x0, nx0), ..., Ror per clause.
  std::vector<Atom> body;
  auto pos = [](size_t v) { return Term::Var(StrCat("x", v)); };
  auto neg = [](size_t v) { return Term::Var(StrCat("nx", v)); };
  {
    std::vector<Term> r_args;
    r_args.push_back(Term::Var("z"));
    for (size_t v = 0; v < f.num_vars; ++v) {
      r_args.push_back(pos(v));
      r_args.push_back(neg(v));
    }
    body.push_back(Atom::Relation("R", std::move(r_args)));
  }
  for (size_t v = 0; v < f.num_vars; ++v) {
    body.push_back(Atom::Relation("Rt", {pos(v), neg(v)}));
  }
  for (const std::vector<Literal>& clause : f.clauses) {
    std::vector<Literal> padded = clause;
    while (padded.size() < 3) padded.push_back(padded.back());
    std::vector<Term> args;
    for (int l = 0; l < 3; ++l) {
      args.push_back(padded[l].negated ? neg(padded[l].var)
                                       : pos(padded[l].var));
    }
    body.push_back(Atom::Relation("Ror", std::move(args)));
  }
  ConjunctiveQuery q("Q3sat", {Term::Var("z")}, std::move(body));
  RELCOMP_RETURN_NOT_OK(q.Validate(*db_schema));
  out.query = AnyQuery::Cq(std::move(q));
  return out;
}

}  // namespace relcomp
