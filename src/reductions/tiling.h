#ifndef RELCOMP_REDUCTIONS_TILING_H_
#define RELCOMP_REDUCTIONS_TILING_H_

#include <optional>
#include <vector>

#include "reductions/common.h"
#include "util/status.h"

namespace relcomp {

/// A 2^n × 2^n tiling instance: tiles 0..num_tiles-1, a designated
/// top-left tile t0, and the binary compatibility relations V and H
/// (V(a, b): b may sit directly below a; H(a, b): b may sit directly
/// to the right of a).
struct TilingInstance {
  size_t n = 1;  // grid is 2^n × 2^n
  size_t num_tiles = 2;
  size_t t0 = 0;
  std::vector<std::pair<size_t, size_t>> vertical;
  std::vector<std::pair<size_t, size_t>> horizontal;
};

/// Backtracking solver for the source problem. Returns the tiling as a
/// row-major grid of tile ids, or nullopt. Exponential; intended for
/// n ≤ 2 cross-checks.
std::optional<std::vector<size_t>> SolveTiling(const TilingInstance& t);

/// The NEXPTIME-hardness reduction of Theorem 4.5(2): encodes a tiling
/// instance as an RCQP(CQ, CQ) instance such that
///
///   RCQ(Q, Dm, V) is nonempty  iff  a tiling exists.
///
/// Construction (following Dantsin-Voronkov as in the paper): relation
/// R1(id, X1, X2, X3, X4, Z) stores rank-1 hypertiles (2×2 squares,
/// top-left tile Z = X1) and Ri (i ≥ 2) stores rank-i hypertiles as
/// quadruples of rank-(i-1) ids plus the five overlapping "glue"
/// hypertiles that enforce border compatibility. Key CCs make each id
/// unique, IND CCs bound rank-1 tiles by the master tile/compatibility
/// tables, CQ CCs enforce the glue equations, and the final CC bounds
/// Rb by {(0)} exactly when a fully traced hierarchy with top-left t0
/// exists. The query returns Rb, whose infinite-domain attribute can
/// only be "pumped" when no tiling hierarchy is present.
Result<EncodedRcqpInstance> EncodeTilingRcqp(const TilingInstance& t);

/// Builds the hierarchical witness database for a solved tiling (the
/// proof's "complete D"): hypertile rows of every rank at every
/// admissible position, plus Rb = {(0)}. The result is complete for
/// the encoded query iff `grid` is a valid tiling.
Result<Database> BuildTilingWitness(const TilingInstance& t,
                                    const std::vector<size_t>& grid,
                                    const EncodedRcqpInstance& encoded);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_TILING_H_
