#ifndef RELCOMP_REDUCTIONS_SAT_H_
#define RELCOMP_REDUCTIONS_SAT_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace relcomp {

/// A literal: 0-based variable index, possibly negated.
struct Literal {
  size_t var = 0;
  bool negated = false;
};

/// A 3-CNF formula over variables 0..num_vars-1. Clauses may have
/// fewer than three literals; the encoders pad by repetition.
struct CnfFormula {
  size_t num_vars = 0;
  std::vector<std::vector<Literal>> clauses;

  /// Evaluates under a total assignment (assignment[v] is var v).
  bool Eval(const std::vector<bool>& assignment) const;

  /// "(x0 | !x1 | x2) & (...)".
  std::string ToString() const;
};

/// Brute-force SAT: ∃ assignment making the formula true.
bool SatBruteForce(const CnfFormula& f);

/// Brute-force Π₂ check for ∀X ∃Y φ, where X is variables 0..nx-1 and
/// Y is nx..nx+ny-1 (nx + ny == f.num_vars).
bool ForallExistsBruteForce(const CnfFormula& f, size_t nx, size_t ny);

/// Brute-force Σ₃ check for ∃X ∀Y ∃Z φ with the variable blocks
/// X = 0..nx-1, Y = nx..nx+ny-1, Z = the rest.
bool ExistsForallExistsBruteForce(const CnfFormula& f, size_t nx, size_t ny,
                                  size_t nz);

/// A reproducible random 3-CNF with exactly 3 literals per clause.
CnfFormula RandomCnf(size_t num_vars, size_t num_clauses, std::mt19937_64* rng);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_SAT_H_
