#include "reductions/tiling.h"

#include <functional>
#include <map>
#include <set>

#include "constraints/integrity_constraints.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// Relation name of rank-i hypertiles.
std::string RankRelation(size_t i) { return StrCat("R", i); }

/// Arity of the rank-i relation: R1(id, X1..X4, Z) is 6-ary; higher
/// ranks are 11-ary (id, id1..id4, id12, id13, id24, id34, id1234, Z).
size_t RankArity(size_t i) { return i == 1 ? 6 : 11; }

}  // namespace

std::optional<std::vector<size_t>> SolveTiling(const TilingInstance& t) {
  const size_t w = 1ULL << t.n;
  std::set<std::pair<size_t, size_t>> v_ok(t.vertical.begin(),
                                           t.vertical.end());
  std::set<std::pair<size_t, size_t>> h_ok(t.horizontal.begin(),
                                           t.horizontal.end());
  std::vector<size_t> grid(w * w, 0);
  std::function<bool(size_t)> place = [&](size_t pos) {
    if (pos == w * w) return true;
    size_t r = pos / w;
    size_t c = pos % w;
    for (size_t tile = 0; tile < t.num_tiles; ++tile) {
      if (r == 0 && c == 0 && tile != t.t0) continue;
      if (c > 0 && h_ok.count({grid[pos - 1], tile}) == 0) continue;
      if (r > 0 && v_ok.count({grid[pos - w], tile}) == 0) continue;
      grid[pos] = tile;
      if (place(pos + 1)) return true;
    }
    return false;
  };
  if (!place(0)) return std::nullopt;
  return grid;
}

Result<EncodedRcqpInstance> EncodeTilingRcqp(const TilingInstance& t) {
  if (t.n < 1) return Status::InvalidArgument("tiling rank n must be >= 1");
  if (t.num_tiles == 0 || t.t0 >= t.num_tiles) {
    return Status::InvalidArgument("bad tile set / t0");
  }
  EncodedRcqpInstance out;
  auto tile_domain = Domain::FiniteInts("tiles",
                                        static_cast<int64_t>(t.num_tiles));

  // ---- Schemas. -------------------------------------------------------
  auto db_schema = std::make_shared<Schema>();
  {
    std::vector<AttributeDef> attrs = {
        AttributeDef::Inf("id"),
        AttributeDef::Over("X1", tile_domain),
        AttributeDef::Over("X2", tile_domain),
        AttributeDef::Over("X3", tile_domain),
        AttributeDef::Over("X4", tile_domain),
        AttributeDef::Over("Z", tile_domain)};
    RELCOMP_RETURN_NOT_OK(
        db_schema->AddRelation(RelationSchema("R1", std::move(attrs))));
  }
  for (size_t i = 2; i <= t.n; ++i) {
    std::vector<AttributeDef> attrs = {AttributeDef::Inf("id")};
    for (const char* sub :
         {"id1", "id2", "id3", "id4", "id12", "id13", "id24", "id34",
          "id1234"}) {
      attrs.push_back(AttributeDef::Inf(sub));
    }
    attrs.push_back(AttributeDef::Over("Z", tile_domain));
    RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(
        RelationSchema(RankRelation(i), std::move(attrs))));
  }
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(
      RelationSchema("Rb", {AttributeDef::Inf("w")})));
  out.db_schema = db_schema;

  auto master_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(
      RelationSchema("RmT", {AttributeDef::Over("t", tile_domain)})));
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(RelationSchema(
      "RmV", {AttributeDef::Over("a", tile_domain),
              AttributeDef::Over("b", tile_domain)})));
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(RelationSchema(
      "RmH", {AttributeDef::Over("a", tile_domain),
              AttributeDef::Over("b", tile_domain)})));
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(
      RelationSchema("Rmb", {AttributeDef::Inf("w")})));
  out.master_schema = master_schema;

  // ---- Master data. ---------------------------------------------------
  out.master = Database(master_schema);
  for (size_t tile = 0; tile < t.num_tiles; ++tile) {
    RELCOMP_RETURN_NOT_OK(out.master.Insert(
        "RmT", Tuple({Value::Int(static_cast<int64_t>(tile))})));
  }
  for (const auto& [a, b] : t.vertical) {
    RELCOMP_RETURN_NOT_OK(out.master.Insert(
        "RmV", Tuple({Value::Int(static_cast<int64_t>(a)),
                      Value::Int(static_cast<int64_t>(b))})));
  }
  for (const auto& [a, b] : t.horizontal) {
    RELCOMP_RETURN_NOT_OK(out.master.Insert(
        "RmH", Tuple({Value::Int(static_cast<int64_t>(a)),
                      Value::Int(static_cast<int64_t>(b))})));
  }
  RELCOMP_RETURN_NOT_OK(out.master.Insert("Rmb", Tuple({Value::Int(0)})));

  // ---- Containment constraints. ---------------------------------------
  // Rank-1 compatibility INDs.
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint v1,
      MakeIndToMaster(*db_schema, "R1", {1, 3}, "RmV", {0, 1}));
  out.constraints.Add(std::move(v1));
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint v2,
      MakeIndToMaster(*db_schema, "R1", {2, 4}, "RmV", {0, 1}));
  out.constraints.Add(std::move(v2));
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint h1,
      MakeIndToMaster(*db_schema, "R1", {1, 2}, "RmH", {0, 1}));
  out.constraints.Add(std::move(h1));
  RELCOMP_ASSIGN_OR_RETURN(
      ContainmentConstraint h2,
      MakeIndToMaster(*db_schema, "R1", {3, 4}, "RmH", {0, 1}));
  out.constraints.Add(std::move(h2));

  // Top-left marker: Z = X1 on R1.
  {
    std::vector<Term> args = {Term::Var("id"), Term::Var("x1"),
                              Term::Var("x2"), Term::Var("x3"),
                              Term::Var("x4"), Term::Var("z")};
    ConjunctiveQuery q("topl", {},
                       {Atom::Relation("R1", args),
                        Atom::Ne(Term::Var("x1"), Term::Var("z"))});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(q))));
  }

  // Keys: id determines every other column, at every rank.
  for (size_t i = 1; i <= t.n; ++i) {
    size_t arity = RankArity(i);
    for (size_t col = 1; col < arity; ++col) {
      std::vector<Term> args1 = {Term::Var("id")};
      std::vector<Term> args2 = {Term::Var("id")};
      for (size_t c = 1; c < arity; ++c) {
        args1.push_back(Term::Var(StrCat("u", c)));
        args2.push_back(c == col ? Term::Var("u_alt")
                                 : Term::Var(StrCat("w", c)));
      }
      ConjunctiveQuery q(
          StrCat("key_R", i, "_c", col), {},
          {Atom::Relation(RankRelation(i), std::move(args1)),
           Atom::Relation(RankRelation(i), std::move(args2)),
           Atom::Ne(Term::Var(StrCat("u", col)), Term::Var("u_alt"))});
      out.constraints.Add(
          ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(q))));
    }
  }

  // Glue equations at every rank >= 2. quad(x) is columns 1..4 of the
  // row with id x (uniform across ranks); the equations are:
  //   quad(id12)   = (a2, b1, a4, b3)
  //   quad(id13)   = (a3, a4, c1, c2)
  //   quad(id24)   = (b3, b4, d1, d2)
  //   quad(id34)   = (c2, d1, c4, d3)
  //   quad(id1234) = (a4, b3, c3, d1)
  //   Z(id)        = Z(id1)
  // where a/b/c/d abbreviate quad(id1)/quad(id2)/quad(id3)/quad(id4).
  for (size_t i = 2; i <= t.n; ++i) {
    const size_t sub_arity = RankArity(i - 1);
    const std::string sub_rel = RankRelation(i - 1);
    // Ri atom binding all id columns and Z.
    auto ri_atom = [&]() {
      std::vector<Term> args = {Term::Var("id")};
      for (const char* sub :
           {"id1", "id2", "id3", "id4", "id12", "id13", "id24", "id34",
            "id1234"}) {
        args.push_back(Term::Var(sub));
      }
      args.push_back(Term::Var("zz"));
      return Atom::Relation(RankRelation(i), std::move(args));
    };
    // Sub-row atom binding quad columns 1..4 as <prefix>1..<prefix>4
    // and nothing else (anonymous vars elsewhere).
    int anon = 0;
    auto sub_atom = [&](const std::string& id_var,
                        const std::string& prefix) {
      std::vector<Term> args = {Term::Var(id_var)};
      for (size_t c = 1; c < sub_arity; ++c) {
        if (c >= 1 && c <= 4) {
          args.push_back(Term::Var(StrCat(prefix, c)));
        } else {
          args.push_back(Term::Var(StrCat("_g", anon++)));
        }
      }
      return Atom::Relation(sub_rel, std::move(args));
    };
    struct GlueSpec {
      const char* glue_id;
      // For each of the four quad positions of the glue row: which
      // source sub-row ("a".."d") and which of its quad components.
      const char* source[4];
      int component[4];
    };
    const GlueSpec specs[] = {
        {"id12", {"a", "b", "a", "b"}, {2, 1, 4, 3}},
        {"id13", {"a", "a", "c", "c"}, {3, 4, 1, 2}},
        {"id24", {"b", "b", "d", "d"}, {3, 4, 1, 2}},
        {"id34", {"c", "d", "c", "d"}, {2, 1, 4, 3}},
        // The paper prints (a4, b3, c3, d1) here, but with row-major
        // quads the block at the center position is (a4, b3, c2, d1);
        // c3 does not touch the id1234 square.
        {"id1234", {"a", "b", "c", "d"}, {4, 3, 2, 1}},
    };
    const std::map<std::string, std::string> quad_of_source = {
        {"a", "id1"}, {"b", "id2"}, {"c", "id3"}, {"d", "id4"}};
    for (const GlueSpec& spec : specs) {
      for (int pos = 1; pos <= 4; ++pos) {
        // CC: Ri(...), sub(source_id, s1..s4, ...), sub(glue_id,
        // e1..e4, ...), e_pos != s_{component} ⊆ ∅.
        std::vector<Atom> body;
        body.push_back(ri_atom());
        std::string source = spec.source[pos - 1];
        body.push_back(sub_atom(quad_of_source.at(source), "s"));
        body.push_back(sub_atom(spec.glue_id, "e"));
        body.push_back(Atom::Ne(Term::Var(StrCat("e", pos)),
                                Term::Var(StrCat(
                                    "s", spec.component[pos - 1]))));
        ConjunctiveQuery q(StrCat("glue_R", i, "_", spec.glue_id, "_", pos),
                           {}, std::move(body));
        out.constraints.Add(ContainmentConstraint::SubsetOfEmpty(
            AnyQuery::Cq(std::move(q))));
      }
    }
    // Z(id) = Z(id1).
    {
      std::vector<Atom> body;
      body.push_back(ri_atom());
      std::vector<Term> args = {Term::Var("id1")};
      for (size_t c = 1; c < sub_arity - 1; ++c) {
        args.push_back(Term::Var(StrCat("_z", c)));
      }
      args.push_back(Term::Var("subz"));
      body.push_back(Atom::Relation(sub_rel, std::move(args)));
      body.push_back(Atom::Ne(Term::Var("zz"), Term::Var("subz")));
      ConjunctiveQuery q(StrCat("ztop_R", i), {}, std::move(body));
      out.constraints.Add(ContainmentConstraint::SubsetOfEmpty(
          AnyQuery::Cq(std::move(q))));
    }
  }

  // The final CC φ: if a fully traced rank-n hierarchy with top-left
  // tile t0 exists, Rb is bounded by Rmb = {(0)}.
  {
    std::vector<Atom> body;
    int fresh = 0;
    // Emits the trace atom for a row of rank i with the given id term;
    // returns nothing (appends to body), recursing over children.
    std::function<void(size_t, const Term&, bool)> emit =
        [&](size_t i, const Term& id_term, bool top) {
          std::vector<Term> args = {id_term};
          std::vector<Term> child_ids;
          if (i == 1) {
            for (int c = 1; c <= 4; ++c) {
              args.push_back(Term::Var(StrCat("_t", fresh++)));
            }
          } else {
            for (int c = 1; c <= 9; ++c) {
              Term child = Term::Var(StrCat("_id", fresh++));
              args.push_back(child);
              child_ids.push_back(child);
            }
          }
          // Z column: the top row must carry tile t0.
          if (top) {
            args.push_back(Term::ConstInt(static_cast<int64_t>(t.t0)));
          } else {
            args.push_back(Term::Var(StrCat("_t", fresh++)));
          }
          body.push_back(Atom::Relation(RankRelation(i), std::move(args)));
          for (const Term& child : child_ids) {
            emit(i - 1, child, false);
          }
        };
    emit(t.n, Term::Var("top_id"), true);
    body.push_back(Atom::Relation("Rb", {Term::Var("w")}));
    ConjunctiveQuery q("phi_trace", {Term::Var("w")}, std::move(body));
    out.constraints.Add(
        ContainmentConstraint::Subset(AnyQuery::Cq(std::move(q)), "Rmb",
                                      {0}));
  }

  // The query simply returns Rb.
  ConjunctiveQuery q("Qtile", {Term::Var("w")},
                     {Atom::Relation("Rb", {Term::Var("w")})});
  RELCOMP_RETURN_NOT_OK(q.Validate(*db_schema));
  out.query = AnyQuery::Cq(std::move(q));
  for (const ContainmentConstraint& cc : out.constraints.constraints()) {
    RELCOMP_RETURN_NOT_OK(cc.Validate(*db_schema, *master_schema));
  }
  return out;
}

Result<Database> BuildTilingWitness(const TilingInstance& t,
                                    const std::vector<size_t>& grid,
                                    const EncodedRcqpInstance& encoded) {
  const size_t w = 1ULL << t.n;
  if (grid.size() != w * w) {
    return Status::InvalidArgument("grid size does not match 2^n x 2^n");
  }
  Database db(encoded.db_schema);
  auto tile = [&](size_t r, size_t c) {
    return Value::Int(static_cast<int64_t>(grid[r * w + c]));
  };
  auto id_of = [](size_t rank, size_t r, size_t c) {
    return Value::Str(StrCat("h", rank, "_", r, "_", c));
  };
  // Rank 1: every 2x2 block at every position.
  for (size_t r = 0; r + 1 < w; ++r) {
    for (size_t c = 0; c + 1 < w; ++c) {
      RELCOMP_RETURN_NOT_OK(db.Insert(
          "R1", Tuple({id_of(1, r, c), tile(r, c), tile(r, c + 1),
                       tile(r + 1, c), tile(r + 1, c + 1), tile(r, c)})));
    }
  }
  // Higher ranks at every admissible position.
  for (size_t i = 2; i <= t.n; ++i) {
    const size_t size = 1ULL << i;       // tiles covered per side
    const size_t half = size / 2;        // child stride
    const size_t quarter = half / 2;     // glue offset
    for (size_t r = 0; r + size <= w; ++r) {
      for (size_t c = 0; c + size <= w; ++c) {
        RELCOMP_RETURN_NOT_OK(db.Insert(
            RankRelation(i),
            Tuple({id_of(i, r, c), id_of(i - 1, r, c),
                   id_of(i - 1, r, c + half), id_of(i - 1, r + half, c),
                   id_of(i - 1, r + half, c + half),
                   id_of(i - 1, r, c + quarter),
                   id_of(i - 1, r + quarter, c),
                   id_of(i - 1, r + quarter, c + half),
                   id_of(i - 1, r + half, c + quarter),
                   id_of(i - 1, r + quarter, c + quarter), tile(r, c)})));
      }
    }
  }
  RELCOMP_RETURN_NOT_OK(db.Insert("Rb", Tuple({Value::Int(0)})));
  return db;
}

}  // namespace relcomp
