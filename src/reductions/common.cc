#include "reductions/common.h"

#include "util/str.h"

namespace relcomp {
namespace reductions_internal {

RelationSchema GadgetRelationSchema(const std::string& name, size_t arity) {
  std::vector<AttributeDef> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back(AttributeDef::Over(StrCat("b", i), Domain::Boolean()));
  }
  return RelationSchema(name, std::move(attrs));
}

Status InsertGadgetTable(const std::string& table,
                         const std::string& relation, Database* db) {
  auto insert = [&](std::initializer_list<int64_t> row) -> Status {
    std::vector<Value> values;
    for (int64_t v : row) values.push_back(Value::Int(v));
    return db->Insert(relation, Tuple(std::move(values)));
  };
  if (table == "bool01") {
    RELCOMP_RETURN_NOT_OK(insert({0}));
    return insert({1});
  }
  if (table == "or") {
    RELCOMP_RETURN_NOT_OK(insert({0, 0, 0}));
    RELCOMP_RETURN_NOT_OK(insert({0, 1, 1}));
    RELCOMP_RETURN_NOT_OK(insert({1, 0, 1}));
    return insert({1, 1, 1});
  }
  if (table == "and") {
    RELCOMP_RETURN_NOT_OK(insert({0, 0, 0}));
    RELCOMP_RETURN_NOT_OK(insert({0, 1, 0}));
    RELCOMP_RETURN_NOT_OK(insert({1, 0, 0}));
    return insert({1, 1, 1});
  }
  if (table == "not") {
    RELCOMP_RETURN_NOT_OK(insert({0, 1}));
    return insert({1, 0});
  }
  if (table == "ic") {
    // Ic(x, y, 1) iff x = 0, or x = 1 and y = 1.
    RELCOMP_RETURN_NOT_OK(insert({0, 0, 1}));
    RELCOMP_RETURN_NOT_OK(insert({0, 1, 1}));
    RELCOMP_RETURN_NOT_OK(insert({1, 0, 0}));
    return insert({1, 1, 1});
  }
  return Status::InvalidArgument(StrCat("unknown gadget table: ", table));
}

}  // namespace reductions_internal
}  // namespace relcomp
