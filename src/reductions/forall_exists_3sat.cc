#include "reductions/forall_exists_3sat.h"

#include <map>

#include "constraints/integrity_constraints.h"
#include "util/str.h"

namespace relcomp {

using reductions_internal::GadgetRelationSchema;
using reductions_internal::InsertGadgetTable;

Result<EncodedRcdpInstance> EncodeForallExists3Sat(
    const ForallExists3SatInstance& instance) {
  const CnfFormula& f = instance.formula;
  if (instance.nx + instance.ny != f.num_vars) {
    return Status::InvalidArgument("nx + ny must equal formula.num_vars");
  }
  if (f.clauses.empty()) {
    return Status::InvalidArgument("formula must have at least one clause");
  }
  EncodedRcdpInstance out;

  // Schemas: R1(x), R2/R3/R5 ternary, R4 binary, R6(x); Rm mirrors R.
  auto db_schema = std::make_shared<Schema>();
  auto master_schema = std::make_shared<Schema>();
  const std::vector<std::pair<std::string, size_t>> relations = {
      {"R1", 1}, {"R2", 3}, {"R3", 3}, {"R4", 2}, {"R5", 3}, {"R6", 1}};
  for (const auto& [name, arity] : relations) {
    RELCOMP_RETURN_NOT_OK(
        db_schema->AddRelation(GadgetRelationSchema(name, arity)));
    RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(
        GadgetRelationSchema(StrCat(name, "m"), arity)));
  }
  out.db_schema = db_schema;
  out.master_schema = master_schema;
  out.db = Database(db_schema);
  out.master = Database(master_schema);

  // Fixed instances: D and Dm agree except R6 = {1} vs R6m = {0,1}.
  const std::vector<std::pair<std::string, std::string>> tables = {
      {"R1", "bool01"}, {"R2", "or"}, {"R3", "and"},
      {"R4", "not"},    {"R5", "ic"}};
  for (const auto& [name, table] : tables) {
    RELCOMP_RETURN_NOT_OK(InsertGadgetTable(table, name, &out.db));
    RELCOMP_RETURN_NOT_OK(
        InsertGadgetTable(table, StrCat(name, "m"), &out.master));
  }
  RELCOMP_RETURN_NOT_OK(out.db.Insert("R6", Tuple({Value::Int(1)})));
  RELCOMP_RETURN_NOT_OK(
      InsertGadgetTable("bool01", "R6m", &out.master));

  // Fixed constraints: the full-width INDs Ri ⊆ Rim.
  for (const auto& [name, arity] : relations) {
    std::vector<size_t> cols;
    for (size_t c = 0; c < arity; ++c) cols.push_back(c);
    RELCOMP_ASSIGN_OR_RETURN(
        ContainmentConstraint cc,
        MakeIndToMaster(*db_schema, name, cols, StrCat(name, "m"), cols));
    out.constraints.Add(std::move(cc));
  }

  // The query: clause circuit + the R6/R5 selection gadget.
  std::vector<Atom> body;
  auto var_term = [](size_t v) { return Term::Var(StrCat("v", v)); };
  for (size_t v = 0; v < f.num_vars; ++v) {
    body.push_back(Atom::Relation("R1", {var_term(v)}));
  }
  // Negated-literal terms, one R4 row per negated variable (cached).
  std::map<size_t, Term> negated;
  auto literal_term = [&](const Literal& lit) {
    if (!lit.negated) return var_term(lit.var);
    auto it = negated.find(lit.var);
    if (it == negated.end()) {
      Term nv = Term::Var(StrCat("nv", lit.var));
      body.push_back(Atom::Relation("R4", {var_term(lit.var), nv}));
      it = negated.emplace(lit.var, nv).first;
    }
    return it->second;
  };
  // Clause values c_i via OR chains.
  std::vector<Term> clause_terms;
  for (size_t c = 0; c < f.clauses.size(); ++c) {
    std::vector<Literal> clause = f.clauses[c];
    while (clause.size() < 3) clause.push_back(clause.back());
    Term a = literal_term(clause[0]);
    Term b = literal_term(clause[1]);
    Term d = literal_term(clause[2]);
    Term o1 = Term::Var(StrCat("or", c, "_1"));
    Term ci = Term::Var(StrCat("cl", c));
    body.push_back(Atom::Relation("R2", {a, b, o1}));
    body.push_back(Atom::Relation("R2", {o1, d, ci}));
    clause_terms.push_back(ci);
  }
  // Conjunction chain over the clause values yields z.
  Term z = clause_terms.front();
  for (size_t c = 1; c < clause_terms.size(); ++c) {
    Term next = Term::Var(StrCat("and", c));
    body.push_back(Atom::Relation("R3", {z, clause_terms[c], next}));
    z = next;
  }
  // Selection: R6(z') × R5(z', z, 1).
  Term zp = Term::Var("zp");
  body.push_back(Atom::Relation("R6", {zp}));
  body.push_back(Atom::Relation("R5", {zp, z, Term::ConstInt(1)}));

  std::vector<Term> head;
  for (size_t v = 0; v < instance.nx; ++v) head.push_back(var_term(v));
  ConjunctiveQuery q("Qfe3sat", std::move(head), std::move(body));
  RELCOMP_RETURN_NOT_OK(q.Validate(*db_schema));
  out.query = AnyQuery::Cq(std::move(q));
  return out;
}

}  // namespace relcomp
