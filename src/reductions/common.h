#ifndef RELCOMP_REDUCTIONS_COMMON_H_
#define RELCOMP_REDUCTIONS_COMMON_H_

#include <memory>
#include <string>

#include "constraints/containment_constraint.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// A fully materialized RCDP instance produced by a hardness reduction:
/// deciding whether `db` is complete for `query` relative to
/// (`master`, `constraints`) answers the encoded source problem.
struct EncodedRcdpInstance {
  std::shared_ptr<const Schema> db_schema;
  std::shared_ptr<const Schema> master_schema;
  Database db;
  Database master;
  ConstraintSet constraints;
  AnyQuery query;

  EncodedRcdpInstance()
      : db(std::make_shared<Schema>()), master(std::make_shared<Schema>()) {}
};

/// An RCQP instance: deciding whether a relatively complete database
/// exists for `query` w.r.t. (`master`, `constraints`).
struct EncodedRcqpInstance {
  std::shared_ptr<const Schema> db_schema;
  std::shared_ptr<const Schema> master_schema;
  Database master;
  ConstraintSet constraints;
  AnyQuery query;

  EncodedRcqpInstance() : master(std::make_shared<Schema>()) {}
};

namespace reductions_internal {

/// Boolean-circuit gadget tables shared by the 3SAT-style reductions
/// (the proof of Theorem 3.6): I01 = {0,1}, I∨ / I∧ = the disjunction /
/// conjunction truth tables, I¬ = negation, Ic with Ic(x,y,1) iff
/// x = 0 or (x = 1 and y = 1).

/// Inserts the truth-table rows for `table` ("bool01", "or", "and",
/// "not", "ic") into relation `relation` of `*db`.
Status InsertGadgetTable(const std::string& table,
                         const std::string& relation, Database* db);

/// Relation schema for a gadget table: all columns over the Boolean
/// finite domain.
RelationSchema GadgetRelationSchema(const std::string& name, size_t arity);

}  // namespace reductions_internal

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_COMMON_H_
