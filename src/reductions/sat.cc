#include "reductions/sat.h"

#include "util/str.h"

namespace relcomp {

bool CnfFormula::Eval(const std::vector<bool>& assignment) const {
  for (const std::vector<Literal>& clause : clauses) {
    bool clause_true = false;
    for (const Literal& lit : clause) {
      bool v = assignment[lit.var];
      if (lit.negated ? !v : v) {
        clause_true = true;
        break;
      }
    }
    if (!clause_true) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) out += " & ";
    out += "(";
    for (size_t l = 0; l < clauses[c].size(); ++l) {
      if (l > 0) out += " | ";
      if (clauses[c][l].negated) out += "!";
      out += StrCat("x", clauses[c][l].var);
    }
    out += ")";
  }
  return out;
}

namespace {

/// Iterates over all assignments of variables [from, from+count) on top
/// of `assignment`, returning true if `pred` holds for (exists ? some :
/// every) one of them.
template <typename Pred>
bool Quantify(std::vector<bool>* assignment, size_t from, size_t count,
              bool exists, const Pred& pred) {
  if (count == 0) return pred(*assignment);
  for (uint64_t bits = 0; bits < (1ULL << count); ++bits) {
    for (size_t i = 0; i < count; ++i) {
      (*assignment)[from + i] = ((bits >> i) & 1) != 0;
    }
    bool sub = pred(*assignment);
    if (exists && sub) return true;
    if (!exists && !sub) return false;
  }
  return !exists;
}

}  // namespace

bool SatBruteForce(const CnfFormula& f) {
  std::vector<bool> assignment(f.num_vars, false);
  return Quantify(&assignment, 0, f.num_vars, /*exists=*/true,
                  [&f](const std::vector<bool>& a) { return f.Eval(a); });
}

bool ForallExistsBruteForce(const CnfFormula& f, size_t nx, size_t ny) {
  std::vector<bool> assignment(f.num_vars, false);
  return Quantify(&assignment, 0, nx, /*exists=*/false,
                  [&](const std::vector<bool>&) {
                    return Quantify(&assignment, nx, ny, /*exists=*/true,
                                    [&](const std::vector<bool>& a) {
                                      return f.Eval(a);
                                    });
                  });
}

bool ExistsForallExistsBruteForce(const CnfFormula& f, size_t nx, size_t ny,
                                  size_t nz) {
  std::vector<bool> assignment(f.num_vars, false);
  return Quantify(
      &assignment, 0, nx, /*exists=*/true, [&](const std::vector<bool>&) {
        return Quantify(
            &assignment, nx, ny, /*exists=*/false,
            [&](const std::vector<bool>&) {
              return Quantify(&assignment, nx + ny, nz, /*exists=*/true,
                              [&](const std::vector<bool>& a) {
                                return f.Eval(a);
                              });
            });
      });
}

CnfFormula RandomCnf(size_t num_vars, size_t num_clauses,
                     std::mt19937_64* rng) {
  CnfFormula f;
  f.num_vars = num_vars;
  std::uniform_int_distribution<size_t> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  for (size_t c = 0; c < num_clauses; ++c) {
    std::vector<Literal> clause;
    for (int l = 0; l < 3; ++l) {
      clause.push_back(Literal{var_dist(*rng), sign_dist(*rng) == 1});
    }
    f.clauses.push_back(std::move(clause));
  }
  return f;
}

}  // namespace relcomp
