#include "reductions/fixed_rcqp_family.h"

#include <map>

#include "constraints/integrity_constraints.h"
#include "util/str.h"

namespace relcomp {

using reductions_internal::GadgetRelationSchema;
using reductions_internal::InsertGadgetTable;

Result<EncodedRcqpInstance> EncodeFixedRcqpFamily(
    const FixedRcqpFamilyInstance& instance) {
  const CnfFormula& f = instance.formula;
  if (instance.nx + instance.nw != f.num_vars) {
    return Status::InvalidArgument("nx + nw must equal formula.num_vars");
  }
  if (f.clauses.empty()) {
    return Status::InvalidArgument("formula must have at least one clause");
  }
  EncodedRcqpInstance out;

  // ---- Fixed database schema. -----------------------------------------
  auto db_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(RelationSchema(
      "AsgnX", {AttributeDef::Inf("i"),
                AttributeDef::Over("v", Domain::Boolean())})));
  RELCOMP_RETURN_NOT_OK(
      db_schema->AddRelation(GadgetRelationSchema("BoolR", 1)));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(GadgetRelationSchema("OrT", 3)));
  RELCOMP_RETURN_NOT_OK(
      db_schema->AddRelation(GadgetRelationSchema("AndT", 3)));
  RELCOMP_RETURN_NOT_OK(
      db_schema->AddRelation(GadgetRelationSchema("NotT", 2)));
  RELCOMP_RETURN_NOT_OK(db_schema->AddRelation(RelationSchema(
      "Rb", {AttributeDef::Over("u", Domain::Boolean()),
             AttributeDef::Inf("w")})));
  out.db_schema = db_schema;

  // ---- Fixed master schema and data. ----------------------------------
  auto master_schema = std::make_shared<Schema>();
  RELCOMP_RETURN_NOT_OK(
      master_schema->AddRelation(GadgetRelationSchema("Bm", 1)));
  RELCOMP_RETURN_NOT_OK(
      master_schema->AddRelation(GadgetRelationSchema("OrTm", 3)));
  RELCOMP_RETURN_NOT_OK(
      master_schema->AddRelation(GadgetRelationSchema("AndTm", 3)));
  RELCOMP_RETURN_NOT_OK(
      master_schema->AddRelation(GadgetRelationSchema("NotTm", 2)));
  RELCOMP_RETURN_NOT_OK(master_schema->AddRelation(
      RelationSchema("Rmb", {AttributeDef::Inf("w")})));
  out.master_schema = master_schema;
  out.master = Database(master_schema);
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("bool01", "Bm", &out.master));
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("or", "OrTm", &out.master));
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("and", "AndTm", &out.master));
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("not", "NotTm", &out.master));
  RELCOMP_RETURN_NOT_OK(out.master.Insert("Rmb", Tuple({Value::Int(0)})));

  // ---- Fixed containment constraints. ---------------------------------
  // Key on AsgnX: i determines v.
  {
    ConjunctiveQuery q(
        "keyX", {},
        {Atom::Relation("AsgnX", {Term::Var("i"), Term::Var("u")}),
         Atom::Relation("AsgnX", {Term::Var("i"), Term::Var("v")}),
         Atom::Ne(Term::Var("u"), Term::Var("v"))});
    out.constraints.Add(
        ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(std::move(q))));
  }
  RELCOMP_ASSIGN_OR_RETURN(ContainmentConstraint cc_v,
                           MakeIndToMaster(*db_schema, "AsgnX", {1}, "Bm",
                                           {0}));
  out.constraints.Add(std::move(cc_v));
  RELCOMP_ASSIGN_OR_RETURN(ContainmentConstraint cc_b,
                           MakeIndToMaster(*db_schema, "BoolR", {0}, "Bm",
                                           {0}));
  out.constraints.Add(std::move(cc_b));
  for (const auto& [rel, master_rel] :
       std::map<std::string, std::string>{
           {"OrT", "OrTm"}, {"AndT", "AndTm"}, {"NotT", "NotTm"}}) {
    const size_t arity = db_schema->FindRelation(rel)->arity();
    std::vector<size_t> cols;
    for (size_t c = 0; c < arity; ++c) cols.push_back(c);
    RELCOMP_ASSIGN_OR_RETURN(
        ContainmentConstraint cc,
        MakeIndToMaster(*db_schema, rel, cols, master_rel, cols));
    out.constraints.Add(std::move(cc));
  }
  // Pump guard: Rb(1, w) rows are bounded by Rmb = {(0)}.
  {
    ConjunctiveQuery q(
        "pump_guard", {Term::Var("w")},
        {Atom::Relation("Rb", {Term::Var("u"), Term::Var("w")}),
         Atom::Eq(Term::Var("u"), Term::ConstInt(1))});
    out.constraints.Add(ContainmentConstraint::Subset(
        AnyQuery::Cq(std::move(q)), "Rmb", {0}));
  }

  // ---- The query (varies with the formula). ---------------------------
  std::vector<Atom> body;
  auto var_term = [](size_t v) { return Term::Var(StrCat("v", v)); };
  for (size_t i = 0; i < instance.nx; ++i) {
    body.push_back(Atom::Relation(
        "AsgnX",
        {Term::ConstInt(static_cast<int64_t>(i)), var_term(i)}));
  }
  for (size_t j = instance.nx; j < f.num_vars; ++j) {
    body.push_back(Atom::Relation("BoolR", {var_term(j)}));
  }
  std::map<size_t, Term> negated;
  auto literal_term = [&](const Literal& lit) {
    if (!lit.negated) return var_term(lit.var);
    auto it = negated.find(lit.var);
    if (it == negated.end()) {
      Term nv = Term::Var(StrCat("nv", lit.var));
      body.push_back(Atom::Relation("NotT", {var_term(lit.var), nv}));
      it = negated.emplace(lit.var, nv).first;
    }
    return it->second;
  };
  std::vector<Term> clause_terms;
  for (size_t c = 0; c < f.clauses.size(); ++c) {
    std::vector<Literal> clause = f.clauses[c];
    while (clause.size() < 3) clause.push_back(clause.back());
    Term a = literal_term(clause[0]);
    Term b = literal_term(clause[1]);
    Term d = literal_term(clause[2]);
    Term o1 = Term::Var(StrCat("or", c, "_1"));
    Term ci = Term::Var(StrCat("cl", c));
    body.push_back(Atom::Relation("OrT", {a, b, o1}));
    body.push_back(Atom::Relation("OrT", {o1, d, ci}));
    clause_terms.push_back(ci);
  }
  Term z = clause_terms.front();
  for (size_t c = 1; c < clause_terms.size(); ++c) {
    Term next = Term::Var(StrCat("and", c));
    body.push_back(Atom::Relation("AndT", {z, clause_terms[c], next}));
    z = next;
  }
  body.push_back(Atom::Relation("Rb", {z, Term::Var("w")}));
  ConjunctiveQuery q("Qfixed", {Term::Var("w")}, std::move(body));
  RELCOMP_RETURN_NOT_OK(q.Validate(*db_schema));
  out.query = AnyQuery::Cq(std::move(q));
  return out;
}

Result<Database> BuildFixedFamilyWitness(
    const FixedRcqpFamilyInstance& instance, const std::vector<bool>& chi,
    const EncodedRcqpInstance& encoded) {
  if (chi.size() != instance.nx) {
    return Status::InvalidArgument("chi must assign exactly the ∃-block");
  }
  Database db(encoded.db_schema);
  for (size_t i = 0; i < instance.nx; ++i) {
    RELCOMP_RETURN_NOT_OK(db.Insert(
        "AsgnX", Tuple({Value::Int(static_cast<int64_t>(i)),
                        Value::Int(chi[i] ? 1 : 0)})));
  }
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("bool01", "BoolR", &db));
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("or", "OrT", &db));
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("and", "AndT", &db));
  RELCOMP_RETURN_NOT_OK(InsertGadgetTable("not", "NotT", &db));
  RELCOMP_RETURN_NOT_OK(
      db.Insert("Rb", Tuple({Value::Int(1), Value::Int(0)})));
  return db;
}

}  // namespace relcomp
