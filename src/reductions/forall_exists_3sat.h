#ifndef RELCOMP_REDUCTIONS_FORALL_EXISTS_3SAT_H_
#define RELCOMP_REDUCTIONS_FORALL_EXISTS_3SAT_H_

#include "reductions/common.h"
#include "reductions/sat.h"
#include "util/status.h"

namespace relcomp {

/// A ∀X ∃Y 3SAT instance: variables 0..nx-1 are universally
/// quantified, nx..nx+ny-1 existentially.
struct ForallExists3SatInstance {
  CnfFormula formula;
  size_t nx = 0;
  size_t ny = 0;
};

/// The Σ₂ᵖ-hardness reduction of Theorem 3.6(1): encodes a ∀∃3SAT
/// instance as an RCDP(CQ, INDs) instance with *fixed* master data and
/// *fixed* containment constraints (only the query varies with the
/// formula — this is also the Corollary 3.7 fixed-(Dm,V) family).
///
///   D is complete for Q relative to (Dm, V)  iff  ∀X ∃Y φ is true.
///
/// Construction (Boolean-domain columns throughout, which the paper
/// permits — see DESIGN.md):
///   R1 = {0,1}, R2 = OR, R3 = AND, R4 = NOT, R5 = Ic in both D and Dm;
///   R6 = {1} in D but {0,1} in Dm; V = {Ri ⊆ Rmi : i ∈ [1,6]}.
///   Q(x̄) walks the clause circuit with R2/R3/R4, producing the truth
///   value z of φ under (x̄, ȳ), and selects x̄ via R6(z') ∧ R5(z', z, 1):
///   with R6 = {1} only satisfying assignments are returned; extending
///   R6 with {0} returns every assignment.
Result<EncodedRcdpInstance> EncodeForallExists3Sat(
    const ForallExists3SatInstance& instance);

}  // namespace relcomp

#endif  // RELCOMP_REDUCTIONS_FORALL_EXISTS_3SAT_H_
