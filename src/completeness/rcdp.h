#ifndef RELCOMP_COMPLETENESS_RCDP_H_
#define RELCOMP_COMPLETENESS_RCDP_H_

#include <optional>
#include <string>

#include "completeness/active_domain.h"
#include "completeness/valuation_search.h"
#include "constraints/constraint_check.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Three-valued decider outcome. kUnknown is the graceful degradation
/// on budget/cancel exhaustion: the search was sound as far as it got,
/// nothing was decided, and the result carries an ExhaustionInfo plus
/// a SearchCheckpoint to resume from.
enum class Verdict : uint8_t {
  kComplete,
  kIncomplete,
  kUnknown,
};

const char* VerdictToString(Verdict verdict);

/// Per-disjunct execution plan for an incremental re-certification
/// (built by RecertifyRcdp from a verified certificate; see
/// completeness/incremental.h). Skipped disjuncts are ones the
/// certificate proves counterexample-free for the current instance —
/// the decider passes over them without claiming any decision points,
/// so a planned run's numbering equals a from-scratch run resumed past
/// the certified prefix. The caller is responsible for the proof; the
/// decider only executes the plan.
struct RcdpDisjunctPlan {
  /// skip[i] != 0: disjunct i is certified clean — do not search it.
  /// Indexes beyond the vector are searched normally.
  std::vector<uint8_t> skip;
  /// Resume the search of this one disjunct at `resume_rank` instead of
  /// rank 0 (its certified checkpoint rank; every lower rank was
  /// already searched without a counterexample). SIZE_MAX = none.
  size_t resume_rank_disjunct = static_cast<size_t>(-1);
  size_t resume_rank = 0;
};

/// Options for the RCDP decider.
struct RcdpOptions {
  /// Pruned valuation search: summary-first variable ordering, eager
  /// disequality checks, and early rejection of subtrees whose grounded
  /// summary is already in Q(D). Disable for the paper's literal
  /// enumerate-then-check algorithm (bench_ablation).
  bool prune = true;
  /// Use the Corollary 3.4 fast path when V consists of INDs: check
  /// (μ(T_Q), Dm) |= V on the instantiated tableau alone instead of
  /// (D ∪ μ(T_Q), Dm) |= V.
  bool ind_fast_path = true;
  /// Incremental constraint checking: since (D, Dm) |= V and the
  /// constraint languages are monotone, (D ∪ Δ, Dm) |= V is checked by
  /// examining only matches that touch Δ (DeltaConstraintChecker).
  /// Disable to re-evaluate every constraint from scratch per
  /// valuation, as the paper's literal algorithm does (bench_ablation).
  bool delta_constraint_check = true;
  /// Don't-care collapse: a tableau variable that occurs exactly once
  /// in the rows, is absent from the summary and the disequalities,
  /// has an infinite domain, and sits at a column no constraint query
  /// is sensitive to (the CC term there is a single-occurrence
  /// variable in every disjunct of every CC) cannot influence whether
  /// a valuation is a counterexample except through tuple collisions
  /// with D. Its candidates shrink to the column's D-values plus one
  /// dedicated fresh value. Sound and complete; a major pruning lever
  /// for star-shaped queries (bench_ablation).
  bool collapse_dont_care = true;
  /// Probe the relations' lazily built column indexes on bound atom
  /// positions during constraint checks and query evaluation. Disable
  /// to scan every atom, as the pre-index matcher did (bench_ablation).
  bool use_indexes = true;
  /// Probe lazily built composite radix indexes when an atom has two or
  /// more bound positions (one tree descent instead of N per-column
  /// probes plus residual re-checks). Disable to fall back to the
  /// shortest per-column posting list (bench_ablation's `composite`
  /// toggle). No effect when use_indexes is off.
  bool use_composite_indexes = true;
  /// Give every search worker a bump arena for the matcher's per-call
  /// scratch (binding slots, staged id rows, step frames), reset
  /// between candidate checks; block growth is charged to the budget.
  /// Disable to heap-allocate per call (bench_ablation's `arena`
  /// toggle).
  bool use_arena = true;
  /// Stage candidate extensions on a copy-on-write DatabaseOverlay over
  /// D instead of copying D per valuation. Disable for the legacy
  /// copy-per-candidate paths (bench_ablation).
  bool use_overlay = true;
  /// Budget on valuation-search binding steps per disjunct
  /// (0 = unlimited). With num_threads > 1 the budget is one shared
  /// atomic counter across all workers of a disjunct, so the global cap
  /// matches the serial semantics (a parallel run may hit it on a
  /// schedule a serial run would not, but never exceeds it).
  size_t max_bindings = 0;
  /// Worker threads for the valuation search. 0 = hardware_concurrency;
  /// 1 = today's serial path, bit-for-bit. Values > 1 partition the
  /// candidate lists of the first one-or-two enumeration variables into
  /// work units on a std::jthread pool over the frozen relational core;
  /// the verdict, counterexample_delta and new_answer are identical for
  /// every thread count (lowest-work-unit-wins resolution). Requires
  /// use_overlay — the legacy copy-per-candidate paths intern into the
  /// shared ValueInterner and are forced serial.
  size_t num_threads = 0;
  /// Cap on the ∃FO+ → UCQ unfolding.
  size_t max_union_disjuncts = 4096;
  /// Optional shared execution budget (not owned; may be null): a
  /// wall-clock deadline, decision-step cap, tracked-byte cap, and/or
  /// user CancelToken. One decision point is claimed per valuation
  /// binding step, per delta-constraint check, and per chase round —
  /// the identical points in serial and parallel mode — so exhaustion
  /// is deterministic at any num_threads. On exhaustion DecideRcdp
  /// returns OK with verdict kUnknown (see RcdpResult) rather than an
  /// error. When reusing the same budget instance across a resumed
  /// call, Rearm() it first — exhaustion is sticky.
  ExecutionBudget* budget = nullptr;
  /// Resume point from a prior kUnknown result's checkpoint (not
  /// owned; may be null). The call must present the identical problem
  /// instance (enforced via the checkpoint fingerprint); the combined
  /// interrupted + resumed search visits exactly the uninterrupted
  /// sequence of valuations, so the final verdict and evidence are
  /// bit-for-bit equal to an uninterrupted run.
  const SearchCheckpoint* resume = nullptr;
  /// The caller has already verified (D, Dm) |= V for this exact
  /// instance, so skip the decider's full closure check. Set by
  /// RecertifyRcdp, whose targeted recheck (exact under the monotone
  /// constraint languages) covers only the constraints a delta could
  /// have broken instead of re-evaluating all of V over all of D.
  bool assume_partially_closed = false;
  /// Incremental execution plan (not owned; may be null). Unlike
  /// `resume`, which skips a strict prefix, a plan can skip any
  /// certified-clean subset of disjuncts and resume one of them at a
  /// rank. Intended to be driven by RecertifyRcdp, which verifies the
  /// certificate against the instance content before building it; no
  /// fingerprint check happens here.
  const RcdpDisjunctPlan* plan = nullptr;
};

/// The decision, plus the evidence the paper's characterizations yield.
struct RcdpResult {
  /// kComplete / kIncomplete when the search ran to a decision;
  /// kUnknown when the execution budget (or a cancel) stopped it
  /// first. `complete` stays in sync (true iff verdict == kComplete).
  Verdict verdict = Verdict::kComplete;
  bool complete = false;
  /// When incomplete: the extension Δ (tuples not already in D) whose
  /// addition keeps V satisfied but changes the answer, ...
  std::optional<Database> counterexample_delta;
  /// ... and the answer tuple gained: μ(u_Q) ∈ Q(D ∪ Δ) \ Q(D).
  std::optional<Tuple> new_answer;
  /// kIncomplete only: index of the UCQ disjunct whose search produced
  /// the counterexample — recorded so the incremental re-certifier can
  /// reuse the evidence when that disjunct is untouched by a delta.
  size_t counterexample_disjunct = 0;
  /// Search effort (summed over disjuncts); surfaced by the benches.
  ValuationSearchStats stats;
  /// kUnknown only: why the search stopped ...
  ExhaustionInfo exhaustion;
  /// ... and where to pick it up (pass as RcdpOptions::resume, with a
  /// rearmed or fresh budget). Every disjunct below checkpoint.disjunct
  /// — and every rank of disjunct checkpoint.disjunct below
  /// checkpoint.rank — was already searched without a counterexample.
  std::optional<SearchCheckpoint> checkpoint;

  std::string ToString() const;
};

/// Decides RCDP(L_Q, L_C): is D complete for Q relative to (Dm, V)?
///
/// Supported (decidable) cells of the paper's Table I: L_Q in
/// {CQ, UCQ, ∃FO+} and L_C in {INDs, CQ, UCQ, ∃FO+} — Theorem 3.6.
/// For L_Q or L_C in {FO, FP} the problem is undecidable (Theorem 3.1)
/// and Decide returns kUnsupported; see reductions/ and automata/ for
/// the encodings behind those cells.
///
/// Preconditions checked: Q and V validate against the schemas, and D
/// is partially closed, i.e. (D, Dm) |= V.
Result<RcdpResult> DecideRcdp(const AnyQuery& query, const Database& db,
                              const Database& master,
                              const ConstraintSet& constraints,
                              const RcdpOptions& options = RcdpOptions());

/// Outcome of ChaseToCompleteness. The chase never discards completed
/// rounds: on exhaustion `db` holds the partially chased database —
/// every delta applied so far was a genuine counterexample, so it is a
/// strict improvement over the input — plus a checkpoint to continue.
struct ChaseResult {
  /// The chased database: complete for Q when verdict == kComplete,
  /// partially chased otherwise.
  Database db;
  /// kComplete: the chase reached a relatively complete database.
  /// kUnknown: the budget, a cancel, or the max_rounds cap stopped it
  /// first (exhaustion.kind == kRounds for the cap).
  Verdict verdict = Verdict::kComplete;
  /// Chase rounds fully applied (counterexample deltas added).
  size_t rounds = 0;
  ExhaustionInfo exhaustion;
  /// kUnknown only: resume point. Pass it as RcdpOptions::resume to a
  /// follow-up ChaseToCompleteness call whose `db` argument is this
  /// result's `db` (the partially chased database); the continued
  /// chase is bit-for-bit the uninterrupted one.
  std::optional<SearchCheckpoint> checkpoint;

  std::string ToString() const;
};

/// Repeatedly applies counterexamples: while D is incomplete, adds the
/// counterexample Δ to D — the Section 2.3 "guidance for what data
/// should be collected" paradigm; the chase need not terminate in
/// general. One budget decision point is claimed per round. On any
/// exhaustion (budget, cancel, or max_rounds) the result keeps the
/// partially chased database and carries a "chase" checkpoint whose
/// payload embeds the interrupted round's inner RCDP checkpoint.
Result<ChaseResult> ChaseToCompleteness(const AnyQuery& query,
                                        const Database& db,
                                        const Database& master,
                                        const ConstraintSet& constraints,
                                        size_t max_rounds,
                                        const RcdpOptions& options = {});

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_RCDP_H_
