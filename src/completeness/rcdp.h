#ifndef RELCOMP_COMPLETENESS_RCDP_H_
#define RELCOMP_COMPLETENESS_RCDP_H_

#include <optional>
#include <string>

#include "completeness/active_domain.h"
#include "completeness/valuation_search.h"
#include "constraints/constraint_check.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Options for the RCDP decider.
struct RcdpOptions {
  /// Pruned valuation search: summary-first variable ordering, eager
  /// disequality checks, and early rejection of subtrees whose grounded
  /// summary is already in Q(D). Disable for the paper's literal
  /// enumerate-then-check algorithm (bench_ablation).
  bool prune = true;
  /// Use the Corollary 3.4 fast path when V consists of INDs: check
  /// (μ(T_Q), Dm) |= V on the instantiated tableau alone instead of
  /// (D ∪ μ(T_Q), Dm) |= V.
  bool ind_fast_path = true;
  /// Incremental constraint checking: since (D, Dm) |= V and the
  /// constraint languages are monotone, (D ∪ Δ, Dm) |= V is checked by
  /// examining only matches that touch Δ (DeltaConstraintChecker).
  /// Disable to re-evaluate every constraint from scratch per
  /// valuation, as the paper's literal algorithm does (bench_ablation).
  bool delta_constraint_check = true;
  /// Don't-care collapse: a tableau variable that occurs exactly once
  /// in the rows, is absent from the summary and the disequalities,
  /// has an infinite domain, and sits at a column no constraint query
  /// is sensitive to (the CC term there is a single-occurrence
  /// variable in every disjunct of every CC) cannot influence whether
  /// a valuation is a counterexample except through tuple collisions
  /// with D. Its candidates shrink to the column's D-values plus one
  /// dedicated fresh value. Sound and complete; a major pruning lever
  /// for star-shaped queries (bench_ablation).
  bool collapse_dont_care = true;
  /// Probe the relations' lazily built column indexes on bound atom
  /// positions during constraint checks and query evaluation. Disable
  /// to scan every atom, as the pre-index matcher did (bench_ablation).
  bool use_indexes = true;
  /// Stage candidate extensions on a copy-on-write DatabaseOverlay over
  /// D instead of copying D per valuation. Disable for the legacy
  /// copy-per-candidate paths (bench_ablation).
  bool use_overlay = true;
  /// Budget on valuation-search binding steps per disjunct
  /// (0 = unlimited). With num_threads > 1 the budget is one shared
  /// atomic counter across all workers of a disjunct, so the global cap
  /// matches the serial semantics (a parallel run may hit it on a
  /// schedule a serial run would not, but never exceeds it).
  size_t max_bindings = 0;
  /// Worker threads for the valuation search. 0 = hardware_concurrency;
  /// 1 = today's serial path, bit-for-bit. Values > 1 partition the
  /// candidate lists of the first one-or-two enumeration variables into
  /// work units on a std::jthread pool over the frozen relational core;
  /// the verdict, counterexample_delta and new_answer are identical for
  /// every thread count (lowest-work-unit-wins resolution). Requires
  /// use_overlay — the legacy copy-per-candidate paths intern into the
  /// shared ValueInterner and are forced serial.
  size_t num_threads = 0;
  /// Cap on the ∃FO+ → UCQ unfolding.
  size_t max_union_disjuncts = 4096;
};

/// The decision, plus the evidence the paper's characterizations yield.
struct RcdpResult {
  bool complete = false;
  /// When incomplete: the extension Δ (tuples not already in D) whose
  /// addition keeps V satisfied but changes the answer, ...
  std::optional<Database> counterexample_delta;
  /// ... and the answer tuple gained: μ(u_Q) ∈ Q(D ∪ Δ) \ Q(D).
  std::optional<Tuple> new_answer;
  /// Search effort (summed over disjuncts); surfaced by the benches.
  ValuationSearchStats stats;

  std::string ToString() const;
};

/// Decides RCDP(L_Q, L_C): is D complete for Q relative to (Dm, V)?
///
/// Supported (decidable) cells of the paper's Table I: L_Q in
/// {CQ, UCQ, ∃FO+} and L_C in {INDs, CQ, UCQ, ∃FO+} — Theorem 3.6.
/// For L_Q or L_C in {FO, FP} the problem is undecidable (Theorem 3.1)
/// and Decide returns kUnsupported; see reductions/ and automata/ for
/// the encodings behind those cells.
///
/// Preconditions checked: Q and V validate against the schemas, and D
/// is partially closed, i.e. (D, Dm) |= V.
Result<RcdpResult> DecideRcdp(const AnyQuery& query, const Database& db,
                              const Database& master,
                              const ConstraintSet& constraints,
                              const RcdpOptions& options = RcdpOptions());

/// Repeatedly applies counterexamples: while D is incomplete, adds the
/// counterexample Δ to D. Returns the completed database if the chase
/// reaches a complete one within `max_rounds`. This is the Section 2.3
/// "guidance for what data should be collected" paradigm; the chase
/// need not terminate in general (kResourceExhausted).
Result<Database> ChaseToCompleteness(const AnyQuery& query,
                                     const Database& db,
                                     const Database& master,
                                     const ConstraintSet& constraints,
                                     size_t max_rounds,
                                     const RcdpOptions& options = {});

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_RCDP_H_
