#include "completeness/incremental.h"

#include <algorithm>
#include <utility>

#include "constraints/constraint_check.h"
#include "eval/conjunctive_eval.h"
#include "query/union_query.h"
#include "util/str.h"

namespace relcomp {
namespace {

// FNV-1a, folded byte-wise with explicit tags so that ints, strings,
// and field boundaries never alias (i:1 vs s"1", ("ab","c") vs
// ("a","bc")).
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) {
  unsigned char bytes[8];
  for (size_t i = 0; i < 8; ++i) bytes[i] = (v >> (8 * i)) & 0xff;
  return FnvBytes(h, bytes, 8);
}

uint64_t FnvValue(uint64_t h, const Value& v) {
  if (v.is_int()) {
    h = FnvBytes(h, "i", 1);
    return FnvU64(h, static_cast<uint64_t>(v.AsInt()));
  }
  h = FnvBytes(h, "s", 1);
  const std::string& s = v.AsString();
  h = FnvU64(h, s.size());
  return FnvBytes(h, s.data(), s.size());
}

/// XOR-fold of per-tuple fingerprints over one relation's content.
/// XOR is commutative, so the fold is independent of iteration and
/// insertion order and maintainable in O(1) per single-tuple update.
uint64_t XorFoldRelation(std::string_view name, const Relation& rel) {
  uint64_t acc = 0;
  for (const Tuple& t : rel) acc ^= FingerprintTuple(name, t);
  return acc;
}

uint64_t FingerprintAnswer(const Relation& answer) {
  uint64_t acc = XorFoldRelation("$answer", answer);
  return CheckpointFingerprint(
      {FingerprintString("rcdp-answer/1"), acc, answer.size()});
}

/// Fingerprint of the active-domain base constant set, replicating
/// exactly the set ActiveDomain::Build assembles for the decider:
/// UCQ constants ∪ consts(D) ∪ consts(Dm) ∪ per-CC query constants.
/// Equal sets ⇒ identical candidate lists (and identical fresh pool,
/// which is a pure function of this set), hence identical searches.
uint64_t FingerprintAdomBase(const UnionQuery& ucq, const Database& db,
                             const Database& master,
                             const ConstraintSet& constraints) {
  std::set<Value> base = ucq.Constants();
  db.CollectConstants(&base);
  master.CollectConstants(&base);
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    std::set<Value> cc_consts = cc.query().Constants();
    base.insert(cc_consts.begin(), cc_consts.end());
  }
  uint64_t h = kFnvOffset;
  h = FnvBytes(h, "rcdp-adom/1", 11);
  h = FnvU64(h, base.size());
  for (const Value& v : base) h = FnvValue(h, v);
  return h;
}

bool DecidableLanguage(QueryLanguage lang) {
  return lang == QueryLanguage::kCq || lang == QueryLanguage::kUcq ||
         lang == QueryLanguage::kPositive;
}

/// Mirrors the decider's language gate so the serve-from-certificate
/// fast paths reject undecidable inputs the same way DecideRcdp would.
Status GateLanguages(const AnyQuery& query, const ConstraintSet& constraints) {
  if (!DecidableLanguage(query.language())) {
    return Status::Unsupported(StrCat(
        "RCDP is undecidable for L_Q = ",
        QueryLanguageToString(query.language()),
        " (Theorem 3.1); see reductions/ and automata/ for the encodings"));
  }
  if (!DecidableLanguage(constraints.Language())) {
    return Status::Unsupported(StrCat(
        "RCDP is undecidable for L_C = ",
        QueryLanguageToString(constraints.Language()), " (Theorem 3.1)"));
  }
  return Status::OK();
}

bool Intersects(const std::vector<std::string>& sorted_names,
                const std::set<std::string>& set) {
  for (const std::string& n : sorted_names) {
    if (set.count(n) > 0) return true;
  }
  return false;
}

/// --- relcomp-cert/1 text codec --------------------------------------

void PutStr(std::string* out, std::string_view s) {
  out->append(StrCat(s.size(), ":"));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  if (v.is_int()) {
    out->append(StrCat("i", v.AsInt()));
  } else {
    out->push_back('s');
    PutStr(out, v.AsString());
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  out->append(StrCat(t.arity()));
  for (size_t i = 0; i < t.arity(); ++i) {
    out->push_back(' ');
    PutValue(out, t[i]);
  }
}

/// Cursor over untrusted certificate text: every read is bounds- and
/// format-checked, so a corrupted or adversarial store entry yields
/// kInvalidArgument instead of UB.
class CertReader {
 public:
  explicit CertReader(std::string_view text) : text_(text) {}

  Status Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Malformed(StrCat("expected '", std::string(1, c), "' at byte ",
                              pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Result<uint64_t> ReadU64() {
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Malformed(StrCat("expected a number at byte ", pos_));
    }
    uint64_t v = 0;
    size_t digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      if (++digits > 20) return Malformed("number too long");
      uint64_t d = static_cast<uint64_t>(text_[pos_] - '0');
      if (v > (UINT64_MAX - d) / 10) return Malformed("number overflows");
      v = v * 10 + d;
      ++pos_;
    }
    return v;
  }

  Result<int64_t> ReadI64() {
    bool neg = pos_ < text_.size() && text_[pos_] == '-';
    if (neg) ++pos_;
    RELCOMP_ASSIGN_OR_RETURN(uint64_t mag, ReadU64());
    if (neg) {
      if (mag > 9223372036854775808ull) return Malformed("int underflows");
      return static_cast<int64_t>(0ull - mag);
    }
    if (mag > static_cast<uint64_t>(INT64_MAX)) {
      return Malformed("int overflows");
    }
    return static_cast<int64_t>(mag);
  }

  Result<std::string_view> ReadStr() {
    RELCOMP_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
    RELCOMP_RETURN_NOT_OK(Expect(':'));
    if (len > text_.size() - pos_) {
      return Malformed(StrCat("string length ", len, " runs past the end"));
    }
    std::string_view s = text_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  Result<Value> ReadValue() {
    if (pos_ >= text_.size()) return Malformed("truncated value");
    char tag = text_[pos_++];
    if (tag == 'i') {
      RELCOMP_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value::Int(v);
    }
    if (tag == 's') {
      RELCOMP_ASSIGN_OR_RETURN(std::string_view s, ReadStr());
      return Value::Str(s);
    }
    return Malformed(StrCat("unknown value tag at byte ", pos_ - 1));
  }

  Result<Tuple> ReadTuple() {
    RELCOMP_ASSIGN_OR_RETURN(uint64_t arity, ReadU64());
    if (arity > 4096) return Malformed("tuple arity implausibly large");
    std::vector<Value> vals;
    vals.reserve(arity);
    for (uint64_t i = 0; i < arity; ++i) {
      RELCOMP_RETURN_NOT_OK(Expect(' '));
      RELCOMP_ASSIGN_OR_RETURN(Value v, ReadValue());
      vals.push_back(std::move(v));
    }
    return Tuple(std::move(vals));
  }

  Result<char> ReadChar() {
    if (pos_ >= text_.size()) return Malformed("truncated");
    return text_[pos_++];
  }

  Status ExpectEnd() {
    if (pos_ != text_.size()) {
      return Malformed(StrCat("trailing bytes at ", pos_));
    }
    return Status::OK();
  }

  static Status Malformed(std::string_view why) {
    return Status::InvalidArgument(StrCat("malformed certificate: ", why));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

char VerdictCode(Verdict v) {
  switch (v) {
    case Verdict::kComplete:
      return 'C';
    case Verdict::kIncomplete:
      return 'I';
    case Verdict::kUnknown:
      return 'U';
  }
  return '?';
}

/// --- Certificate assembly -------------------------------------------

struct InstanceFps {
  uint64_t instance = 0;
  uint64_t adom = 0;
  uint64_t answer = 0;
  uint64_t options = 0;
};

Result<RcdpCertificate> AssembleCertificate(const InstanceFps& fps,
                                            size_t num_disjuncts,
                                            const RcdpResult& result,
                                            const Database& db) {
  RcdpCertificate cert;
  cert.instance_fp = fps.instance;
  cert.adom_fp = fps.adom;
  cert.answer_fp = fps.answer;
  cert.options_fp = fps.options;
  cert.num_disjuncts = num_disjuncts;
  cert.verdict = result.verdict;
  if (result.verdict == Verdict::kIncomplete) {
    if (!result.counterexample_delta.has_value() ||
        !result.new_answer.has_value()) {
      return Status::Internal(
          "incomplete verdict carries no counterexample evidence");
    }
    cert.cex_disjunct = result.counterexample_disjunct;
    for (const std::string& name : db.schema().relation_names()) {
      for (const Tuple& t : result.counterexample_delta->Get(name)) {
        cert.cex_delta.emplace_back(name, t);
      }
    }
    cert.cex_answer = *result.new_answer;
  } else if (result.verdict == Verdict::kUnknown) {
    if (!result.checkpoint.has_value()) {
      return Status::Internal("unknown verdict carries no checkpoint");
    }
    cert.checkpoint = *result.checkpoint;
  }
  return cert;
}

/// Rebuilds the stored counterexample evidence exactly as the search
/// produced it: a delta Database over the instance's schema (fresh
/// interner, content-based ToString) plus the gained answer tuple.
Result<RcdpResult> ServeIncomplete(const RcdpCertificate& cert,
                                   const Database& db) {
  if (!cert.cex_answer.has_value()) {
    return Status::InvalidArgument(
        "malformed certificate: incomplete verdict without evidence");
  }
  RcdpResult result;
  result.verdict = Verdict::kIncomplete;
  result.complete = false;
  Database delta(db.schema_ptr());
  for (const auto& [relation, tuple] : cert.cex_delta) {
    if (!db.schema().HasRelation(relation)) {
      return Status::InvalidArgument(
          StrCat("malformed certificate: counterexample relation ", relation,
                 " is not in the schema"));
    }
    delta.InsertUnchecked(relation, tuple);
  }
  result.counterexample_delta = std::move(delta);
  result.new_answer = *cert.cex_answer;
  result.counterexample_disjunct = cert.cex_disjunct;
  return result;
}

}  // namespace

/// --- Fingerprints ---------------------------------------------------

uint64_t FingerprintTuple(std::string_view relation, const Tuple& tuple) {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, relation.size());
  h = FnvBytes(h, relation.data(), relation.size());
  h = FnvU64(h, tuple.arity());
  for (size_t i = 0; i < tuple.arity(); ++i) h = FnvValue(h, tuple[i]);
  return h;
}

uint64_t FingerprintDatabase(const Database& db) {
  uint64_t acc = 0;
  for (const std::string& name : db.schema().relation_names()) {
    acc ^= XorFoldRelation(name, db.Get(name));
  }
  return CheckpointFingerprint(
      {FingerprintString("rcdp-db/1"), acc, db.TotalTuples()});
}

uint64_t FingerprintRcdpInstance(const AnyQuery& query, const Database& db,
                                 const Database& master,
                                 const ConstraintSet& constraints) {
  return CheckpointFingerprint(
      {FingerprintString("rcdp-inst/1"), FingerprintString(query.ToString()),
       FingerprintString(constraints.ToString()), FingerprintDatabase(db),
       FingerprintDatabase(master)});
}

uint64_t FingerprintRcdpOptions(const RcdpOptions& options) {
  uint64_t flags = 0;
  flags |= options.prune ? 1u : 0;
  flags |= options.ind_fast_path ? 2u : 0;
  flags |= options.delta_constraint_check ? 4u : 0;
  flags |= options.collapse_dont_care ? 8u : 0;
  return CheckpointFingerprint({FingerprintString("rcdp-opts/1"), flags,
                                options.max_bindings,
                                options.max_union_disjuncts});
}

/// --- Dependency graph -----------------------------------------------

Result<RcdpDependencyGraph> RcdpDependencyGraph::Build(
    const AnyQuery& query, const ConstraintSet& constraints,
    size_t max_union_disjuncts) {
  RcdpDependencyGraph graph;
  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                           query.ToUnion(max_union_disjuncts));
  graph.disjunct_relations.reserve(ucq.disjuncts().size());
  for (const ConjunctiveQuery& cq : ucq.disjuncts()) {
    CompiledCq compiled(cq);
    graph.disjunct_relations.push_back(compiled.body_relations());
  }
  graph.constraint_deps.reserve(constraints.constraints().size());
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    ConstraintDeps dep;
    dep.empty_target = cc.has_empty_target();
    if (!dep.empty_target) dep.master_relation = cc.master_relation();
    RELCOMP_ASSIGN_OR_RETURN(UnionQuery cc_ucq,
                             cc.query().ToUnion(max_union_disjuncts));
    std::set<std::string> rels;
    for (const ConjunctiveQuery& cq : cc_ucq.disjuncts()) {
      CompiledCq compiled(cq);
      rels.insert(compiled.body_relations().begin(),
                  compiled.body_relations().end());
    }
    dep.body_relations.assign(rels.begin(), rels.end());
    graph.constraint_deps.push_back(std::move(dep));
  }
  return graph;
}

std::string RcdpDependencyGraph::ToString() const {
  auto join = [](const std::vector<std::string>& names) {
    std::string out = "{";
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += names[i];
    }
    out.push_back('}');
    return out;
  };
  std::string out = "Q:";
  for (size_t i = 0; i < disjunct_relations.size(); ++i) {
    out += StrCat(" d", i, "->", join(disjunct_relations[i]));
  }
  out += "; V:";
  for (size_t i = 0; i < constraint_deps.size(); ++i) {
    const ConstraintDeps& dep = constraint_deps[i];
    out += StrCat(" cc", i, " ", join(dep.body_relations), " -> ",
                  dep.empty_target ? "(empty)" : dep.master_relation);
  }
  return out;
}

/// --- Certificates ---------------------------------------------------

std::string RcdpCertificate::Serialize() const {
  std::string out = StrCat("relcomp-cert/1 ", instance_fp, " ", adom_fp, " ",
                           answer_fp, " ", options_fp, " ", num_disjuncts,
                           " ", std::string(1, VerdictCode(verdict)));
  if (verdict == Verdict::kIncomplete) {
    out += StrCat(" ", cex_disjunct, " ");
    if (cex_answer.has_value()) {
      out.push_back('A');
      out.push_back(' ');
      PutTuple(&out, *cex_answer);
    } else {
      out.push_back('-');
    }
    out += StrCat(" ", cex_delta.size());
    for (const auto& [relation, tuple] : cex_delta) {
      out.push_back(' ');
      PutStr(&out, relation);
      out.push_back(' ');
      PutTuple(&out, tuple);
    }
  } else if (verdict == Verdict::kUnknown && checkpoint.has_value()) {
    out.push_back(' ');
    PutStr(&out, checkpoint->Serialize());
  }
  return out;
}

Result<RcdpCertificate> RcdpCertificate::Deserialize(std::string_view text) {
  constexpr std::string_view kMagic = "relcomp-cert/1 ";
  if (text.substr(0, kMagic.size()) != kMagic) {
    return CertReader::Malformed("bad magic");
  }
  CertReader r(text.substr(kMagic.size()));
  RcdpCertificate cert;
  RELCOMP_ASSIGN_OR_RETURN(cert.instance_fp, r.ReadU64());
  RELCOMP_RETURN_NOT_OK(r.Expect(' '));
  RELCOMP_ASSIGN_OR_RETURN(cert.adom_fp, r.ReadU64());
  RELCOMP_RETURN_NOT_OK(r.Expect(' '));
  RELCOMP_ASSIGN_OR_RETURN(cert.answer_fp, r.ReadU64());
  RELCOMP_RETURN_NOT_OK(r.Expect(' '));
  RELCOMP_ASSIGN_OR_RETURN(cert.options_fp, r.ReadU64());
  RELCOMP_RETURN_NOT_OK(r.Expect(' '));
  RELCOMP_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  if (n > 1u << 20) return CertReader::Malformed("disjunct count too large");
  cert.num_disjuncts = n;
  RELCOMP_RETURN_NOT_OK(r.Expect(' '));
  RELCOMP_ASSIGN_OR_RETURN(char code, r.ReadChar());
  switch (code) {
    case 'C': {
      cert.verdict = Verdict::kComplete;
      RELCOMP_RETURN_NOT_OK(r.ExpectEnd());
      return cert;
    }
    case 'I': {
      cert.verdict = Verdict::kIncomplete;
      RELCOMP_RETURN_NOT_OK(r.Expect(' '));
      RELCOMP_ASSIGN_OR_RETURN(uint64_t cex, r.ReadU64());
      if (cex >= n) {
        return CertReader::Malformed(
            "counterexample disjunct out of range");
      }
      cert.cex_disjunct = cex;
      RELCOMP_RETURN_NOT_OK(r.Expect(' '));
      RELCOMP_ASSIGN_OR_RETURN(char answer_tag, r.ReadChar());
      if (answer_tag == 'A') {
        RELCOMP_RETURN_NOT_OK(r.Expect(' '));
        RELCOMP_ASSIGN_OR_RETURN(Tuple answer, r.ReadTuple());
        cert.cex_answer = std::move(answer);
      } else if (answer_tag != '-') {
        return CertReader::Malformed("bad answer tag");
      }
      RELCOMP_RETURN_NOT_OK(r.Expect(' '));
      RELCOMP_ASSIGN_OR_RETURN(uint64_t count, r.ReadU64());
      if (count > 1u << 20) {
        return CertReader::Malformed("delta size implausibly large");
      }
      cert.cex_delta.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        RELCOMP_RETURN_NOT_OK(r.Expect(' '));
        RELCOMP_ASSIGN_OR_RETURN(std::string_view relation, r.ReadStr());
        RELCOMP_RETURN_NOT_OK(r.Expect(' '));
        RELCOMP_ASSIGN_OR_RETURN(Tuple tuple, r.ReadTuple());
        cert.cex_delta.emplace_back(std::string(relation),
                                    std::move(tuple));
      }
      RELCOMP_RETURN_NOT_OK(r.ExpectEnd());
      return cert;
    }
    case 'U': {
      cert.verdict = Verdict::kUnknown;
      RELCOMP_RETURN_NOT_OK(r.Expect(' '));
      RELCOMP_ASSIGN_OR_RETURN(std::string_view serialized, r.ReadStr());
      RELCOMP_ASSIGN_OR_RETURN(SearchCheckpoint ckpt,
                               SearchCheckpoint::Deserialize(serialized));
      cert.checkpoint = std::move(ckpt);
      RELCOMP_RETURN_NOT_OK(r.ExpectEnd());
      return cert;
    }
    default:
      return CertReader::Malformed("unknown verdict code");
  }
}

bool RcdpCertificate::operator==(const RcdpCertificate& other) const {
  return Serialize() == other.Serialize();
}

std::string RcdpCertificate::ToString() const { return Serialize(); }

/// --- Certify / Recertify --------------------------------------------

namespace {

Result<InstanceFps> ComputeFps(const AnyQuery& query, const UnionQuery& ucq,
                               const Database& db, const Database& master,
                               const ConstraintSet& constraints,
                               const RcdpOptions& options) {
  InstanceFps fps;
  fps.instance = FingerprintRcdpInstance(query, db, master, constraints);
  fps.adom = FingerprintAdomBase(ucq, db, master, constraints);
  ConjunctiveEvalOptions eval;
  eval.use_indexes = options.use_indexes;
  eval.use_composite_indexes = options.use_composite_indexes;
  RELCOMP_ASSIGN_OR_RETURN(Relation answer, EvalUnion(ucq, db, eval));
  fps.answer = FingerprintAnswer(answer);
  fps.options = FingerprintRcdpOptions(options);
  return fps;
}

}  // namespace

Result<RcdpCertified> CertifyRcdp(const AnyQuery& query, const Database& db,
                                  const Database& master,
                                  const ConstraintSet& constraints,
                                  const RcdpOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(RcdpResult result,
                           DecideRcdp(query, db, master, constraints,
                                      options));
  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                           query.ToUnion(options.max_union_disjuncts));
  RELCOMP_ASSIGN_OR_RETURN(
      InstanceFps fps, ComputeFps(query, ucq, db, master, constraints,
                                  options));
  RELCOMP_ASSIGN_OR_RETURN(
      RcdpCertificate cert,
      AssembleCertificate(fps, ucq.disjuncts().size(), result, db));
  return RcdpCertified{std::move(result), std::move(cert)};
}

Result<RcdpCertified> RecertifyRcdp(const AnyQuery& query, const Database& db,
                                    const Database& master,
                                    const ConstraintSet& constraints,
                                    const RcdpCertificate& certificate,
                                    const DeltaApplyReport& report,
                                    const RcdpOptions& options) {
  RELCOMP_RETURN_NOT_OK(GateLanguages(query, constraints));
  RELCOMP_RETURN_NOT_OK(query.Validate(db.schema()));
  RELCOMP_RETURN_NOT_OK(constraints.Validate(db.schema(), master.schema()));

  // A certificate proves statements about one (options, instance)
  // pair; if the semantic options moved, nothing transfers.
  if (FingerprintRcdpOptions(options) != certificate.options_fp) {
    return CertifyRcdp(query, db, master, constraints, options);
  }

  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                           query.ToUnion(options.max_union_disjuncts));
  const size_t n = ucq.disjuncts().size();
  if (n != certificate.num_disjuncts) {
    return CertifyRcdp(query, db, master, constraints, options);
  }

  RELCOMP_ASSIGN_OR_RETURN(
      RcdpDependencyGraph graph,
      RcdpDependencyGraph::Build(query, constraints,
                                 options.max_union_disjuncts));

  InstanceFps fps;
  fps.options = certificate.options_fp;
  fps.instance = FingerprintRcdpInstance(query, db, master, constraints);
  const bool content_identical = fps.instance == certificate.instance_fp;

  std::vector<uint8_t> dirty(n, 0);
  if (content_identical) {
    // The post-update content equals the certified content (e.g. the
    // batch canceled itself out, or the report is an empty resume
    // request): closure held then, every per-disjunct statement still
    // holds, and the expensive fingerprints carry over unchanged.
    fps.adom = certificate.adom_fp;
    fps.answer = certificate.answer_fp;
  } else {
    // Targeted closure recheck. The constraint languages are monotone,
    // so (D, Dm) |= V can only newly fail where a CC body gained
    // potential matches (a D-relation it reads took an insert) or its
    // target projection lost tuples (a Dm-delete on its master
    // relation); D-deletes and Dm-inserts never break closure.
    for (size_t c = 0; c < graph.constraint_deps.size(); ++c) {
      const RcdpDependencyGraph::ConstraintDeps& dep =
          graph.constraint_deps[c];
      bool risky = Intersects(dep.body_relations, report.db_inserted);
      if (!risky && !dep.empty_target &&
          report.master_deleted.count(dep.master_relation) > 0) {
        risky = true;
      }
      if (!risky) continue;
      RELCOMP_ASSIGN_OR_RETURN(
          bool ok,
          CheckConstraint(constraints.constraints()[c], db, master));
      if (!ok) {
        return Status::InvalidArgument(
            "D is not partially closed: (D, Dm) does not satisfy V");
      }
    }

    fps.adom = FingerprintAdomBase(ucq, db, master, constraints);
    ConjunctiveEvalOptions eval;
    eval.use_indexes = options.use_indexes;
    eval.use_composite_indexes = options.use_composite_indexes;
    RELCOMP_ASSIGN_OR_RETURN(Relation answer, EvalUnion(ucq, db, eval));
    fps.answer = FingerprintAnswer(answer);

    std::set<std::string> changed_db = report.db_inserted;
    changed_db.insert(report.db_deleted.begin(), report.db_deleted.end());
    std::set<std::string> changed_dm = report.master_inserted;
    changed_dm.insert(report.master_deleted.begin(),
                      report.master_deleted.end());

    // Global invalidation: a moved active domain changes every
    // disjunct's candidate lists; a moved answer changes the
    // "new answer gained" test everywhere; a touched constraint body
    // or target changes what extensions are admissible everywhere.
    bool global_dirty =
        fps.adom != certificate.adom_fp ||
        fps.answer != certificate.answer_fp;
    for (size_t c = 0; !global_dirty && c < graph.constraint_deps.size();
         ++c) {
      const RcdpDependencyGraph::ConstraintDeps& dep =
          graph.constraint_deps[c];
      if (Intersects(dep.body_relations, changed_db) ||
          (!dep.empty_target &&
           changed_dm.count(dep.master_relation) > 0)) {
        global_dirty = true;
      }
    }
    if (global_dirty) {
      RcdpOptions full = options;
      full.plan = nullptr;
      full.resume = nullptr;
      // The targeted recheck above is exact, so the from-scratch run
      // can skip its full closure pass.
      full.assume_partially_closed = true;
      return CertifyRcdp(query, db, master, constraints, full);
    }

    for (size_t i = 0; i < n; ++i) {
      dirty[i] = Intersects(graph.disjunct_relations[i], changed_db) ? 1 : 0;
    }
  }

  RcdpOptions planned = options;
  planned.resume = nullptr;
  planned.assume_partially_closed = true;
  RcdpDisjunctPlan plan;
  plan.skip.assign(n, 0);
  planned.plan = &plan;

  auto run_planned = [&]() -> Result<RcdpCertified> {
    RELCOMP_ASSIGN_OR_RETURN(
        RcdpResult result,
        DecideRcdp(query, db, master, constraints, planned));
    RELCOMP_ASSIGN_OR_RETURN(RcdpCertificate cert,
                             AssembleCertificate(fps, n, result, db));
    return RcdpCertified{std::move(result), std::move(cert)};
  };

  switch (certificate.verdict) {
    case Verdict::kComplete: {
      bool any_dirty = false;
      for (size_t i = 0; i < n; ++i) {
        plan.skip[i] = dirty[i] ? 0 : 1;
        any_dirty = any_dirty || dirty[i] != 0;
      }
      if (!any_dirty) {
        // Every disjunct certified counterexample-free and untouched:
        // the verdict re-serves with zero search.
        RcdpResult result;
        result.verdict = Verdict::kComplete;
        result.complete = true;
        RELCOMP_ASSIGN_OR_RETURN(RcdpCertificate cert,
                                 AssembleCertificate(fps, n, result, db));
        return RcdpCertified{std::move(result), std::move(cert)};
      }
      return run_planned();
    }

    case Verdict::kIncomplete: {
      const size_t cex = certificate.cex_disjunct;
      if (cex >= n) {
        return CertifyRcdp(query, db, master, constraints, options);
      }
      bool dirty_before = false;
      for (size_t i = 0; i < cex; ++i) {
        plan.skip[i] = dirty[i] ? 0 : 1;
        dirty_before = dirty_before || dirty[i] != 0;
      }
      if (!dirty[cex] && !dirty_before) {
        // The counterexample's disjunct and everything searched before
        // it are untouched: the stored evidence is still the first
        // counterexample a from-scratch run would find.
        RELCOMP_ASSIGN_OR_RETURN(RcdpResult result,
                                 ServeIncomplete(certificate, db));
        RELCOMP_ASSIGN_OR_RETURN(RcdpCertificate cert,
                                 AssembleCertificate(fps, n, result, db));
        return RcdpCertified{std::move(result), std::move(cert)};
      }
      if (!dirty[cex]) {
        // Only disjuncts before the counterexample moved: search just
        // those. An earlier counterexample (or exhaustion) among them
        // takes precedence; otherwise the stored evidence stands.
        for (size_t i = cex; i < n; ++i) plan.skip[i] = 1;
        RELCOMP_ASSIGN_OR_RETURN(
            RcdpResult result,
            DecideRcdp(query, db, master, constraints, planned));
        if (result.verdict == Verdict::kComplete) {
          RELCOMP_ASSIGN_OR_RETURN(RcdpResult served,
                                   ServeIncomplete(certificate, db));
          served.stats = result.stats;
          RELCOMP_ASSIGN_OR_RETURN(RcdpCertificate cert,
                                   AssembleCertificate(fps, n, served, db));
          return RcdpCertified{std::move(served), std::move(cert)};
        }
        RELCOMP_ASSIGN_OR_RETURN(RcdpCertificate cert,
                                 AssembleCertificate(fps, n, result, db));
        return RcdpCertified{std::move(result), std::move(cert)};
      }
      // The counterexample's own disjunct moved: re-run it and, since
      // the original search stopped there, everything after it too.
      return run_planned();
    }

    case Verdict::kUnknown: {
      if (!certificate.checkpoint.has_value() ||
          certificate.checkpoint->decider != "rcdp" ||
          certificate.checkpoint->disjunct >= n) {
        return CertifyRcdp(query, db, master, constraints, options);
      }
      const size_t frontier = certificate.checkpoint->disjunct;
      for (size_t i = 0; i < frontier; ++i) {
        plan.skip[i] = dirty[i] ? 0 : 1;
      }
      if (!dirty[frontier]) {
        // The interrupted disjunct is untouched: every rank below the
        // checkpoint is still certified counterexample-free, so the
        // search resumes exactly where it stopped.
        plan.resume_rank_disjunct = frontier;
        plan.resume_rank = certificate.checkpoint->rank;
      }
      return run_planned();
    }
  }
  return Status::Internal("unhandled certificate verdict");
}

}  // namespace relcomp
