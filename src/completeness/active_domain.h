#ifndef RELCOMP_COMPLETENESS_ACTIVE_DOMAIN_H_
#define RELCOMP_COMPLETENESS_ACTIVE_DOMAIN_H_

#include <set>
#include <vector>

#include "constraints/containment_constraint.h"
#include "relational/database.h"
#include "relational/domain.h"
#include "util/status.h"

namespace relcomp {

/// The paper's Adom (Section 3.2): the constants occurring in D, Dm, Q
/// and V, extended with a set `New` of distinct fresh values — one per
/// variable of the query tableau and of the constraint tableaux. The
/// small-model property (Prop 3.3 / Prop 4.2) guarantees that valuation
/// searches restricted to Adom are exact.
///
/// For a variable y, the candidate set adom(y) is:
///   * the full finite domain d_f when y ranges over a finite domain
///     (the paper requires d_f ⊆ Adom in that case), and
///   * base ∪ fresh otherwise.
class ActiveDomain {
 public:
  /// Collects constants from the given sources and mints `num_fresh`
  /// fresh string values guaranteed to be distinct from all of them.
  static ActiveDomain Build(const std::set<Value>& base_constants,
                            size_t num_fresh);

  /// Convenience: base constants from D ∪ Dm ∪ Q-constants ∪ V.
  static ActiveDomain Build(const Database& db, const Database& master,
                            const std::set<Value>& query_constants,
                            const ConstraintSet& constraints,
                            size_t num_fresh);

  /// The base constants (paper's Adom without New), sorted.
  const std::vector<Value>& base() const { return base_; }
  /// The fresh values (paper's New).
  const std::vector<Value>& fresh() const { return fresh_; }

  /// True iff `v` is one of the fresh values.
  bool IsFresh(const Value& v) const;

  /// Candidate values for a variable over `domain` (see class comment).
  std::vector<Value> CandidatesFor(const Domain& domain) const;

 private:
  std::vector<Value> base_;
  std::vector<Value> fresh_;
  std::set<Value> fresh_set_;
};

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_ACTIVE_DOMAIN_H_
