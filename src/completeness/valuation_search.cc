#include "completeness/valuation_search.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "util/str.h"

namespace relcomp {

ValuationEnumerator::ValuationEnumerator(const TableauQuery* tableau,
                                         const ActiveDomain* adom,
                                         Options options)
    : tableau_(tableau), adom_(adom), options_(options) {
  // Variable order: summary variables first in pruned mode (callers
  // prune on the grounded summary), declaration order otherwise.
  std::set<std::string> summary_vars;
  for (const Term& t : tableau_->summary()) {
    if (t.is_variable()) summary_vars.insert(t.var());
  }
  if (options_.pruned) {
    // Summary variables first (so summary-based pruning fires at the
    // top of the search tree) ...
    std::set<std::string> placed;
    for (const std::string& v : tableau_->variables()) {
      if (summary_vars.count(v) > 0) {
        order_.push_back(v);
        placed.insert(v);
      }
    }
    // ... then greedily complete tableau rows as early as possible, so
    // callers can prune on partially instantiated rows.
    while (placed.size() < tableau_->variables().size()) {
      std::string best;
      size_t best_score = SIZE_MAX;
      for (const std::string& v : tableau_->variables()) {
        if (placed.count(v) > 0) continue;
        // Score: the fewest unbound variables of any row containing v
        // (binding v helps finish that row soonest).
        size_t score = SIZE_MAX - 1;
        for (const TableauRow& row : tableau_->rows()) {
          std::set<std::string> row_vars;
          for (const Term& t : row.terms) {
            if (t.is_variable()) row_vars.insert(t.var());
          }
          if (row_vars.count(v) == 0) continue;
          size_t unbound = 0;
          for (const std::string& rv : row_vars) {
            if (placed.count(rv) == 0) ++unbound;
          }
          score = std::min(score, unbound);
        }
        if (score < best_score) {
          best_score = score;
          best = v;
        }
      }
      order_.push_back(best);
      placed.insert(best);
    }
  } else {
    order_ = tableau_->variables();
  }
  candidates_.reserve(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    if (options_.candidate_overrides != nullptr) {
      auto it = options_.candidate_overrides->find(order_[i]);
      if (it != options_.candidate_overrides->end()) {
        candidates_.push_back(it->second);
        continue;
      }
    }
    std::shared_ptr<const Domain> domain =
        tableau_->VariableDomain(order_[i]);
    if (options_.symmetry_break_fresh && domain->is_infinite()) {
      // Base constants plus only the first i+1 fresh values (see the
      // Options comment for why this loses no valuations).
      std::vector<Value> candidates = adom_->base();
      size_t limit = std::min(i + 1, adom_->fresh().size());
      candidates.insert(candidates.end(), adom_->fresh().begin(),
                        adom_->fresh().begin() + limit);
      candidates_.push_back(std::move(candidates));
    } else {
      candidates_.push_back(
          adom_->CandidatesFor(*domain));
    }
  }
  // Precompute, per position, the disequalities that become fully bound
  // there (pruned mode checks them eagerly).
  std::map<std::string, size_t> position;
  for (size_t i = 0; i < order_.size(); ++i) position[order_[i]] = i;
  disequalities_at_.resize(order_.size());
  const auto& diseqs = tableau_->disequalities();
  for (size_t d = 0; d < diseqs.size(); ++d) {
    size_t last = 0;
    bool has_var = false;
    for (const Term* t : {&diseqs[d].first, &diseqs[d].second}) {
      if (t->is_variable()) {
        has_var = true;
        last = std::max(last, position[t->var()]);
      }
    }
    if (has_var) disequalities_at_[last].push_back(d);
  }
}

bool ValuationEnumerator::Recurse(
    size_t index, Bindings* bindings,
    const std::function<bool(const Bindings&)>& should_prune,
    const std::function<bool(const Bindings&)>& on_total, bool* stopped) {
  if (index == order_.size()) {
    if (!options_.pruned && !tableau_->IsValidValuation(*bindings)) {
      return true;
    }
    ++stats_.totals_delivered;
    if (!on_total(*bindings)) {
      *stopped = true;
      return false;
    }
    return true;
  }
  for (const Value& v : candidates_[index]) {
    ++stats_.bindings_tried;
    if (options_.max_bindings > 0 &&
        stats_.bindings_tried > options_.max_bindings) {
      failure_ = Status::ResourceExhausted(
          StrCat("valuation search exceeded ", options_.max_bindings,
                 " binding steps"));
      *stopped = true;
      return false;
    }
    bindings->Set(order_[index], v);
    bool ok = true;
    if (options_.pruned) {
      for (size_t d : disequalities_at_[index]) {
        const auto& [lhs, rhs] = tableau_->disequalities()[d];
        std::optional<Value> lv = bindings->Resolve(lhs);
        std::optional<Value> rv = bindings->Resolve(rhs);
        if (lv.has_value() && rv.has_value() && *lv == *rv) {
          ok = false;
          break;
        }
      }
      if (ok && should_prune != nullptr && should_prune(*bindings)) {
        ok = false;
      }
      if (!ok) ++stats_.prunes;
    }
    if (ok && !Recurse(index + 1, bindings, should_prune, on_total, stopped)) {
      bindings->Unset(order_[index]);
      return false;
    }
  }
  bindings->Unset(order_[index]);
  return true;
}

Status ValuationEnumerator::Enumerate(
    const std::function<bool(const Bindings&)>& should_prune,
    const std::function<bool(const Bindings&)>& on_total) {
  if (!tableau_->satisfiable()) return Status::OK();
  failure_ = Status::OK();
  Bindings bindings;
  bool stopped = false;
  Recurse(0, &bindings, should_prune, on_total, &stopped);
  return failure_;
}

}  // namespace relcomp
