#include "completeness/valuation_search.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <set>
#include <thread>

#include "util/str.h"

namespace relcomp {

ValuationEnumerator::ValuationEnumerator(const TableauQuery* tableau,
                                         const ActiveDomain* adom,
                                         Options options)
    : tableau_(tableau), adom_(adom), options_(options) {
  // Variable order: summary variables first in pruned mode (callers
  // prune on the grounded summary), declaration order otherwise.
  std::set<std::string> summary_vars;
  for (const Term& t : tableau_->summary()) {
    if (t.is_variable()) summary_vars.insert(t.var());
  }
  if (options_.pruned) {
    // Summary variables first (so summary-based pruning fires at the
    // top of the search tree) ...
    std::set<std::string> placed;
    for (const std::string& v : tableau_->variables()) {
      if (summary_vars.count(v) > 0) {
        order_.push_back(v);
        placed.insert(v);
      }
    }
    // ... then greedily complete tableau rows as early as possible, so
    // callers can prune on partially instantiated rows.
    while (placed.size() < tableau_->variables().size()) {
      std::string best;
      size_t best_score = SIZE_MAX;
      for (const std::string& v : tableau_->variables()) {
        if (placed.count(v) > 0) continue;
        // Score: the fewest unbound variables of any row containing v
        // (binding v helps finish that row soonest).
        size_t score = SIZE_MAX - 1;
        for (const TableauRow& row : tableau_->rows()) {
          std::set<std::string> row_vars;
          for (const Term& t : row.terms) {
            if (t.is_variable()) row_vars.insert(t.var());
          }
          if (row_vars.count(v) == 0) continue;
          size_t unbound = 0;
          for (const std::string& rv : row_vars) {
            if (placed.count(rv) == 0) ++unbound;
          }
          score = std::min(score, unbound);
        }
        if (score < best_score) {
          best_score = score;
          best = v;
        }
      }
      order_.push_back(best);
      placed.insert(best);
    }
  } else {
    order_ = tableau_->variables();
  }
  candidates_.reserve(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    if (options_.candidate_overrides != nullptr) {
      auto it = options_.candidate_overrides->find(order_[i]);
      if (it != options_.candidate_overrides->end()) {
        candidates_.push_back(it->second);
        continue;
      }
    }
    std::shared_ptr<const Domain> domain =
        tableau_->VariableDomain(order_[i]);
    if (options_.symmetry_break_fresh && domain->is_infinite()) {
      // Base constants plus only the first i+1 fresh values (see the
      // Options comment for why this loses no valuations).
      std::vector<Value> candidates = adom_->base();
      size_t limit = std::min(i + 1, adom_->fresh().size());
      candidates.insert(candidates.end(), adom_->fresh().begin(),
                        adom_->fresh().begin() + limit);
      candidates_.push_back(std::move(candidates));
    } else {
      candidates_.push_back(
          adom_->CandidatesFor(*domain));
    }
  }
  // Precompute, per position, the disequalities that become fully bound
  // there (pruned mode checks them eagerly).
  std::map<std::string, size_t> position;
  for (size_t i = 0; i < order_.size(); ++i) position[order_[i]] = i;
  disequalities_at_.resize(order_.size());
  const auto& diseqs = tableau_->disequalities();
  for (size_t d = 0; d < diseqs.size(); ++d) {
    size_t last = 0;
    bool has_var = false;
    for (const Term* t : {&diseqs[d].first, &diseqs[d].second}) {
      if (t->is_variable()) {
        has_var = true;
        last = std::max(last, position[t->var()]);
      }
    }
    if (has_var) disequalities_at_[last].push_back(d);
  }
  // Shard bookkeeping: per sharded level, the rank weight of one
  // candidate choice (row-major: the first variable varies slowest).
  shard_depth_ = std::min(options_.shard_depth, order_.size());
  if (shard_depth_ > 0) {
    shard_weight_.assign(shard_depth_, 1);
    for (size_t i = shard_depth_ - 1; i-- > 0;) {
      shard_weight_[i] = shard_weight_[i + 1] * candidates_[i + 1].size();
    }
  }
  // Id plane: resolve every candidate and disequality constant to a
  // unified id up front. TryGet only — this runs post-freeze in the
  // parallel workers' per-unit enumerators. Values the interner has
  // never seen get synthetic ids descending from kFreshIdBase - 1
  // (below the reserved fresh range, above every base id), assigned in
  // construction order — deterministic, so every unit sees the same
  // mapping. Equal values share one synthetic id, so id equality means
  // value equality across the whole enumeration.
  if (options_.interner != nullptr) {
    std::map<Value, ValueId> synth;
    auto id_of = [&](const Value& v) -> ValueId {
      std::optional<ValueId> id = options_.interner->TryGet(v);
      if (id.has_value()) return *id;
      auto it = synth.find(v);
      if (it != synth.end()) return it->second;
      ValueId sid = static_cast<ValueId>(ValueInterner::kFreshIdBase - 1 -
                                         synth_values_.size());
      assert(sid >= options_.interner->num_base_ids());
      synth.emplace(v, sid);
      synth_values_.push_back(&v);
      return sid;
    };
    candidate_ids_.resize(candidates_.size());
    for (size_t i = 0; i < candidates_.size(); ++i) {
      candidate_ids_[i].reserve(candidates_[i].size());
      for (const Value& v : candidates_[i]) {
        candidate_ids_[i].push_back(id_of(v));
      }
    }
    diseq_codes_.reserve(diseqs.size());
    for (const auto& [lhs, rhs] : diseqs) {
      auto code_of = [&](const Term& t) -> int32_t {
        if (t.is_variable()) {
          return static_cast<int32_t>(position[t.var()]);
        }
        diseq_const_ids_.push_back(id_of(t.value()));
        return -static_cast<int32_t>(diseq_const_ids_.size());
      };
      int32_t l = code_of(lhs);
      diseq_codes_.emplace_back(l, code_of(rhs));
    }
    ids_ready_ = true;
  }
}

size_t ValuationEnumerator::PrefixSpace(size_t depth) const {
  size_t d = std::min(depth, order_.size());
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) total *= candidates_[i].size();
  return total;
}

bool ValuationEnumerator::EnterBindingStep(bool* stopped) {
  if (options_.stop.stop_requested()) {
    failure_ = Status::Cancelled(
        "valuation search cancelled (another work unit already won)");
    *stopped = true;
    return false;
  }
  if (options_.budget != nullptr) {
    // One counted decision point per binding step, claimed on the
    // shared budget so serial and parallel runs exhaust after the
    // same amount of total work.
    Status bst = options_.budget->OnDecisionPoint();
    if (!bst.ok()) {
      failure_ = std::move(bst);
      *stopped = true;
      return false;
    }
  }
  ++stats_.bindings_tried;
  size_t used = stats_.bindings_tried;
  if (options_.shared_bindings != nullptr) {
    used = options_.shared_bindings->fetch_add(1,
                                               std::memory_order_relaxed) +
           1;
  }
  if (options_.max_bindings > 0 && used > options_.max_bindings) {
    failure_ = Status::ResourceExhausted(
        StrCat("valuation search exceeded ", options_.max_bindings,
               " binding steps"));
    *stopped = true;
    return false;
  }
  return true;
}

bool ValuationEnumerator::Recurse(
    size_t index, size_t lo, size_t hi, Bindings* bindings,
    const std::function<bool(const Bindings&)>& should_prune,
    const std::function<bool(const Bindings&)>& on_total, bool* stopped) {
  if (index == order_.size()) {
    if (!options_.pruned && !tableau_->IsValidValuation(*bindings)) {
      return true;
    }
    ++stats_.totals_delivered;
    if (!on_total(*bindings)) {
      *stopped = true;
      return false;
    }
    return true;
  }
  // At sharded levels only the candidates whose rank block intersects
  // [lo, hi) are visited; below shard_depth_ the full list is.
  size_t k_begin = 0;
  size_t k_end = candidates_[index].size();
  const bool sharded = index < shard_depth_;
  size_t weight = 1;
  if (sharded) {
    weight = shard_weight_[index];
    k_begin = std::min(k_end, lo / weight);
    k_end = std::min(k_end, (hi + weight - 1) / weight);
  }
  for (size_t k = k_begin; k < k_end; ++k) {
    const Value& v = candidates_[index][k];
    if (!EnterBindingStep(stopped)) return false;
    bindings->Set(order_[index], v);
    bool ok = true;
    if (options_.pruned) {
      for (size_t d : disequalities_at_[index]) {
        const auto& [lhs, rhs] = tableau_->disequalities()[d];
        std::optional<Value> lv = bindings->Resolve(lhs);
        std::optional<Value> rv = bindings->Resolve(rhs);
        if (lv.has_value() && rv.has_value() && *lv == *rv) {
          ok = false;
          break;
        }
      }
      if (ok && should_prune != nullptr && should_prune(*bindings)) {
        ok = false;
      }
      if (!ok) ++stats_.prunes;
    }
    if (ok) {
      size_t sub_lo = 0;
      size_t sub_hi = 0;
      if (sharded && index + 1 < shard_depth_) {
        // Clamp the child's rank range into this candidate's block.
        size_t block_lo = k * weight;
        sub_lo = lo > block_lo ? lo - block_lo : 0;
        sub_hi = std::min(hi - block_lo, weight);
      }
      if (!Recurse(index + 1, sub_lo, sub_hi, bindings, should_prune,
                   on_total, stopped)) {
        bindings->Unset(order_[index]);
        return false;
      }
    }
  }
  bindings->Unset(order_[index]);
  return true;
}

Status ValuationEnumerator::Enumerate(
    const std::function<bool(const Bindings&)>& should_prune,
    const std::function<bool(const Bindings&)>& on_total) {
  if (!tableau_->satisfiable()) return Status::OK();
  failure_ = Status::OK();
  size_t lo = 0;
  size_t hi = 0;
  if (shard_depth_ > 0) {
    lo = options_.shard_begin;
    hi = std::min(options_.shard_end, PrefixSpace(shard_depth_));
    if (lo >= hi) return Status::OK();
  }
  Bindings bindings;
  bool stopped = false;
  Recurse(0, lo, hi, &bindings, should_prune, on_total, &stopped);
  return failure_;
}

bool ValuationEnumerator::RecurseIds(
    size_t index, size_t lo, size_t hi,
    const std::function<bool(const IdValuation&)>& should_prune,
    const std::function<bool(const IdValuation&)>& on_total, bool* stopped) {
  if (index == order_.size()) {
    if (!options_.pruned) {
      // Naive-mode leaves replay the legacy validity check verbatim
      // (domain membership and all disequalities on Values); this is
      // the deliberately slow ablation baseline, so the per-leaf
      // materialization is part of the measured algorithm.
      Bindings bindings;
      for (size_t i = 0; i < order_.size(); ++i) {
        bindings.Set(order_[i], ResolveId(slot_ids_[i]));
      }
      if (!tableau_->IsValidValuation(bindings)) return true;
    }
    ++stats_.totals_delivered;
    if (!on_total(IdValuation{slot_ids_.data(), order_.size(), this})) {
      *stopped = true;
      return false;
    }
    return true;
  }
  size_t k_begin = 0;
  size_t k_end = candidates_[index].size();
  const bool sharded = index < shard_depth_;
  size_t weight = 1;
  if (sharded) {
    weight = shard_weight_[index];
    k_begin = std::min(k_end, lo / weight);
    k_end = std::min(k_end, (hi + weight - 1) / weight);
  }
  for (size_t k = k_begin; k < k_end; ++k) {
    if (!EnterBindingStep(stopped)) return false;
    slot_ids_[index] = candidate_ids_[index][k];
    bool ok = true;
    if (options_.pruned) {
      for (size_t d : disequalities_at_[index]) {
        // Both ends are bound here (disequalities_at_ places a check at
        // the position binding its last variable), and id equality is
        // value equality under the unified mapping.
        if (DiseqOperandId(diseq_codes_[d].first) ==
            DiseqOperandId(diseq_codes_[d].second)) {
          ok = false;
          break;
        }
      }
      if (ok && should_prune != nullptr &&
          should_prune(IdValuation{slot_ids_.data(), index + 1, this})) {
        ok = false;
      }
      if (!ok) ++stats_.prunes;
    }
    if (ok) {
      size_t sub_lo = 0;
      size_t sub_hi = 0;
      if (sharded && index + 1 < shard_depth_) {
        size_t block_lo = k * weight;
        sub_lo = lo > block_lo ? lo - block_lo : 0;
        sub_hi = std::min(hi - block_lo, weight);
      }
      if (!RecurseIds(index + 1, sub_lo, sub_hi, should_prune, on_total,
                      stopped)) {
        slot_ids_[index] = kInvalidValueId;
        return false;
      }
    }
  }
  slot_ids_[index] = kInvalidValueId;
  return true;
}

Status ValuationEnumerator::EnumerateIds(
    const std::function<bool(const IdValuation&)>& should_prune,
    const std::function<bool(const IdValuation&)>& on_total) {
  if (!tableau_->satisfiable()) return Status::OK();
  if (!ids_ready_) {
    return Status::InvalidArgument(
        "EnumerateIds requires Options::interner");
  }
  failure_ = Status::OK();
  size_t lo = 0;
  size_t hi = 0;
  if (shard_depth_ > 0) {
    lo = options_.shard_begin;
    hi = std::min(options_.shard_end, PrefixSpace(shard_depth_));
    if (lo >= hi) return Status::OK();
  }
  slot_ids_.assign(order_.size(), kInvalidValueId);
  bool stopped = false;
  RecurseIds(0, lo, hi, should_prune, on_total, &stopped);
  return failure_;
}

const Value& ValuationEnumerator::ResolveId(ValueId id) const {
  if (id < ValueInterner::kFreshIdBase &&
      id >= options_.interner->num_base_ids()) {
    return *synth_values_[ValueInterner::kFreshIdBase - 1 - id];
  }
  return options_.interner->ValueOf(id);
}

namespace {

/// Atomically lowers `target` to at most `value`.
void StoreMin(std::atomic<size_t>* target, size_t value) {
  size_t cur = target->load(std::memory_order_acquire);
  while (value < cur &&
         !target->compare_exchange_weak(cur, value,
                                        std::memory_order_acq_rel)) {
  }
}

enum class UnitState : uint8_t {
  kPending,
  kExhausted,
  kHit,
  kAborted,
  kCancelled,
  /// The execution budget (or legacy shared max_bindings cap) blew
  /// while this unit was in flight; its unsearched remainder is
  /// covered by the resume checkpoint.
  kBudget,
};

struct UnitInfo {
  size_t begin = 0;
  size_t end = 0;
  UnitState state = UnitState::kPending;
  size_t worker = SIZE_MAX;
  Status status;
};

/// The shared engine behind both ParallelValuationSearch flavors:
/// plans the unit partition, runs `run_unit(enumerator, worker)` per
/// claimed unit (the flavor wraps its callbacks and picks
/// Enumerate/EnumerateIds), and resolves the winner deterministically.
void ParallelSearchDriver(
    const TableauQuery& tableau, const ActiveDomain& adom,
    const ValuationEnumerator::Options& enum_options,
    const ParallelSearchOptions& parallel_options,
    const std::function<Status(ValuationEnumerator&, size_t worker)>&
        run_unit,
    const std::function<ParallelUnitResult(size_t worker)>& epilogue,
    ParallelSearchOutcome* outcome) {
  *outcome = ParallelSearchOutcome();
  if (!tableau.satisfiable()) return;

  const size_t threads = std::max<size_t>(1, parallel_options.num_threads);
  ExecutionBudget* budget = enum_options.budget;
  // Controlled runs (budget, binding cap, or resume) always go through
  // the unit partition — with a thread-count-independent unit target —
  // so the counted decision points and rank checkpoints are identical
  // in serial and parallel mode.
  const bool controlled = budget != nullptr || enum_options.max_bindings > 0 ||
                          parallel_options.resume_rank > 0;

  // Plan the partition on a probe enumerator (order and candidate
  // lists are shard-independent, so the probe sees exactly what every
  // worker will see). Shard on the first variable when it alone yields
  // enough units, on the first two otherwise.
  ValuationEnumerator::Options probe_options = enum_options;
  probe_options.shard_depth = 0;
  probe_options.budget = nullptr;
  ValuationEnumerator probe(&tableau, &adom, probe_options);
  const size_t target_units =
      controlled
          ? kControlledUnits
          : threads * std::max<size_t>(1, parallel_options.units_per_thread);
  size_t depth = 0;
  if (!probe.order().empty()) {
    depth = 1;
    if (probe.CandidateCount(0) < target_units && probe.order().size() >= 2) {
      depth = 2;
    }
  }
  const size_t total = probe.PrefixSpace(depth);
  outcome->total_ranks = total;
  const size_t begin_rank = std::min(parallel_options.resume_rank, total);
  const size_t span = total - begin_rank;
  const size_t num_units = std::min(span, target_units);

  auto run_serial = [&]() {
    ValuationEnumerator enumerator(&tableau, &adom, enum_options);
    Status st = run_unit(enumerator, 0);
    outcome->stats += enumerator.stats();
    outcome->units_total = 1;
    outcome->threads_used = 1;
    ParallelUnitResult unit = epilogue(0);
    // Callback errors surface before the enumerator's own status — the
    // serial deciders' historical precedence (a prune-hook error aborts
    // its subtree first, then wins over e.g. a later budget blow).
    if (!unit.status.ok()) {
      outcome->failure = unit.status;
    } else if (!st.ok()) {
      outcome->failure = st;
    } else if (unit.found) {
      outcome->found = true;
      outcome->winner_worker = 0;
      outcome->winner_unit = 0;
    } else {
      outcome->next_rank = total;
    }
  };
  if (!controlled && (threads <= 1 || num_units <= 1)) {
    // Budget-free fast path: one enumerator over the whole space, no
    // per-unit prefix re-binding, no decision-point overhead.
    run_serial();
    return;
  }
  if (num_units == 0) {
    // Resumed at (or past) the end of the rank space: every rank was
    // already searched by the interrupted run(s).
    outcome->next_rank = total;
    outcome->threads_used = 1;
    return;
  }

  std::vector<UnitInfo> units(num_units);
  for (size_t u = 0; u < num_units; ++u) {
    units[u].begin = begin_rank + u * span / num_units;
    units[u].end = begin_rank + (u + 1) * span / num_units;
  }
  const size_t num_workers = std::min(threads, num_units);

  std::atomic<size_t> next_unit{0};
  std::atomic<size_t> best_unit{SIZE_MAX};
  std::atomic<size_t> shared_bindings{0};
  std::atomic<bool> budget_blown{false};
  std::vector<std::atomic<size_t>> current_unit(num_workers);
  for (auto& c : current_unit) c.store(SIZE_MAX, std::memory_order_relaxed);
  std::vector<std::stop_source> stops(num_workers);
  std::vector<ValuationSearchStats> worker_stats(num_workers);

  auto worker_fn = [&](size_t w) {
    std::stop_token token = stops[w].get_token();
    while (!token.stop_requested()) {
      const size_t u = next_unit.fetch_add(1, std::memory_order_relaxed);
      if (u >= units.size()) break;
      // Units beyond an already-resolved winner cannot change the
      // deterministic outcome; stop claiming.
      if (u > best_unit.load(std::memory_order_acquire)) break;
      current_unit[w].store(u, std::memory_order_release);

      ValuationEnumerator::Options unit_options = enum_options;
      unit_options.shard_depth = depth;
      unit_options.shard_begin = units[u].begin;
      unit_options.shard_end = units[u].end;
      unit_options.stop = token;
      if (enum_options.max_bindings > 0) {
        unit_options.shared_bindings = &shared_bindings;
      }
      ValuationEnumerator enumerator(&tableau, &adom, unit_options);
      Status st = run_unit(enumerator, w);
      worker_stats[w] += enumerator.stats();
      ++worker_stats[w].work_units;
      ParallelUnitResult unit_result = epilogue(w);
      units[u].worker = w;

      // An exhausted shared budget — whether it surfaced through the
      // enumerator or through a callback's own budgeted evaluation —
      // is a global stop: no in-flight unit can be trusted to have
      // exhausted its shard. A user CancelToken routed through the
      // budget lands here too (budget->exhausted() is its sticky
      // record), so user cancellation is never misread as the driver's
      // internal lowest-unit-wins stop below.
      const bool budget_exhausted = budget != nullptr && budget->exhausted();
      if (!unit_result.status.ok() && !budget_exhausted) {
        // A deterministic callback failure at unit u: it takes
        // precedence over the enumerator's own status (matching the
        // serial deciders) and participates in winner resolution
        // exactly like a hit — the serial search would have surfaced
        // it at the same point in enumeration order.
        units[u].state = UnitState::kAborted;
        units[u].status = unit_result.status;
      } else if (st.ok() && unit_result.status.ok() && unit_result.found) {
        // A genuine in-shard hit: the unit ran to its own stopping
        // point, so it stands even if the budget blew elsewhere
        // concurrently (resolution still requires every lower unit to
        // have exhausted).
        units[u].state = UnitState::kHit;
      } else if (budget_exhausted) {
        units[u].state = UnitState::kBudget;
        units[u].status = budget->exhaustion_status();
        budget_blown.store(true, std::memory_order_release);
        for (auto& s : stops) s.request_stop();
        break;
      } else if (!st.ok() && st.code() == StatusCode::kCancelled) {
        // Internal lowest-unit-wins cancellation (another unit already
        // won); swallowed by design.
        units[u].state = UnitState::kCancelled;
        ++worker_stats[w].work_units_cancelled;
        break;
      } else if (!st.ok() && st.code() == StatusCode::kResourceExhausted) {
        // Legacy shared max_bindings cap without an ExecutionBudget.
        units[u].state = UnitState::kBudget;
        units[u].status = st;
        budget_blown.store(true, std::memory_order_release);
        for (auto& s : stops) s.request_stop();
        break;
      } else if (!st.ok()) {
        units[u].state = UnitState::kAborted;
        units[u].status = st;
      } else {
        units[u].state = UnitState::kExhausted;
        continue;
      }
      // Hit or abort: lower the winner bound and cancel workers that
      // are provably on later units (their current unit exceeds u; a
      // stale read only delays the cancellation, never misdirects it,
      // because per-worker unit claims are monotone).
      StoreMin(&best_unit, u);
      for (size_t x = 0; x < num_workers; ++x) {
        if (x == w) continue;
        if (current_unit[x].load(std::memory_order_acquire) > u) {
          stops[x].request_stop();
        }
      }
      break;
    }
  };

  if (num_workers == 1) {
    // Controlled serial mode: the single worker claims and runs the
    // units in index order on the calling thread — the same unit
    // partition, decision points, and classification as the parallel
    // mode, without spawning a thread.
    worker_fn(0);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      pool.emplace_back([&worker_fn, w] { worker_fn(w); });
    }
  }  // joins

  outcome->units_total = num_units;
  outcome->threads_used = num_workers;
  for (const ValuationSearchStats& s : worker_stats) outcome->stats += s;

  // Deterministic resolution: scan units in index order; the first
  // non-exhausted unit decides. A pending/cancelled unit before any
  // hit can only arise from a budget blow (winner-driven cancellation
  // only ever targets units above the winner).
  for (const UnitInfo& unit : units) {
    switch (unit.state) {
      case UnitState::kExhausted:
        continue;
      case UnitState::kHit:
        outcome->found = true;
        outcome->winner_worker = unit.worker;
        outcome->winner_unit = static_cast<size_t>(&unit - units.data());
        return;
      case UnitState::kAborted:
        outcome->failure = unit.status;
        return;
      case UnitState::kBudget:
        // Every lower unit exhausted without a hit, so this unit's
        // begin rank is a sound resume point.
        outcome->exhausted = true;
        outcome->next_rank = unit.begin;
        outcome->failure = unit.status;
        return;
      case UnitState::kPending:
      case UnitState::kCancelled:
        outcome->next_rank = unit.begin;
        if (budget_blown.load(std::memory_order_acquire)) {
          outcome->exhausted = true;
          outcome->failure =
              budget != nullptr
                  ? budget->exhaustion_status()
                  : Status::ResourceExhausted(
                        StrCat("valuation search exceeded ",
                               enum_options.max_bindings,
                               " binding steps (shared across workers)"));
        } else {
          outcome->failure = Status::Internal(
              "parallel valuation search left a work unit unresolved "
              "without a winner or a budget blow");
        }
        return;
    }
  }
  // Every unit exhausted: the whole rank space was searched.
  outcome->next_rank = total;
}

}  // namespace

void ParallelValuationSearch(
    const TableauQuery& tableau, const ActiveDomain& adom,
    const ValuationEnumerator::Options& enum_options,
    const ParallelSearchOptions& parallel_options,
    const std::function<bool(size_t worker, const Bindings&)>& should_prune,
    const std::function<bool(size_t worker, const Bindings&)>& on_total,
    const std::function<ParallelUnitResult(size_t worker)>& epilogue,
    ParallelSearchOutcome* outcome) {
  auto run_unit = [&](ValuationEnumerator& enumerator, size_t w) {
    auto prune1 =
        should_prune == nullptr
            ? std::function<bool(const Bindings&)>()
            : std::function<bool(const Bindings&)>(
                  [&, w](const Bindings& b) { return should_prune(w, b); });
    return enumerator.Enumerate(
        prune1, [&, w](const Bindings& b) { return on_total(w, b); });
  };
  ParallelSearchDriver(tableau, adom, enum_options, parallel_options,
                       run_unit, epilogue, outcome);
}

void ParallelValuationSearchIds(
    const TableauQuery& tableau, const ActiveDomain& adom,
    const ValuationEnumerator::Options& enum_options,
    const ParallelSearchOptions& parallel_options,
    const std::function<bool(size_t worker, const IdValuation&)>&
        should_prune,
    const std::function<bool(size_t worker, const IdValuation&)>& on_total,
    const std::function<ParallelUnitResult(size_t worker)>& epilogue,
    ParallelSearchOutcome* outcome) {
  auto run_unit = [&](ValuationEnumerator& enumerator, size_t w) {
    auto prune1 =
        should_prune == nullptr
            ? std::function<bool(const IdValuation&)>()
            : std::function<bool(const IdValuation&)>(
                  [&, w](const IdValuation& v) {
                    return should_prune(w, v);
                  });
    return enumerator.EnumerateIds(
        prune1, [&, w](const IdValuation& v) { return on_total(w, v); });
  };
  ParallelSearchDriver(tableau, adom, enum_options, parallel_options,
                       run_unit, epilogue, outcome);
}

}  // namespace relcomp
