#include "completeness/rcdp.h"

#include <functional>
#include <map>
#include <set>

#include "eval/query_eval.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// True for the languages in the decidable cells of Table I.
bool DecidableQueryLanguage(QueryLanguage lang) {
  return lang == QueryLanguage::kCq || lang == QueryLanguage::kUcq ||
         lang == QueryLanguage::kPositive;
}

Status GateLanguages(const AnyQuery& query, const ConstraintSet& constraints) {
  if (!DecidableQueryLanguage(query.language())) {
    return Status::Unsupported(StrCat(
        "RCDP is undecidable for L_Q = ",
        QueryLanguageToString(query.language()),
        " (Theorem 3.1); see reductions/ and automata/ for the encodings"));
  }
  if (!DecidableQueryLanguage(constraints.Language())) {
    return Status::Unsupported(StrCat(
        "RCDP is undecidable for L_C = ",
        QueryLanguageToString(constraints.Language()), " (Theorem 3.1)"));
  }
  return Status::OK();
}

/// Positions (relation, column) whose values constraint queries can
/// observe: the CC term there is a constant, or a variable with more
/// than one occurrence in its disjunct (joins, head, or comparisons).
Result<std::map<std::string, std::set<size_t>>> SensitivePositions(
    const ConstraintSet& constraints, size_t max_union_disjuncts) {
  std::map<std::string, std::set<size_t>> sensitive;
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                             cc.query().ToUnion(max_union_disjuncts));
    for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      std::map<std::string, int> occurrences;
      for (const Term& t : disjunct.head()) {
        if (t.is_variable()) ++occurrences[t.var()];
      }
      for (const Atom& a : disjunct.body()) {
        for (const Term& t : a.args()) {
          if (t.is_variable()) ++occurrences[t.var()];
        }
      }
      for (const Atom& a : disjunct.body()) {
        if (!a.is_relation()) continue;
        for (size_t col = 0; col < a.args().size(); ++col) {
          const Term& t = a.args()[col];
          if (t.is_constant() || occurrences[t.var()] > 1) {
            sensitive[a.relation()].insert(col);
          }
        }
      }
    }
  }
  return sensitive;
}

/// Candidate overrides implementing the don't-care collapse (see
/// RcdpOptions::collapse_dont_care).
std::map<std::string, std::vector<Value>> CollapseOverrides(
    const TableauQuery& tableau, const Database& db,
    const ActiveDomain& adom,
    const std::map<std::string, std::set<size_t>>& sensitive) {
  std::map<std::string, std::vector<Value>> overrides;
  // Occurrence counts and positions across the rows.
  std::map<std::string, int> occurrences;
  std::map<std::string, std::pair<std::string, size_t>> only_position;
  for (const TableauRow& row : tableau.rows()) {
    for (size_t col = 0; col < row.terms.size(); ++col) {
      const Term& t = row.terms[col];
      if (!t.is_variable()) continue;
      ++occurrences[t.var()];
      only_position[t.var()] = {row.relation, col};
    }
  }
  std::set<std::string> excluded;
  for (const Term& t : tableau.summary()) {
    if (t.is_variable()) excluded.insert(t.var());
  }
  for (const auto& [lhs, rhs] : tableau.disequalities()) {
    if (lhs.is_variable()) excluded.insert(lhs.var());
    if (rhs.is_variable()) excluded.insert(rhs.var());
  }
  size_t next_dedicated = adom.fresh().size();
  const std::vector<std::string>& vars = tableau.variables();
  for (size_t i = 0; i < vars.size(); ++i) {
    const std::string& var = vars[i];
    if (excluded.count(var) > 0) continue;
    auto occ = occurrences.find(var);
    if (occ == occurrences.end() || occ->second != 1) continue;
    if (tableau.VariableDomain(var)->is_finite()) continue;
    const auto& [relation, col] = only_position[var];
    auto sens = sensitive.find(relation);
    if (sens != sensitive.end() && sens->second.count(col) > 0) continue;
    // Candidates: the column's values in D plus one dedicated fresh
    // value (taken from the tail of the fresh pool so earlier fresh
    // values stay available to the symmetry-broken variables).
    std::set<Value> values;
    for (const Tuple& t : db.Get(relation)) values.insert(t[col]);
    if (next_dedicated == 0) continue;  // fresh pool exhausted; skip
    std::vector<Value> candidates(values.begin(), values.end());
    candidates.push_back(adom.fresh()[--next_dedicated]);
    overrides[var] = std::move(candidates);
  }
  return overrides;
}

/// Per-disjunct search context: decides whether some valid valuation of
/// this disjunct's tableau is a counterexample to completeness.
class DisjunctSearch {
 public:
  DisjunctSearch(const TableauQuery& tableau, const Database& db,
                 const Database& master, const ConstraintSet& constraints,
                 const DeltaConstraintChecker* delta_checker,
                 const CompiledConstraintCheck* compiled,
                 const Relation& current_answer, const ActiveDomain& adom,
                 const RcdpOptions& options)
      : tableau_(tableau),
        db_(db),
        master_(master),
        constraints_(constraints),
        delta_checker_(delta_checker),
        compiled_(compiled),
        current_answer_(current_answer),
        adom_(adom),
        options_(options) {
    eval_options_.use_indexes = options.use_indexes;
    eval_options_.counters = &counters_;
  }

  /// Runs the search; fills *result on success (counterexample found).
  Result<bool> Run(RcdpResult* result,
                   const std::map<std::string, std::vector<Value>>*
                       candidate_overrides) {
    if (delta_checker_ != nullptr) {
      session_.emplace(delta_checker_->NewSession(
          db_, master_, options_.use_overlay, eval_options_));
    } else if (options_.use_overlay) {
      // No delta session: candidates are staged on a scratch overlay —
      // over ∅ for the Corollary 3.4 IND fast path (only μ(T) is
      // checked), over D otherwise. Either way the base relations'
      // column indexes survive across candidates.
      if (options_.ind_fast_path && constraints_.IsIndsOnly()) {
        empty_db_.emplace(db_.schema_ptr());
        scratch_.emplace(&*empty_db_);
      } else {
        scratch_.emplace(&db_);
      }
    }
    ValuationEnumerator::Options enum_options;
    enum_options.pruned = options_.prune;
    enum_options.max_bindings = options_.max_bindings;
    enum_options.candidate_overrides = candidate_overrides;
    ValuationEnumerator enumerator(&tableau_, &adom_, enum_options);

    // Precompute, for each enumeration position, which rows become
    // fully bound there: the prune hook checks V on the partially
    // instantiated tableau as soon as rows complete (sound because the
    // supported constraint languages are monotone — a violation by a
    // subset of μ(T) persists for all of it).
    const std::vector<std::string>& order = enumerator.order();
    std::map<std::string, size_t> position;
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    // rows_complete_up_to_[p] = indices of rows whose variables are all
    // at positions <= p.
    std::vector<size_t> row_bound_at(tableau_.rows().size(), 0);
    std::vector<bool> row_has_new_at(order.size(), false);
    for (size_t r = 0; r < tableau_.rows().size(); ++r) {
      size_t last = 0;
      for (const Term& t : tableau_.rows()[r].terms) {
        if (t.is_variable()) last = std::max(last, position[t.var()]);
      }
      row_bound_at[r] = last;
      if (!order.empty()) row_has_new_at[last] = true;
    }

    bool found = false;
    Status inner_error;
    std::function<bool(const Bindings&)> prune = [&](const Bindings& partial) {
      // Prune once the summary is grounded and already answered.
      std::optional<Tuple> summary = partial.Ground(tableau_.summary());
      if (summary.has_value() && current_answer_.Contains(*summary)) {
        return true;
      }
      // Prune when the rows bound so far already violate V.
      size_t pos = partial.size() == 0 ? 0 : partial.size() - 1;
      if (pos < row_has_new_at.size() && row_has_new_at[pos]) {
        Result<bool> ok = PartialRowsSatisfyV(partial, pos, row_bound_at);
        if (!ok.ok()) {
          inner_error = ok.status();
          return true;  // abort the subtree; error surfaces after
        }
        if (!*ok) return true;
      }
      return false;
    };
    auto on_total = [&](const Bindings& valuation) {
      Result<bool> is_cex = IsCounterexample(valuation, result);
      if (!is_cex.ok()) {
        inner_error = is_cex.status();
        return false;
      }
      if (*is_cex) {
        found = true;
        return false;
      }
      return true;
    };
    Status st = enumerator.Enumerate(options_.prune ? prune : nullptr,
                                     on_total);
    result->stats.bindings_tried += enumerator.stats().bindings_tried;
    result->stats.totals_delivered += enumerator.stats().totals_delivered;
    result->stats.prunes += enumerator.stats().prunes;
    result->stats.index_probes += counters_.index_probes;
    result->stats.relation_scans += counters_.relation_scans;
    result->stats.overlay_hits += counters_.overlay_hits;
    RELCOMP_RETURN_NOT_OK(inner_error);
    RELCOMP_RETURN_NOT_OK(st);
    return found;
  }

 private:
  /// Checks V on the extension given by `tuples`: (D ∪ tuples, Dm) on
  /// the general path, (tuples, Dm) alone on the IND fast path
  /// (Corollary 3.4 — callers pass μ(T) there). Dispatches to the
  /// delta session, the scratch overlay + compiled check, or — with
  /// use_overlay off — the legacy copy-per-candidate path.
  Result<bool> ExtensionSatisfiesV(
      const std::vector<std::pair<std::string, Tuple>>& tuples) {
    if (session_.has_value()) {
      return session_->Check(tuples);
    }
    const bool ind = options_.ind_fast_path && constraints_.IsIndsOnly();
    if (scratch_.has_value()) {
      scratch_->Clear();
      for (const auto& [relation, tuple] : tuples) {
        scratch_->Add(relation, tuple);
      }
      if (compiled_ != nullptr) {
        return compiled_->Satisfied(*scratch_, eval_options_);
      }
      return Satisfies(constraints_, *scratch_, master_);
    }
    if (ind) {
      Database mu_t(db_.schema_ptr());
      for (const auto& [relation, tuple] : tuples) {
        mu_t.InsertUnchecked(relation, tuple);
      }
      return Satisfies(constraints_, mu_t, master_);
    }
    Database extended = db_;
    for (const auto& [relation, tuple] : tuples) {
      extended.InsertUnchecked(relation, tuple);
    }
    return Satisfies(constraints_, extended, master_);
  }

  /// Instantiates the rows fully bound at positions <= pos and checks
  /// V on D plus those rows alone.
  Result<bool> PartialRowsSatisfyV(const Bindings& partial, size_t pos,
                                   const std::vector<size_t>& row_bound_at) {
    std::vector<std::pair<std::string, Tuple>> delta;
    for (size_t r = 0; r < tableau_.rows().size(); ++r) {
      if (row_bound_at[r] > pos) continue;
      const TableauRow& row = tableau_.rows()[r];
      std::optional<Tuple> t = partial.Ground(row.terms);
      if (!t.has_value()) continue;
      if (!db_.Contains(row.relation, *t)) {
        delta.emplace_back(row.relation, std::move(*t));
      }
    }
    if (delta.empty()) return true;
    return ExtensionSatisfiesV(delta);
  }

  Result<bool> IsCounterexample(const Bindings& valuation,
                                RcdpResult* result) {
    RELCOMP_ASSIGN_OR_RETURN(Tuple summary,
                             tableau_.SummaryTuple(valuation));
    if (current_answer_.Contains(summary)) return false;
    // μ(T) \ D; if empty, μ(u) would already be in Q(D).
    RELCOMP_ASSIGN_OR_RETURN(auto rows, tableau_.Instantiate(valuation));
    std::vector<std::pair<std::string, Tuple>> delta;
    std::set<std::pair<std::string, Tuple>> seen;
    for (auto& [relation, tuple] : rows) {
      if (!db_.Contains(relation, tuple) &&
          seen.emplace(relation, tuple).second) {
        delta.emplace_back(relation, tuple);
      }
    }
    if (delta.empty()) return false;
    bool satisfied = false;
    if (!session_.has_value() &&
        options_.ind_fast_path && constraints_.IsIndsOnly()) {
      // Corollary 3.4: for INDs, (D ∪ μ(T), Dm) |= V iff
      // (D, Dm) |= V (precondition) and (μ(T), Dm) |= V.
      RELCOMP_ASSIGN_OR_RETURN(satisfied, ExtensionSatisfiesV(rows));
    } else {
      RELCOMP_ASSIGN_OR_RETURN(satisfied, ExtensionSatisfiesV(delta));
    }
    if (!satisfied) return false;
    result->complete = false;
    Database delta_db(db_.schema_ptr());
    for (auto& [relation, tuple] : delta) {
      delta_db.InsertUnchecked(relation, std::move(tuple));
    }
    result->counterexample_delta = std::move(delta_db);
    result->new_answer = std::move(summary);
    return true;
  }

  const TableauQuery& tableau_;
  const Database& db_;
  const Database& master_;
  const ConstraintSet& constraints_;
  const DeltaConstraintChecker* delta_checker_;
  const CompiledConstraintCheck* compiled_;
  std::optional<DeltaConstraintChecker::Session> session_;
  /// Overlay-mode scratch state (no delta session): IND fast path
  /// stages candidates over an empty base, the general path over D.
  std::optional<Database> empty_db_;
  std::optional<DatabaseOverlay> scratch_;
  EvalCounters counters_;
  ConjunctiveEvalOptions eval_options_;
  const Relation& current_answer_;
  const ActiveDomain& adom_;
  const RcdpOptions& options_;
};

}  // namespace

std::string RcdpResult::ToString() const {
  if (complete) {
    return StrCat("COMPLETE (", stats.bindings_tried,
                  " search steps, ", stats.totals_delivered,
                  " full valuations examined)");
  }
  std::string out = "INCOMPLETE";
  if (new_answer.has_value()) {
    out += StrCat("; adding Δ yields new answer ", new_answer->ToString());
  }
  if (counterexample_delta.has_value()) {
    out += StrCat("\nΔ =\n", counterexample_delta->ToString());
  }
  return out;
}

Result<RcdpResult> DecideRcdp(const AnyQuery& query, const Database& db,
                              const Database& master,
                              const ConstraintSet& constraints,
                              const RcdpOptions& options) {
  RELCOMP_RETURN_NOT_OK(GateLanguages(query, constraints));
  RELCOMP_RETURN_NOT_OK(query.Validate(db.schema()));
  RELCOMP_RETURN_NOT_OK(constraints.Validate(db.schema(), master.schema()));
  RELCOMP_ASSIGN_OR_RETURN(bool closed, Satisfies(constraints, db, master));
  if (!closed) {
    return Status::InvalidArgument(
        "D is not partially closed: (D, Dm) does not satisfy V");
  }

  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                           query.ToUnion(options.max_union_disjuncts));
  RcdpResult result;
  result.complete = true;

  EvalCounters main_counters;
  ConjunctiveEvalOptions main_eval;
  main_eval.use_indexes = options.use_indexes;
  main_eval.counters = &main_counters;
  RELCOMP_ASSIGN_OR_RETURN(Relation current_answer,
                           EvalUnion(ucq, db, main_eval));

  // Build the incremental constraint checker once (skipped for the
  // IND fast path, which checks μ(T) in isolation and is cheaper).
  std::optional<DeltaConstraintChecker> delta_checker;
  const bool use_ind_fast_path =
      options.ind_fast_path && constraints.IsIndsOnly();
  if (options.delta_constraint_check && !use_ind_fast_path) {
    RELCOMP_ASSIGN_OR_RETURN(
        DeltaConstraintChecker checker,
        DeltaConstraintChecker::Make(constraints, db.schema_ptr(),
                                     options.max_union_disjuncts));
    delta_checker = std::move(checker);
  }

  // Without a delta session, per-candidate checks go through a
  // CompiledConstraintCheck (UCQ unfoldings and master-side target
  // projections materialized once, here) over the scratch overlay.
  // If compilation fails — an ∃FO+ constraint whose unfolding blows
  // the cap — candidates fall back to uncompiled overlay checks.
  std::optional<CompiledConstraintCheck> compiled;
  if (options.use_overlay && !delta_checker.has_value()) {
    Result<CompiledConstraintCheck> c = CompiledConstraintCheck::Make(
        constraints, master, options.max_union_disjuncts);
    if (c.ok()) {
      compiled = std::move(*c);
    } else if (c.status().code() != StatusCode::kResourceExhausted &&
               c.status().code() != StatusCode::kUnsupported) {
      return c.status();
    }
  }

  std::map<std::string, std::set<size_t>> sensitive;
  if (options.collapse_dont_care) {
    RELCOMP_ASSIGN_OR_RETURN(
        sensitive,
        SensitivePositions(constraints, options.max_union_disjuncts));
  }

  std::set<Value> query_constants = ucq.Constants();
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(
        TableauQuery tableau,
        TableauQuery::FromConjunctive(disjunct, db.schema()));
    if (!tableau.satisfiable()) continue;
    // One fresh value per variable of this disjunct's tableau
    // (the paper's New); the proof of Prop 3.3 shows this suffices.
    ActiveDomain adom = ActiveDomain::Build(
        db, master, query_constants, constraints,
        std::max<size_t>(1, tableau.variables().size()));
    std::map<std::string, std::vector<Value>> overrides;
    if (options.collapse_dont_care) {
      overrides = CollapseOverrides(tableau, db, adom, sensitive);
    }
    DisjunctSearch search(tableau, db, master, constraints,
                          delta_checker.has_value() ? &*delta_checker
                                                    : nullptr,
                          compiled.has_value() ? &*compiled : nullptr,
                          current_answer, adom, options);
    RELCOMP_ASSIGN_OR_RETURN(
        bool found,
        search.Run(&result, overrides.empty() ? nullptr : &overrides));
    if (found) break;
  }
  result.stats.index_probes += main_counters.index_probes;
  result.stats.relation_scans += main_counters.relation_scans;
  result.stats.overlay_hits += main_counters.overlay_hits;
  return result;
}

Result<Database> ChaseToCompleteness(const AnyQuery& query,
                                     const Database& db,
                                     const Database& master,
                                     const ConstraintSet& constraints,
                                     size_t max_rounds,
                                     const RcdpOptions& options) {
  Database current = db;
  for (size_t round = 0; round < max_rounds; ++round) {
    RELCOMP_ASSIGN_OR_RETURN(
        RcdpResult result,
        DecideRcdp(query, current, master, constraints, options));
    if (result.complete) return current;
    current.UnionWith(*result.counterexample_delta);
  }
  return Status::ResourceExhausted(
      StrCat("database still incomplete after ", max_rounds,
             " chase rounds (the query may not be relatively complete; "
             "check with DecideRcqp)"));
}

}  // namespace relcomp
