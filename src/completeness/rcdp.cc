#include "completeness/rcdp.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <thread>

#include "eval/query_eval.h"
#include "util/arena.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// Resolves RcdpOptions::num_threads: 0 = hardware_concurrency, and the
/// legacy copy-per-candidate paths (use_overlay off) are forced serial
/// because they intern candidate tuples into the shared ValueInterner.
size_t EffectiveThreads(const RcdpOptions& options) {
  if (!options.use_overlay) return 1;
  if (options.num_threads == 1) return 1;
  if (options.num_threads == 0) {
    return std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return options.num_threads;
}

/// Balanced freeze/unfreeze of the shared databases around the
/// concurrent phase of one disjunct search.
class FreezeScope {
 public:
  FreezeScope(const Database& db, const Database& master)
      : db_(db), master_(master) {
    db_.Freeze();
    master_.Freeze();
  }
  ~FreezeScope() {
    master_.Unfreeze();
    db_.Unfreeze();
  }
  FreezeScope(const FreezeScope&) = delete;
  FreezeScope& operator=(const FreezeScope&) = delete;

 private:
  const Database& db_;
  const Database& master_;
};

/// True for the languages in the decidable cells of Table I.
bool DecidableQueryLanguage(QueryLanguage lang) {
  return lang == QueryLanguage::kCq || lang == QueryLanguage::kUcq ||
         lang == QueryLanguage::kPositive;
}

Status GateLanguages(const AnyQuery& query, const ConstraintSet& constraints) {
  if (!DecidableQueryLanguage(query.language())) {
    return Status::Unsupported(StrCat(
        "RCDP is undecidable for L_Q = ",
        QueryLanguageToString(query.language()),
        " (Theorem 3.1); see reductions/ and automata/ for the encodings"));
  }
  if (!DecidableQueryLanguage(constraints.Language())) {
    return Status::Unsupported(StrCat(
        "RCDP is undecidable for L_C = ",
        QueryLanguageToString(constraints.Language()), " (Theorem 3.1)"));
  }
  return Status::OK();
}

/// Positions (relation, column) whose values constraint queries can
/// observe: the CC term there is a constant, or a variable with more
/// than one occurrence in its disjunct (joins, head, or comparisons).
Result<std::map<std::string, std::set<size_t>>> SensitivePositions(
    const ConstraintSet& constraints, size_t max_union_disjuncts) {
  std::map<std::string, std::set<size_t>> sensitive;
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                             cc.query().ToUnion(max_union_disjuncts));
    for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      std::map<std::string, int> occurrences;
      for (const Term& t : disjunct.head()) {
        if (t.is_variable()) ++occurrences[t.var()];
      }
      for (const Atom& a : disjunct.body()) {
        for (const Term& t : a.args()) {
          if (t.is_variable()) ++occurrences[t.var()];
        }
      }
      for (const Atom& a : disjunct.body()) {
        if (!a.is_relation()) continue;
        for (size_t col = 0; col < a.args().size(); ++col) {
          const Term& t = a.args()[col];
          if (t.is_constant() || occurrences[t.var()] > 1) {
            sensitive[a.relation()].insert(col);
          }
        }
      }
    }
  }
  return sensitive;
}

/// Candidate overrides implementing the don't-care collapse (see
/// RcdpOptions::collapse_dont_care).
std::map<std::string, std::vector<Value>> CollapseOverrides(
    const TableauQuery& tableau, const Database& db,
    const ActiveDomain& adom,
    const std::map<std::string, std::set<size_t>>& sensitive) {
  std::map<std::string, std::vector<Value>> overrides;
  // Occurrence counts and positions across the rows.
  std::map<std::string, int> occurrences;
  std::map<std::string, std::pair<std::string, size_t>> only_position;
  for (const TableauRow& row : tableau.rows()) {
    for (size_t col = 0; col < row.terms.size(); ++col) {
      const Term& t = row.terms[col];
      if (!t.is_variable()) continue;
      ++occurrences[t.var()];
      only_position[t.var()] = {row.relation, col};
    }
  }
  std::set<std::string> excluded;
  for (const Term& t : tableau.summary()) {
    if (t.is_variable()) excluded.insert(t.var());
  }
  for (const auto& [lhs, rhs] : tableau.disequalities()) {
    if (lhs.is_variable()) excluded.insert(lhs.var());
    if (rhs.is_variable()) excluded.insert(rhs.var());
  }
  size_t next_dedicated = adom.fresh().size();
  const std::vector<std::string>& vars = tableau.variables();
  for (size_t i = 0; i < vars.size(); ++i) {
    const std::string& var = vars[i];
    if (excluded.count(var) > 0) continue;
    auto occ = occurrences.find(var);
    if (occ == occurrences.end() || occ->second != 1) continue;
    if (tableau.VariableDomain(var)->is_finite()) continue;
    const auto& [relation, col] = only_position[var];
    auto sens = sensitive.find(relation);
    if (sens != sensitive.end() && sens->second.count(col) > 0) continue;
    // Candidates: the column's values in D plus one dedicated fresh
    // value (taken from the tail of the fresh pool so earlier fresh
    // values stay available to the symmetry-broken variables).
    std::set<Value> values;
    for (const Tuple& t : db.Get(relation)) values.insert(t[col]);
    if (next_dedicated == 0) continue;  // fresh pool exhausted; skip
    std::vector<Value> candidates(values.begin(), values.end());
    candidates.push_back(adom.fresh()[--next_dedicated]);
    overrides[var] = std::move(candidates);
  }
  return overrides;
}

/// Per-disjunct search context: decides whether some valid valuation of
/// this disjunct's tableau is a counterexample to completeness.
class DisjunctSearch {
 public:
  DisjunctSearch(const TableauQuery& tableau, const Database& db,
                 const Database& master, const ConstraintSet& constraints,
                 const DeltaConstraintChecker* delta_checker,
                 const CompiledConstraintCheck* compiled,
                 const Relation& current_answer, const ActiveDomain& adom,
                 const RcdpOptions& options)
      : tableau_(tableau),
        db_(db),
        master_(master),
        constraints_(constraints),
        delta_checker_(delta_checker),
        compiled_(compiled),
        current_answer_(current_answer),
        adom_(adom),
        options_(options) {}

  /// How a budget exhaustion left one disjunct's search: the sound
  /// resume rank and the exhaustion status the driver recorded.
  struct Exhaustion {
    bool exhausted = false;
    size_t next_rank = 0;
    Status status;
  };

  /// Runs the search; fills *result on success (counterexample found).
  /// With num_threads > 1 the enumeration is partitioned into work
  /// units on a jthread pool: every worker owns its scratch state (an
  /// overlay or delta session, counters, and a candidate result slot),
  /// the shared databases are frozen for the concurrent phase, and the
  /// winner is resolved deterministically (lowest work unit).
  /// `resume_rank` skips the ranks a prior interrupted run already
  /// searched; on budget exhaustion *ex is filled and false returned
  /// (no counterexample surfaced, not an error).
  Result<bool> Run(RcdpResult* result,
                   const std::map<std::string, std::vector<Value>>*
                       candidate_overrides,
                   size_t resume_rank, Exhaustion* ex) {
    const size_t threads = EffectiveThreads(options_);
    std::vector<Worker> workers(threads);
    for (Worker& w : workers) InitWorker(&w);

    ValuationEnumerator::Options enum_options;
    enum_options.pruned = options_.prune;
    enum_options.max_bindings = options_.max_bindings;
    enum_options.candidate_overrides = candidate_overrides;
    enum_options.budget = options_.budget;

    // Precompute, for each enumeration position, which rows become
    // fully bound there: the prune hook checks V on the partially
    // instantiated tableau as soon as rows complete (sound because the
    // supported constraint languages are monotone — a violation by a
    // subset of μ(T) persists for all of it). The order is derived from
    // a probe enumerator; it is deterministic, so per-unit enumerators
    // built by the parallel driver use the identical order.
    ValuationEnumerator probe(&tableau_, &adom_, enum_options);
    const std::vector<std::string>& order = probe.order();
    std::map<std::string, size_t> position;
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    // row_bound_at[r] = first position p with all variables of row r at
    // positions <= p.
    std::vector<size_t> row_bound_at(tableau_.rows().size(), 0);
    std::vector<bool> row_has_new_at(order.size(), false);
    for (size_t r = 0; r < tableau_.rows().size(); ++r) {
      size_t last = 0;
      for (const Term& t : tableau_.rows()[r].terms) {
        if (t.is_variable()) last = std::max(last, position[t.var()]);
      }
      row_bound_at[r] = last;
      if (!order.empty()) row_has_new_at[last] = true;
    }

    // --- Id-plane search plans -------------------------------------
    // The hot callbacks below operate purely on ValueId rows; Values
    // are materialized only at the rare boundaries (a partial row not
    // already in D, or a full valuation surviving every prune). The
    // family interner was pre-populated by ActiveDomain::Build, so the
    // per-unit enumerators stay strictly read-only post-freeze.
    const ValueInterner* interner = db_.interner().get();
    enum_options.interner = interner;

    // Summary plan: code >= 0 names an enumeration slot, code < 0 a
    // constant at the same index (its id in summary_const_ids).
    // summary_ground_depth is the prefix length at which the summary
    // becomes fully grounded — the point the answer prune arms.
    const std::vector<Term>& summary_terms = tableau_.summary();
    std::vector<int32_t> summary_codes(summary_terms.size(), -1);
    std::vector<ValueId> summary_const_ids(summary_terms.size(),
                                           kInvalidValueId);
    bool summary_groundable = true;
    bool summary_unknown_const = false;
    size_t summary_ground_depth = 0;
    for (size_t i = 0; i < summary_terms.size(); ++i) {
      const Term& t = summary_terms[i];
      if (t.is_variable()) {
        auto it = position.find(t.var());
        if (it == position.end()) {
          summary_groundable = false;
          continue;
        }
        summary_codes[i] = static_cast<int32_t>(it->second);
        summary_ground_depth =
            std::max(summary_ground_depth, it->second + 1);
      } else if (interner != nullptr) {
        std::optional<ValueId> id = interner->TryGet(t.value());
        if (id.has_value()) {
          summary_const_ids[i] = *id;
        } else {
          summary_unknown_const = true;
        }
      }
    }
    // Answer containment goes through ids when Q(D) shares the family
    // interner (the EvalUnion output does unless the family was frozen
    // while it was built); otherwise fall back to Value tuples. With a
    // shared interner, a summary constant the interner has never seen
    // cannot occur in Q(D) at all, so the prune never fires.
    const bool answer_shared =
        interner != nullptr && current_answer_.interner().get() == interner;

    // Row plans: PartialRowsSatisfyV over ids. `rel` is resolved now,
    // pre-freeze, so db_.Get may populate its empty-relation cache.
    struct RowPlan {
      const TableauRow* row = nullptr;
      const Relation* rel = nullptr;
      std::vector<int32_t> codes;  // >= 0: slot; < 0: const -code-1
      std::vector<ValueId> const_ids;
      std::vector<const Value*> const_vals;
      size_t bound_at = 0;
      bool unknown_const = false;  // some constant absent from the interner
    };
    std::vector<RowPlan> plans(tableau_.rows().size());
    for (size_t r = 0; r < tableau_.rows().size(); ++r) {
      RowPlan& plan = plans[r];
      const TableauRow& row = tableau_.rows()[r];
      plan.row = &row;
      plan.rel = &db_.Get(row.relation);
      plan.bound_at = row_bound_at[r];
      plan.codes.reserve(row.terms.size());
      for (const Term& t : row.terms) {
        if (t.is_variable()) {
          plan.codes.push_back(static_cast<int32_t>(position[t.var()]));
          continue;
        }
        plan.codes.push_back(
            -static_cast<int32_t>(plan.const_ids.size()) - 1);
        plan.const_vals.push_back(&t.value());
        std::optional<ValueId> id =
            interner != nullptr ? interner->TryGet(t.value()) : std::nullopt;
        if (id.has_value()) {
          plan.const_ids.push_back(*id);
        } else {
          plan.const_ids.push_back(kInvalidValueId);
          plan.unknown_const = true;
        }
      }
    }

    // Id-plane body of PartialRowsSatisfyV: instantiate the rows fully
    // bound at positions <= pos as id rows, membership-test them
    // against D without materializing Values, and only build Tuples for
    // the (rare) rows that actually extend D.
    auto partial_rows_satisfy = [&](Worker& w, const IdValuation& v,
                                    size_t pos) -> Result<bool> {
      w.delta_scratch.clear();
      for (const RowPlan& plan : plans) {
        if (plan.bound_at > pos) continue;
        bool contained = false;
        if (!plan.unknown_const) {
          w.id_buf.resize(plan.codes.size());
          for (size_t c = 0; c < plan.codes.size(); ++c) {
            int32_t code = plan.codes[c];
            w.id_buf[c] = code >= 0 ? v.ids[code] : plan.const_ids[-code - 1];
          }
          contained = plan.rel->ContainsIds(w.id_buf.data());
        }
        if (!contained) {
          std::vector<Value> vals;
          vals.reserve(plan.codes.size());
          for (size_t c = 0; c < plan.codes.size(); ++c) {
            int32_t code = plan.codes[c];
            vals.push_back(code >= 0 ? v.enumerator->ResolveId(v.ids[code])
                                     : *plan.const_vals[-code - 1]);
          }
          w.delta_scratch.emplace_back(plan.row->relation,
                                       Tuple(std::move(vals)));
        }
      }
      if (w.delta_scratch.empty()) return true;
      return ExtensionSatisfiesV(&w, w.delta_scratch);
    };

    auto prune = [&](size_t wi, const IdValuation& v) {
      Worker& w = workers[wi];
      // Prune once the summary is grounded and already answered.
      if (summary_groundable && v.depth >= summary_ground_depth) {
        if (answer_shared) {
          if (!summary_unknown_const) {
            w.summary_buf.resize(summary_codes.size());
            for (size_t i = 0; i < summary_codes.size(); ++i) {
              int32_t code = summary_codes[i];
              w.summary_buf[i] =
                  code >= 0 ? v.ids[code] : summary_const_ids[i];
            }
            if (current_answer_.ContainsIds(w.summary_buf.data())) {
              return true;
            }
          }
        } else {
          std::vector<Value> vals;
          vals.reserve(summary_codes.size());
          for (size_t i = 0; i < summary_codes.size(); ++i) {
            int32_t code = summary_codes[i];
            vals.push_back(code >= 0 ? v.enumerator->ResolveId(v.ids[code])
                                     : summary_terms[i].value());
          }
          if (current_answer_.Contains(Tuple(std::move(vals)))) return true;
        }
      }
      // Prune when the rows bound so far already violate V.
      size_t pos = v.depth == 0 ? 0 : v.depth - 1;
      if (pos < row_has_new_at.size() && row_has_new_at[pos]) {
        Result<bool> ok = partial_rows_satisfy(w, v, pos);
        if (!ok.ok()) {
          w.error = ok.status();
          return true;  // abort the subtree; error surfaces after
        }
        if (!*ok) return true;
      }
      return false;
    };
    auto on_total = [&](size_t wi, const IdValuation& v) {
      Worker& w = workers[wi];
      // Materialize the full valuation once: counterexample judging is
      // rare (most candidates die in the prunes above), and the legacy
      // Bindings-based judge keeps its battle-tested semantics.
      Bindings valuation;
      for (size_t i = 0; i < order.size(); ++i) {
        valuation.Set(order[i], v.enumerator->ResolveId(v.ids[i]));
      }
      Result<bool> is_cex = IsCounterexample(&w, valuation, &w.candidate);
      if (!is_cex.ok()) {
        w.error = is_cex.status();
        return false;
      }
      if (*is_cex) {
        w.found = true;
        return false;
      }
      return true;
    };
    auto epilogue = [&](size_t wi) {
      Worker& w = workers[wi];
      ParallelUnitResult r;
      r.found = w.found;
      r.status = w.error;
      // Reset the per-unit flags; the candidate itself survives until
      // the driver names the winning worker.
      w.found = false;
      w.error = Status::OK();
      return r;
    };

    ParallelSearchOptions parallel_options;
    parallel_options.num_threads = threads;
    parallel_options.resume_rank = resume_rank;
    ParallelSearchOutcome outcome;
    std::optional<FreezeScope> freeze;
    if (threads > 1) {
      // Freeze the shared read state for the concurrent phase: every
      // lazily built structure (sort orders, dedup maps, column
      // indexes, empty-relation caches) is forced now, and the shared
      // interner is tripwired against post-fork growth. The fresh pool
      // was already reserved by ActiveDomain::Build.
      freeze.emplace(db_, master_);
      current_answer_.PrepareForRead();
    }
    ParallelValuationSearchIds(
        tableau_, adom_, enum_options, parallel_options,
        options_.prune
            ? std::function<bool(size_t, const IdValuation&)>(prune)
            : std::function<bool(size_t, const IdValuation&)>(),
        on_total, epilogue, &outcome);

    result->stats += outcome.stats;
    for (const Worker& w : workers) {
      result->stats.index_probes += w.counters.index_probes;
      result->stats.composite_probes += w.counters.composite_probes;
      result->stats.relation_scans += w.counters.relation_scans;
      result->stats.overlay_hits += w.counters.overlay_hits;
      if (w.arena.has_value()) {
        result->stats.arena_bytes += w.arena->high_water_bytes();
      }
    }
    if (outcome.exhausted) {
      // Budget/cancel exhaustion: degrade gracefully. Every rank below
      // next_rank was searched without a counterexample; the workers'
      // scratch state (overlays, sessions) unwound via Clear/rollback,
      // so the frozen core is untouched and the caller can resume.
      ex->exhausted = true;
      ex->next_rank = outcome.next_rank;
      ex->status = outcome.failure;
      return false;
    }
    RELCOMP_RETURN_NOT_OK(outcome.failure);
    if (!outcome.found) return false;
    Worker& winner = workers[outcome.winner_worker];
    result->complete = false;
    result->counterexample_delta =
        std::move(winner.candidate.counterexample_delta);
    result->new_answer = std::move(winner.candidate.new_answer);
    return true;
  }

 private:
  /// Everything one worker touches while judging valuations: the
  /// constraint-check state (delta session or scratch overlay), the
  /// eval counters, and the slots the search callbacks fill. Workers
  /// never share any of it; the vector is sized once so the interior
  /// pointers (scratch -> empty_db, eval_options.counters) stay valid.
  struct Worker {
    std::optional<DeltaConstraintChecker::Session> session;
    std::optional<Database> empty_db;
    std::optional<DatabaseOverlay> scratch;
    /// Per-worker bump arena for the matcher's per-call scratch, reset
    /// before every candidate check (null when use_arena is off).
    std::optional<Arena> arena;
    EvalCounters counters;
    ConjunctiveEvalOptions eval_options;
    /// Reused id/tuple scratch for the id-plane prune hook.
    std::vector<ValueId> id_buf;
    std::vector<ValueId> summary_buf;
    std::vector<std::pair<std::string, Tuple>> delta_scratch;
    RcdpResult candidate;
    Status error;
    bool found = false;
  };

  void InitWorker(Worker* w) {
    if (options_.use_arena) {
      w->arena.emplace();
      if (options_.budget != nullptr) {
        w->arena->set_memory_tracker(options_.budget);
      }
    }
    w->eval_options.use_indexes = options_.use_indexes;
    w->eval_options.use_composite_indexes = options_.use_composite_indexes;
    w->eval_options.arena = w->arena.has_value() ? &*w->arena : nullptr;
    w->eval_options.counters = &w->counters;
    w->eval_options.budget = options_.budget;
    if (delta_checker_ != nullptr) {
      w->session.emplace(delta_checker_->NewSession(
          db_, master_, options_.use_overlay, w->eval_options));
    } else if (options_.use_overlay) {
      // No delta session: candidates are staged on a scratch overlay —
      // over ∅ for the Corollary 3.4 IND fast path (only μ(T) is
      // checked), over D otherwise. Either way the base relations'
      // column indexes survive across candidates.
      if (options_.ind_fast_path && constraints_.IsIndsOnly()) {
        // Share the family interner so candidate rows staged over ∅
        // resolve to the same ids the search and base relations use.
        w->empty_db.emplace(db_.schema_ptr(), db_.interner());
        w->scratch.emplace(&*w->empty_db);
      } else {
        w->scratch.emplace(&db_);
      }
      if (options_.budget != nullptr) {
        w->scratch->set_memory_tracker(options_.budget);
      }
    }
  }
  /// Checks V on the extension given by `tuples`: (D ∪ tuples, Dm) on
  /// the general path, (tuples, Dm) alone on the IND fast path
  /// (Corollary 3.4 — callers pass μ(T) there). Dispatches to the
  /// delta session, the scratch overlay + compiled check, or — with
  /// use_overlay off — the legacy copy-per-candidate path.
  Result<bool> ExtensionSatisfiesV(
      Worker* w, const std::vector<std::pair<std::string, Tuple>>& tuples) {
    // The matcher's per-call scratch from the previous candidate is
    // dead; reclaim it (blocks are retained, so steady state is
    // allocation free).
    if (w->arena.has_value()) w->arena->Reset();
    if (w->session.has_value()) {
      return w->session->Check(tuples);
    }
    const bool ind = options_.ind_fast_path && constraints_.IsIndsOnly();
    if (w->scratch.has_value()) {
      w->scratch->Clear();
      for (const auto& [relation, tuple] : tuples) {
        w->scratch->Add(relation, tuple);
      }
      if (compiled_ != nullptr) {
        return compiled_->Satisfied(*w->scratch, w->eval_options);
      }
      return Satisfies(constraints_, *w->scratch, master_);
    }
    if (ind) {
      Database mu_t(db_.schema_ptr());
      for (const auto& [relation, tuple] : tuples) {
        mu_t.InsertUnchecked(relation, tuple);
      }
      return Satisfies(constraints_, mu_t, master_);
    }
    Database extended = db_;
    for (const auto& [relation, tuple] : tuples) {
      extended.InsertUnchecked(relation, tuple);
    }
    return Satisfies(constraints_, extended, master_);
  }

  Result<bool> IsCounterexample(Worker* w, const Bindings& valuation,
                                RcdpResult* result) {
    RELCOMP_ASSIGN_OR_RETURN(Tuple summary,
                             tableau_.SummaryTuple(valuation));
    if (current_answer_.Contains(summary)) return false;
    // μ(T) \ D; if empty, μ(u) would already be in Q(D).
    RELCOMP_ASSIGN_OR_RETURN(auto rows, tableau_.Instantiate(valuation));
    std::vector<std::pair<std::string, Tuple>> delta;
    std::set<std::pair<std::string, Tuple>> seen;
    for (auto& [relation, tuple] : rows) {
      if (!db_.Contains(relation, tuple) &&
          seen.emplace(relation, tuple).second) {
        delta.emplace_back(relation, tuple);
      }
    }
    if (delta.empty()) return false;
    bool satisfied = false;
    if (!w->session.has_value() &&
        options_.ind_fast_path && constraints_.IsIndsOnly()) {
      // Corollary 3.4: for INDs, (D ∪ μ(T), Dm) |= V iff
      // (D, Dm) |= V (precondition) and (μ(T), Dm) |= V.
      RELCOMP_ASSIGN_OR_RETURN(satisfied, ExtensionSatisfiesV(w, rows));
    } else {
      RELCOMP_ASSIGN_OR_RETURN(satisfied, ExtensionSatisfiesV(w, delta));
    }
    if (!satisfied) return false;
    result->complete = false;
    Database delta_db(db_.schema_ptr());
    for (auto& [relation, tuple] : delta) {
      delta_db.InsertUnchecked(relation, std::move(tuple));
    }
    result->counterexample_delta = std::move(delta_db);
    result->new_answer = std::move(summary);
    return true;
  }

  const TableauQuery& tableau_;
  const Database& db_;
  const Database& master_;
  const ConstraintSet& constraints_;
  const DeltaConstraintChecker* delta_checker_;
  const CompiledConstraintCheck* compiled_;
  const Relation& current_answer_;
  const ActiveDomain& adom_;
  const RcdpOptions& options_;
};

/// Fingerprint of the problem instance an RCDP checkpoint belongs to;
/// resume refuses checkpoints minted for a different instance.
uint64_t RcdpFingerprint(const AnyQuery& query, const Database& db,
                         const Database& master,
                         const ConstraintSet& constraints) {
  return CheckpointFingerprint(
      {FingerprintString("rcdp"), FingerprintString(query.ToString()),
       constraints.constraints().size(), db.TotalTuples(),
       master.TotalTuples()});
}

}  // namespace

const char* VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kComplete: return "COMPLETE";
    case Verdict::kIncomplete: return "INCOMPLETE";
    case Verdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

std::string RcdpResult::ToString() const {
  if (verdict == Verdict::kUnknown) {
    std::string out = StrCat("UNKNOWN (", exhaustion.ToString(), "; ",
                             stats.bindings_tried, " search steps)");
    if (checkpoint.has_value()) {
      out += StrCat("\ncheckpoint: ", checkpoint->Serialize());
    }
    return out;
  }
  if (complete) {
    return StrCat("COMPLETE (", stats.bindings_tried,
                  " search steps, ", stats.totals_delivered,
                  " full valuations examined)");
  }
  std::string out = "INCOMPLETE";
  if (new_answer.has_value()) {
    out += StrCat("; adding Δ yields new answer ", new_answer->ToString());
  }
  if (counterexample_delta.has_value()) {
    out += StrCat("\nΔ =\n", counterexample_delta->ToString());
  }
  return out;
}

Result<RcdpResult> DecideRcdp(const AnyQuery& query, const Database& db,
                              const Database& master,
                              const ConstraintSet& constraints,
                              const RcdpOptions& options) {
  RELCOMP_RETURN_NOT_OK(GateLanguages(query, constraints));
  RELCOMP_RETURN_NOT_OK(query.Validate(db.schema()));
  RELCOMP_RETURN_NOT_OK(constraints.Validate(db.schema(), master.schema()));
  if (!options.assume_partially_closed) {
    RELCOMP_ASSIGN_OR_RETURN(bool closed, Satisfies(constraints, db, master));
    if (!closed) {
      return Status::InvalidArgument(
          "D is not partially closed: (D, Dm) does not satisfy V");
    }
  }

  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                           query.ToUnion(options.max_union_disjuncts));
  RcdpResult result;
  result.complete = true;

  EvalCounters main_counters;
  ConjunctiveEvalOptions main_eval;
  main_eval.use_indexes = options.use_indexes;
  main_eval.use_composite_indexes = options.use_composite_indexes;
  main_eval.counters = &main_counters;
  RELCOMP_ASSIGN_OR_RETURN(Relation current_answer,
                           EvalUnion(ucq, db, main_eval));

  // Build the incremental constraint checker once (skipped for the
  // IND fast path, which checks μ(T) in isolation and is cheaper).
  std::optional<DeltaConstraintChecker> delta_checker;
  const bool use_ind_fast_path =
      options.ind_fast_path && constraints.IsIndsOnly();
  if (options.delta_constraint_check && !use_ind_fast_path) {
    RELCOMP_ASSIGN_OR_RETURN(
        DeltaConstraintChecker checker,
        DeltaConstraintChecker::Make(constraints, db.schema_ptr(),
                                     options.max_union_disjuncts));
    delta_checker = std::move(checker);
  }

  // Without a delta session, per-candidate checks go through a
  // CompiledConstraintCheck (UCQ unfoldings and master-side target
  // projections materialized once, here) over the scratch overlay.
  // If compilation fails — an ∃FO+ constraint whose unfolding blows
  // the cap — candidates fall back to uncompiled overlay checks.
  std::optional<CompiledConstraintCheck> compiled;
  if (options.use_overlay && !delta_checker.has_value()) {
    Result<CompiledConstraintCheck> c = CompiledConstraintCheck::Make(
        constraints, master, options.max_union_disjuncts);
    if (c.ok()) {
      compiled = std::move(*c);
    } else if (c.status().code() != StatusCode::kResourceExhausted &&
               c.status().code() != StatusCode::kUnsupported) {
      return c.status();
    }
  }

  std::map<std::string, std::set<size_t>> sensitive;
  if (options.collapse_dont_care) {
    RELCOMP_ASSIGN_OR_RETURN(
        sensitive,
        SensitivePositions(constraints, options.max_union_disjuncts));
  }

  // Resume bookkeeping: skip the disjuncts (and, within the checkpoint
  // disjunct, the ranks) a prior interrupted run already searched. The
  // fingerprint refuses checkpoints minted for a different instance.
  const uint64_t fingerprint = RcdpFingerprint(query, db, master,
                                               constraints);
  size_t start_disjunct = 0;
  size_t start_rank = 0;
  if (options.resume != nullptr) {
    if (options.resume->decider != "rcdp") {
      return Status::InvalidArgument(
          StrCat("cannot resume RCDP from a '", options.resume->decider,
                 "' checkpoint"));
    }
    if (options.resume->fingerprint != 0 &&
        options.resume->fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "checkpoint fingerprint mismatch: resume requires the identical "
          "query, constraints, and database instances");
    }
    start_disjunct = options.resume->disjunct;
    start_rank = options.resume->rank;
  }

  bool exhausted = false;
  std::set<Value> query_constants = ucq.Constants();
  const std::vector<ConjunctiveQuery>& disjuncts = ucq.disjuncts();
  for (size_t i = start_disjunct; i < disjuncts.size(); ++i) {
    // Incremental plan: pass over certified-clean disjuncts without
    // claiming decision points — the numbering matches a from-scratch
    // run resumed past them.
    if (options.plan != nullptr && i < options.plan->skip.size() &&
        options.plan->skip[i]) {
      continue;
    }
    const ConjunctiveQuery& disjunct = disjuncts[i];
    RELCOMP_ASSIGN_OR_RETURN(
        TableauQuery tableau,
        TableauQuery::FromConjunctive(disjunct, db.schema()));
    if (!tableau.satisfiable()) continue;
    // One fresh value per variable of this disjunct's tableau
    // (the paper's New); the proof of Prop 3.3 shows this suffices.
    // Interner growth from the fresh pool is charged to the budget.
    const size_t interner_before =
        options.budget != nullptr ? db.interner()->ApproxBytes() : 0;
    ActiveDomain adom = ActiveDomain::Build(
        db, master, query_constants, constraints,
        std::max<size_t>(1, tableau.variables().size()));
    // Finite variable domains can list values outside Adom; intern them
    // too (still pre-freeze, charged through the same byte delta) so the
    // id-plane search resolves every candidate through the interner.
    if (db.interner() != nullptr) {
      for (const std::string& var : tableau.variables()) {
        std::shared_ptr<const Domain> dom = tableau.VariableDomain(var);
        if (dom != nullptr && dom->is_finite()) {
          for (const Value& v : dom->finite_values()) {
            db.interner()->Intern(v);
          }
        }
      }
    }
    if (options.budget != nullptr) {
      size_t interner_after = db.interner()->ApproxBytes();
      if (interner_after > interner_before) {
        options.budget->TrackBytes(interner_after - interner_before);
      }
    }
    std::map<std::string, std::vector<Value>> overrides;
    if (options.collapse_dont_care) {
      overrides = CollapseOverrides(tableau, db, adom, sensitive);
    }
    DisjunctSearch search(tableau, db, master, constraints,
                          delta_checker.has_value() ? &*delta_checker
                                                    : nullptr,
                          compiled.has_value() ? &*compiled : nullptr,
                          current_answer, adom, options);
    DisjunctSearch::Exhaustion ex;
    size_t disjunct_start_rank = i == start_disjunct ? start_rank : 0;
    if (options.plan != nullptr &&
        i == options.plan->resume_rank_disjunct) {
      disjunct_start_rank =
          std::max(disjunct_start_rank, options.plan->resume_rank);
    }
    RELCOMP_ASSIGN_OR_RETURN(
        bool found,
        search.Run(&result, overrides.empty() ? nullptr : &overrides,
                   disjunct_start_rank, &ex));
    if (ex.exhausted) {
      // Graceful degradation: the verdict is unknown, the exhaustion
      // reason and a resume checkpoint travel with the result, and the
      // call itself succeeds.
      exhausted = true;
      result.verdict = Verdict::kUnknown;
      result.complete = false;
      result.exhaustion = ExhaustionFromStatus(ex.status, options.budget);
      SearchCheckpoint ckpt;
      ckpt.decider = "rcdp";
      ckpt.disjunct = i;
      ckpt.rank = ex.next_rank;
      ckpt.fingerprint = fingerprint;
      result.checkpoint = std::move(ckpt);
      break;
    }
    if (found) {
      result.counterexample_disjunct = i;
      break;
    }
  }
  if (!exhausted) {
    result.verdict =
        result.complete ? Verdict::kComplete : Verdict::kIncomplete;
  }
  result.stats.index_probes += main_counters.index_probes;
  result.stats.composite_probes += main_counters.composite_probes;
  result.stats.relation_scans += main_counters.relation_scans;
  result.stats.overlay_hits += main_counters.overlay_hits;
  return result;
}

std::string ChaseResult::ToString() const {
  if (verdict == Verdict::kComplete) {
    return StrCat("CHASED TO COMPLETE in ", rounds, " rounds");
  }
  std::string out = StrCat("CHASE UNKNOWN after ", rounds, " rounds (",
                           exhaustion.ToString(), ")");
  if (checkpoint.has_value()) {
    out += StrCat("\ncheckpoint: ", checkpoint->Serialize());
  }
  return out;
}

Result<ChaseResult> ChaseToCompleteness(const AnyQuery& query,
                                        const Database& db,
                                        const Database& master,
                                        const ConstraintSet& constraints,
                                        size_t max_rounds,
                                        const RcdpOptions& options) {
  ChaseResult out{db};
  // Resume: continue at the interrupted round, threading the embedded
  // inner RCDP checkpoint into that round's DecideRcdp call. The
  // caller passes the partially chased database of the interrupted run
  // back as `db`, so round numbering and the inner fingerprint line up.
  size_t start_round = 0;
  std::optional<SearchCheckpoint> inner_resume;
  if (options.resume != nullptr) {
    if (options.resume->decider != "chase") {
      return Status::InvalidArgument(
          StrCat("cannot resume a chase from a '", options.resume->decider,
                 "' checkpoint"));
    }
    start_round = options.resume->disjunct;
    if (!options.resume->payload.empty()) {
      RELCOMP_ASSIGN_OR_RETURN(
          SearchCheckpoint inner,
          SearchCheckpoint::Deserialize(options.resume->payload));
      inner_resume = std::move(inner);
    }
  }

  auto make_checkpoint = [&](size_t round,
                             const std::optional<SearchCheckpoint>& inner) {
    SearchCheckpoint ckpt;
    ckpt.decider = "chase";
    ckpt.disjunct = round;
    ckpt.rank = 0;
    // The chased database changes between rounds, so the outer
    // fingerprint covers only the fixed inputs; the embedded inner
    // checkpoint re-checks the full instance on resume.
    ckpt.fingerprint = CheckpointFingerprint(
        {FingerprintString("chase"), FingerprintString(query.ToString()),
         constraints.constraints().size(), master.TotalTuples()});
    if (inner.has_value()) ckpt.payload = inner->Serialize();
    return ckpt;
  };

  RcdpOptions round_options = options;
  // A certificate plan (or closure waiver) speaks about one fixed
  // instance; the chase mutates D every round, so neither transfers.
  round_options.plan = nullptr;
  round_options.assume_partially_closed = false;
  for (size_t round = start_round; round < max_rounds; ++round) {
    if (options.budget != nullptr) {
      // One counted decision point per chase round.
      Status st = options.budget->OnDecisionPoint();
      if (!st.ok()) {
        out.verdict = Verdict::kUnknown;
        out.rounds = round;
        out.exhaustion = ExhaustionFromStatus(st, options.budget);
        out.checkpoint = make_checkpoint(round, inner_resume);
        return out;
      }
    }
    round_options.resume =
        inner_resume.has_value() ? &*inner_resume : nullptr;
    RELCOMP_ASSIGN_OR_RETURN(
        RcdpResult result,
        DecideRcdp(query, out.db, master, constraints, round_options));
    inner_resume.reset();
    if (result.verdict == Verdict::kUnknown) {
      // The round's RCDP search ran out of budget: keep every
      // completed round's delta and embed the inner checkpoint.
      out.verdict = Verdict::kUnknown;
      out.rounds = round;
      out.exhaustion = result.exhaustion;
      out.checkpoint = make_checkpoint(round, result.checkpoint);
      return out;
    }
    if (result.complete) {
      out.verdict = Verdict::kComplete;
      out.rounds = round;
      return out;
    }
    if (options.budget != nullptr) {
      // Charge the applied delta's footprint: the chased database
      // keeps growing by it.
      size_t delta_bytes = 0;
      const Database& delta = *result.counterexample_delta;
      for (const std::string& name : delta.schema().relation_names()) {
        for (const Tuple& t : delta.Get(name)) {
          delta_bytes += t.ApproxBytes();
        }
      }
      options.budget->TrackBytes(delta_bytes);
    }
    out.db.UnionWith(*result.counterexample_delta);
  }
  // The max_rounds cap shares the graceful kUnknown path (kind
  // kRounds): the query may not be relatively complete at all — check
  // with DecideRcqp — but the partial chase is still sound.
  out.verdict = Verdict::kUnknown;
  out.rounds = max_rounds;
  out.exhaustion.kind = BudgetKind::kRounds;
  out.exhaustion.detail =
      StrCat("database still incomplete after ", max_rounds,
             " chase rounds (the query may not be relatively complete; "
             "check with DecideRcqp)");
  out.checkpoint = make_checkpoint(max_rounds, std::nullopt);
  return out;
}

}  // namespace relcomp
