#ifndef RELCOMP_COMPLETENESS_RCQP_H_
#define RELCOMP_COMPLETENESS_RCQP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "completeness/rcdp.h"
#include "constraints/containment_constraint.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Options for the RCQP decider.
struct RcqpOptions {
  /// Witness-search iterative-deepening cap: the maximum number of
  /// tuples in a candidate witness database (general-constraints path).
  size_t max_witness_tuples = 3;
  /// Cap on the candidate tuple pool built from tableau-row
  /// instantiations over the active domain.
  size_t max_pool_size = 4096;
  /// Budget on candidate witness databases examined.
  size_t max_candidates = 100000;
  /// Budget on valuations examined by the IND realizability check and
  /// witness construction (0 = unlimited).
  size_t max_valuations = 0;
  /// General path: before the pool search, try to build a witness by
  /// chasing the empty database to completeness (each round adds an
  /// RCDP counterexample). Often finds multi-tuple witnesses the
  /// size-bounded pool search would miss. 0 disables.
  size_t max_chase_rounds = 32;
  /// Options for the inner RCDP checks. The execution budget for the
  /// whole RCQP call rides here (rcdp.budget): the IND realizability
  /// probes, the chase rounds, the pool-candidate judgments, and every
  /// inner RCDP search all claim decision points on that one budget.
  RcdpOptions rcdp;
  /// Resume point from a prior kUnknown RcqpResult (not owned; may be
  /// null). The checkpoint's decider names the phase it was minted in
  /// ("rcqp-ind", "rcqp-empty", "rcqp-chase", "rcqp-pool"); the
  /// resumed call replays the cheap syntactic phases, skips the work
  /// the checkpoint covers, and continues — the final verdict and
  /// witness are bit-for-bit those of an uninterrupted run. Note
  /// rcdp.resume is NOT consulted by DecideRcqp; inner RCDP resume
  /// state travels inside the checkpoint payload.
  const SearchCheckpoint* resume = nullptr;
};

/// Per-head-variable boundedness diagnosis for the IND case (conditions
/// E3/E4 of Section 4.2.2) — also the Section 2.3 guidance for which
/// master data is missing.
struct VariableBoundedness {
  std::string variable;
  bool finite_domain = false;  // E3
  bool ind_bounded = false;    // E4: some IND projects a column it occurs in
  bool bounded() const { return finite_domain || ind_bounded; }
};

/// The decision plus evidence.
struct RcqpResult {
  /// kComplete: RCQ(Q, Dm, V) is nonempty (exists). kIncomplete: it is
  /// provably empty (exhaustive NotExists). kUnknown: a budget/cancel
  /// exhaustion — or a non-exhaustive pool search — stopped short of a
  /// decision; `exhaustion` says why and `checkpoint` (when present)
  /// resumes the search.
  Verdict verdict = Verdict::kIncomplete;
  /// Is RCQ(Q, Dm, V) nonempty?
  bool exists = false;
  /// When exists and a witness was constructed: a database complete for
  /// Q relative to (Dm, V). Verified with the RCDP decider before being
  /// returned (general path) or built per the Prop 4.3 proof (INDs).
  std::optional<Database> witness;
  /// IND path: head variables that block completeness (E3/E4 failures)
  /// of some realizable disjunct. Empty when exists.
  std::vector<VariableBoundedness> unbounded_variables;
  /// True when a NotExists verdict is exhaustive (always for the IND
  /// path; for the general path only when the small-model witness space
  /// was fully enumerated within the budgets).
  bool exhaustive = true;
  /// Which path decided: "ind-syntactic", "all-finite-domains",
  /// "empty-witness", "chase-witness", "witness-search",
  /// "no-partially-closed-database", "unsatisfiable-query".
  std::string method;
  /// kUnknown only: why the search stopped. Also set (with verdict
  /// kComplete) when only the best-effort witness construction — not
  /// the decision itself — ran out of budget; `witness` is then absent.
  ExhaustionInfo exhaustion;
  /// kUnknown with a budget exhaustion: where to pick the search up
  /// (pass as RcqpOptions::resume with a rearmed or fresh budget).
  std::optional<SearchCheckpoint> checkpoint;

  std::string ToString() const;
};

/// Decides RCQP(L_Q, L_C): does a partially closed database complete
/// for Q relative to (Dm, V) exist?
///
/// Supported (decidable) cells of the paper's Table II: L_Q in
/// {CQ, UCQ, ∃FO+} and L_C in {INDs, CQ, UCQ, ∃FO+} — Theorem 4.5. The
/// IND case is decided exactly by the syntactic characterization of
/// Prop 4.3 (coNP). The general case runs the small-model witness
/// search justified by Prop 4.2 / Cor 4.4 (NEXPTIME); within budgets a
/// NotExists verdict is exact iff `exhaustive` is set. FO/FP cells are
/// undecidable (Theorem 4.1) and return kUnsupported.
/// `db_schema` is the schema R of the (hypothetical) databases, since
/// unlike RCDP there is no database input to carry it.
Result<RcqpResult> DecideRcqp(const AnyQuery& query,
                              std::shared_ptr<const Schema> db_schema,
                              const Database& master,
                              const ConstraintSet& constraints,
                              const RcqpOptions& options = RcqpOptions());

/// The E3/E4 analysis by itself: per disjunct of Q, the boundedness
/// status of each head variable under the INDs of `constraints`.
/// Non-IND CCs contribute nothing (conservative).
Result<std::vector<std::vector<VariableBoundedness>>> AnalyzeIndBoundedness(
    const AnyQuery& query, const ConstraintSet& constraints,
    const Schema& db_schema);

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_RCQP_H_
