#ifndef RELCOMP_COMPLETENESS_INCREMENTAL_H_
#define RELCOMP_COMPLETENESS_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "completeness/rcdp.h"
#include "constraints/containment_constraint.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "relational/delta_batch.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// --- Content fingerprints -------------------------------------------
///
/// The durable checkpoints fingerprint an instance by tuple *counts*
/// (cheap, but blind to content swaps); the incremental layer needs to
/// recognize content. FingerprintDatabase XOR-folds a per-tuple FNV
/// hash over (relation name, value tags, value bytes): commutative, so
/// it is independent of insertion order and maintainable in O(|Δ|)
/// under updates, and a single tuple swap flips it.
uint64_t FingerprintTuple(std::string_view relation, const Tuple& tuple);
uint64_t FingerprintDatabase(const Database& db);

/// Strong identity of a whole RCDP instance (Q, V, D, Dm): the verdict
/// cache key, and the "nothing changed" fast path of RecertifyRcdp.
uint64_t FingerprintRcdpInstance(const AnyQuery& query, const Database& db,
                                 const Database& master,
                                 const ConstraintSet& constraints);

/// Fingerprint of the semantic decider options: the flags that can
/// change the verdict, the evidence, or the decision-point numbering
/// (prune, ind_fast_path, delta_constraint_check, collapse_dont_care,
/// max_bindings, max_union_disjuncts). Representation-only toggles
/// (indexes, arena, overlay) and num_threads are excluded — verdicts
/// are bit-for-bit thread-count-invariant, so certificates transfer
/// across thread counts.
uint64_t FingerprintRcdpOptions(const RcdpOptions& options);

/// --- Dependency graph -----------------------------------------------
///
/// Compiled once per spec from the CompiledCq read sets: which D
/// relations each UCQ disjunct of Q reads, and which D relations /
/// which Dm target each containment constraint touches. A delta report
/// is then mapped to "dirty" work units: a disjunct whose read set
/// misses every changed relation keeps its certified outcome.
struct RcdpDependencyGraph {
  /// disjunct_relations[i]: sorted distinct D-relations disjunct i of
  /// the UCQ unfolding of Q reads.
  std::vector<std::vector<std::string>> disjunct_relations;

  struct ConstraintDeps {
    /// Sorted distinct D-relations the CC body (all disjuncts of its
    /// UCQ unfolding) reads.
    std::vector<std::string> body_relations;
    /// Target side: π over this Dm relation, or ∅.
    bool empty_target = true;
    std::string master_relation;
  };
  /// One entry per constraint of V, in ConstraintSet order.
  std::vector<ConstraintDeps> constraint_deps;

  static Result<RcdpDependencyGraph> Build(const AnyQuery& query,
                                           const ConstraintSet& constraints,
                                           size_t max_union_disjuncts);

  std::string ToString() const;
};

/// --- Certificates ---------------------------------------------------
///
/// A certified verdict: the RcdpResult's decision together with the
/// content fingerprints it was proved under and enough evidence to
/// re-serve or resume it. Serialize/Deserialize round-trip through the
/// `relcomp-cert/1` text format (the CheckpointStore verdict payload);
/// Deserialize is hostile-input safe — any malformed byte yields
/// kInvalidArgument, never UB.
struct RcdpCertificate {
  uint64_t instance_fp = 0;  ///< FingerprintRcdpInstance at proof time.
  uint64_t adom_fp = 0;      ///< Active-domain base constant set.
  uint64_t answer_fp = 0;    ///< Content of Q(D).
  uint64_t options_fp = 0;   ///< FingerprintRcdpOptions.
  size_t num_disjuncts = 0;  ///< UCQ unfolding width of Q.
  Verdict verdict = Verdict::kComplete;

  /// kIncomplete only: which disjunct produced the counterexample, the
  /// extension Δ as (relation, tuple) pairs, and the answer gained.
  size_t cex_disjunct = 0;
  std::vector<std::pair<std::string, Tuple>> cex_delta;
  std::optional<Tuple> cex_answer;

  /// kUnknown only: where the interrupted search stopped. Every
  /// disjunct below checkpoint.disjunct — and every rank of disjunct
  /// checkpoint.disjunct below checkpoint.rank — is certified
  /// counterexample-free for the fingerprinted instance.
  std::optional<SearchCheckpoint> checkpoint;

  std::string Serialize() const;
  static Result<RcdpCertificate> Deserialize(std::string_view text);
  bool operator==(const RcdpCertificate& other) const;
  std::string ToString() const;
};

/// A decider outcome paired with its certificate.
struct RcdpCertified {
  RcdpResult result;
  RcdpCertificate certificate;
};

/// DecideRcdp plus certificate assembly: runs the full decider and
/// fingerprints the instance it decided.
Result<RcdpCertified> CertifyRcdp(const AnyQuery& query, const Database& db,
                                  const Database& master,
                                  const ConstraintSet& constraints,
                                  const RcdpOptions& options = RcdpOptions());

/// Incremental re-certification: `db` / `master` are the POST-update
/// instances, `certificate` was issued for the pre-update instances,
/// and `report` describes what an ApplyDeltaBatch actually changed
/// (pass a default-constructed report to resume/re-serve an unchanged
/// instance). The result is bit-for-bit what CertifyRcdp would return
/// on the post-update instances, obtained by re-searching only the
/// dirty portion:
///
///  - instance fingerprint unchanged → the certificate re-serves its
///    verdict (kUnknown resumes from its embedded checkpoint);
///  - targeted closure recheck: under the monotone constraint
///    languages a D-delete or Dm-insert can never break (D, Dm) |= V,
///    so only constraints whose body reads an inserted-into D relation
///    or whose Dm target lost tuples are re-checked — a violation
///    fails with the decider's exact "not partially closed" error;
///  - active-domain, answer, or constraint-relevant content changes
///    invalidate everything (the search space itself moved): full
///    re-certify;
///  - otherwise only disjuncts whose read set intersects the changed D
///    relations re-run, driven through RcdpOptions::plan so skipped
///    disjuncts claim no decision points; an untouched kIncomplete
///    counterexample (no dirty disjunct before it) is re-served with
///    zero search, and an untouched kUnknown frontier resumes at its
///    certified rank.
///
/// Budgets compose: a kUnknown outcome carries a resumable checkpoint,
/// and re-certifying with the new certificate and an empty report
/// continues the interrupted incremental run.
Result<RcdpCertified> RecertifyRcdp(const AnyQuery& query, const Database& db,
                                    const Database& master,
                                    const ConstraintSet& constraints,
                                    const RcdpCertificate& certificate,
                                    const DeltaApplyReport& report,
                                    const RcdpOptions& options = RcdpOptions());

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_INCREMENTAL_H_
