#ifndef RELCOMP_COMPLETENESS_BRUTE_FORCE_H_
#define RELCOMP_COMPLETENESS_BRUTE_FORCE_H_

#include <optional>
#include <vector>

#include "constraints/containment_constraint.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Definition-chasing oracles for the two decision problems. They
/// enumerate extensions/databases over a bounded value universe and
/// check the definitions directly — no tableaux, no characterizations —
/// so they are a meaningful cross-check for the real deciders
/// (property tests), and they also apply to FO and FP queries (as
/// bounded semi-decision procedures for the undecidable cells).
struct BruteForceOptions {
  /// Value universe. When empty it is synthesized from the constants of
  /// D, Dm, Q, V plus `extra_fresh` fresh values.
  std::vector<Value> universe;
  size_t extra_fresh = 2;
  /// RCDP: maximum number of tuples added to D per candidate extension.
  size_t max_delta_tuples = 2;
  /// RCQP: maximum number of tuples of a candidate database.
  size_t max_database_tuples = 2;
  /// Global step budget across candidate checks.
  size_t max_steps = 2000000;
};

/// Outcome of a brute-force check. `decided` is false when the budget
/// was hit before the bounded space was exhausted.
struct BruteForceRcdpResult {
  bool complete = true;
  /// When incomplete: an extension that changes the answer.
  std::optional<Database> counterexample_delta;
  size_t candidates_checked = 0;
};

/// Is D complete for Q relative to (Dm, V), judging by all extensions
/// with at most max_delta_tuples extra tuples over the universe?
/// Sound for "incomplete" always; sound for "complete" whenever the
/// universe and tuple bound cover the small-model space (which they do
/// for the decidable languages when universe ⊇ Adom ∪ New and
/// max_delta_tuples ≥ |T_Q|).
Result<BruteForceRcdpResult> BruteForceRcdp(
    const AnyQuery& query, const Database& db, const Database& master,
    const ConstraintSet& constraints,
    const BruteForceOptions& options = BruteForceOptions());

struct BruteForceRcqpResult {
  bool exists = false;
  std::optional<Database> witness;
  size_t candidates_checked = 0;
};

/// Does some database with at most max_database_tuples tuples over the
/// universe satisfy V and pass BruteForceRcdp as complete?
Result<BruteForceRcqpResult> BruteForceRcqp(
    const AnyQuery& query, std::shared_ptr<const Schema> db_schema,
    const Database& master, const ConstraintSet& constraints,
    const BruteForceOptions& options = BruteForceOptions());

/// The candidate tuple pool used by the oracles: every (relation,
/// tuple) over the universe that respects the attribute domains.
std::vector<std::pair<std::string, Tuple>> AllTuplesOver(
    const Schema& schema, const std::vector<Value>& universe);

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_BRUTE_FORCE_H_
