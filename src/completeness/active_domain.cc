#include "completeness/active_domain.h"

#include "util/str.h"

namespace relcomp {

ActiveDomain ActiveDomain::Build(const std::set<Value>& base_constants,
                                 size_t num_fresh) {
  ActiveDomain out;
  out.base_.assign(base_constants.begin(), base_constants.end());
  size_t next_id = 0;
  while (out.fresh_.size() < num_fresh) {
    Value candidate = Value::Str(StrCat("_new$", next_id++));
    if (base_constants.count(candidate) > 0) continue;
    out.fresh_set_.insert(candidate);
    out.fresh_.push_back(std::move(candidate));
  }
  return out;
}

ActiveDomain ActiveDomain::Build(const Database& db, const Database& master,
                                 const std::set<Value>& query_constants,
                                 const ConstraintSet& constraints,
                                 size_t num_fresh) {
  std::set<Value> base = query_constants;
  db.CollectConstants(&base);
  master.CollectConstants(&base);
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    std::set<Value> cc_consts = cc.query().Constants();
    base.insert(cc_consts.begin(), cc_consts.end());
  }
  ActiveDomain out = Build(base, num_fresh);
  // Register the whole fresh pool in the database family's interner up
  // front, in the reserved high id range: valuations stage tuples mixing
  // D-values and fresh values, and pre-interning keeps the matcher's
  // IdOf probes hits without growing the low (data) id space. Reserving
  // the range in one step also makes the id layout independent of when
  // (or on which worker) a fresh value is first used, which is what the
  // parallel search relies on to keep the interner read-only post-fork.
  if (db.interner() != nullptr) {
    db.interner()->ReserveFreshRange(out.fresh());
    // Intern the base constants too: master, query, and constraint
    // constants need not occur in D, but the id-plane valuation search
    // resolves every candidate through this family's interner, and
    // pre-interning here (before any freeze) keeps the per-unit
    // enumerators strictly read-only. Growth is charged to the budget
    // by the decider's byte-delta accounting around this call.
    for (const Value& v : out.base()) db.interner()->Intern(v);
  }
  return out;
}

bool ActiveDomain::IsFresh(const Value& v) const {
  return fresh_set_.count(v) > 0;
}

std::vector<Value> ActiveDomain::CandidatesFor(const Domain& domain) const {
  if (domain.is_finite()) return domain.finite_values();
  std::vector<Value> out = base_;
  out.insert(out.end(), fresh_.begin(), fresh_.end());
  return out;
}

}  // namespace relcomp
