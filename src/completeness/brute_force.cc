#include "completeness/brute_force.h"

#include <functional>
#include <set>

#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "util/str.h"

namespace relcomp {
namespace {

std::vector<Value> BuildUniverse(const Database& db, const Database& master,
                                 const AnyQuery& query,
                                 const ConstraintSet& constraints,
                                 size_t extra_fresh) {
  std::set<Value> values = query.Constants();
  db.CollectConstants(&values);
  master.CollectConstants(&values);
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    std::set<Value> cs = cc.query().Constants();
    values.insert(cs.begin(), cs.end());
  }
  size_t next = 0;
  size_t added = 0;
  while (added < extra_fresh) {
    Value fresh = Value::Str(StrCat("_bf$", next++));
    if (values.insert(fresh).second) ++added;
  }
  return std::vector<Value>(values.begin(), values.end());
}

/// Enumerates tuples over `universe` for one relation schema,
/// respecting finite attribute domains.
void TuplesForRelation(const RelationSchema& rs,
                       const std::vector<Value>& universe,
                       std::vector<std::pair<std::string, Tuple>>* out) {
  std::vector<Value> current(rs.arity());
  std::function<void(size_t)> recurse = [&](size_t i) {
    if (i == rs.arity()) {
      out->emplace_back(rs.name(), Tuple(current));
      return;
    }
    const Domain& dom = *rs.attribute(i).domain;
    if (dom.is_finite()) {
      for (const Value& v : dom.finite_values()) {
        current[i] = v;
        recurse(i + 1);
      }
    } else {
      for (const Value& v : universe) {
        current[i] = v;
        recurse(i + 1);
      }
    }
  };
  recurse(0);
}

}  // namespace

std::vector<std::pair<std::string, Tuple>> AllTuplesOver(
    const Schema& schema, const std::vector<Value>& universe) {
  std::vector<std::pair<std::string, Tuple>> out;
  for (const std::string& name : schema.relation_names()) {
    TuplesForRelation(*schema.FindRelation(name), universe, &out);
  }
  return out;
}

Result<BruteForceRcdpResult> BruteForceRcdp(const AnyQuery& query,
                                            const Database& db,
                                            const Database& master,
                                            const ConstraintSet& constraints,
                                            const BruteForceOptions& options) {
  std::vector<Value> universe =
      options.universe.empty()
          ? BuildUniverse(db, master, query, constraints,
                          options.extra_fresh)
          : options.universe;
  // Candidate tuples not already in D.
  std::vector<std::pair<std::string, Tuple>> pool;
  for (auto& entry : AllTuplesOver(db.schema(), universe)) {
    if (!db.Contains(entry.first, entry.second)) {
      pool.push_back(std::move(entry));
    }
  }
  RELCOMP_ASSIGN_OR_RETURN(Relation base_answer, Evaluate(query, db));

  BruteForceRcdpResult result;
  std::vector<size_t> chosen;
  Status inner;
  bool done = false;
  // Candidate extensions are staged on one overlay over D — no database
  // copies in the enumeration loop; Δ is materialized only for the
  // counterexample actually returned.
  DatabaseOverlay view(&db);
  std::function<void(size_t, size_t)> search = [&](size_t start,
                                                   size_t remaining) {
    if (done) return;
    if (remaining == 0) {
      if (++result.candidates_checked > options.max_steps) {
        inner = Status::ResourceExhausted(
            "brute-force RCDP exceeded its step budget");
        done = true;
        return;
      }
      view.Clear();
      for (size_t idx : chosen) {
        view.Add(pool[idx].first, pool[idx].second);
      }
      Result<bool> closed = Satisfies(constraints, view, master);
      if (!closed.ok()) {
        inner = closed.status();
        done = true;
        return;
      }
      if (!*closed) return;
      Result<Relation> answer = Evaluate(query, view);
      if (!answer.ok()) {
        inner = answer.status();
        done = true;
        return;
      }
      if (*answer != base_answer) {
        Database delta(db.schema_ptr());
        for (size_t idx : chosen) {
          delta.InsertUnchecked(pool[idx].first, pool[idx].second);
        }
        result.complete = false;
        result.counterexample_delta = std::move(delta);
        done = true;
      }
      return;
    }
    for (size_t i = start; i < pool.size(); ++i) {
      chosen.push_back(i);
      search(i + 1, remaining - 1);
      chosen.pop_back();
      if (done) return;
    }
  };
  for (size_t size = 1; size <= options.max_delta_tuples && !done; ++size) {
    search(0, size);
  }
  RELCOMP_RETURN_NOT_OK(inner);
  return result;
}

Result<BruteForceRcqpResult> BruteForceRcqp(
    const AnyQuery& query, std::shared_ptr<const Schema> db_schema,
    const Database& master, const ConstraintSet& constraints,
    const BruteForceOptions& options) {
  Database empty(db_schema);
  std::vector<Value> universe =
      options.universe.empty()
          ? BuildUniverse(empty, master, query, constraints,
                          options.extra_fresh)
          : options.universe;
  std::vector<std::pair<std::string, Tuple>> pool =
      AllTuplesOver(*db_schema, universe);

  BruteForceRcqpResult result;
  std::vector<size_t> chosen;
  Status inner;
  bool done = false;
  // Partial-closure filtering runs on an overlay over ∅; the candidate
  // database is materialized only for the (rare) closed candidates that
  // reach the nested RCDP check.
  DatabaseOverlay view(&empty);
  std::function<void(size_t, size_t)> search = [&](size_t start,
                                                   size_t remaining) {
    if (done) return;
    if (remaining == 0) {
      ++result.candidates_checked;
      view.Clear();
      for (size_t idx : chosen) {
        view.Add(pool[idx].first, pool[idx].second);
      }
      Result<bool> closed = Satisfies(constraints, view, master);
      if (!closed.ok()) {
        inner = closed.status();
        done = true;
        return;
      }
      if (!*closed) return;
      Database candidate = view.Materialize();
      BruteForceOptions rcdp_options = options;
      rcdp_options.universe = universe;
      Result<BruteForceRcdpResult> rcdp =
          BruteForceRcdp(query, candidate, master, constraints, rcdp_options);
      if (!rcdp.ok()) {
        inner = rcdp.status();
        done = true;
        return;
      }
      if (rcdp->complete) {
        result.exists = true;
        result.witness = std::move(candidate);
        done = true;
      }
      return;
    }
    for (size_t i = start; i < pool.size(); ++i) {
      chosen.push_back(i);
      search(i + 1, remaining - 1);
      chosen.pop_back();
      if (done) return;
    }
  };
  for (size_t size = 0; size <= options.max_database_tuples && !done;
       ++size) {
    search(0, size);
  }
  RELCOMP_RETURN_NOT_OK(inner);
  return result;
}

}  // namespace relcomp
