#include "completeness/characterizations.h"

#include <functional>
#include <set>

#include "completeness/active_domain.h"
#include "completeness/valuation_search.h"
#include "constraints/constraint_check.h"
#include "eval/query_eval.h"
#include "tableau/tableau.h"
#include "util/str.h"

namespace relcomp {
namespace {

bool DecidableLanguage(QueryLanguage lang) {
  return lang == QueryLanguage::kCq || lang == QueryLanguage::kUcq ||
         lang == QueryLanguage::kPositive;
}

Result<std::vector<TableauQuery>> SatisfiableTableaux(const AnyQuery& query,
                                                      const Schema& schema) {
  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq, query.ToUnion(4096));
  std::vector<TableauQuery> out;
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(TableauQuery t,
                             TableauQuery::FromConjunctive(disjunct, schema));
    if (t.satisfiable()) out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

std::string BoundedDatabaseReport::ToString() const {
  if (bounded) {
    return StrCat("bounded (condition ", condition, " holds)");
  }
  std::string out = StrCat("NOT bounded: condition ", condition,
                           " fails at disjunct ", disjunct);
  if (violating_valuation.has_value()) {
    out += StrCat(" with valuation ", violating_valuation->ToString());
  }
  return out;
}

Result<BoundedDatabaseReport> CheckBoundedDatabase(
    const AnyQuery& query, const Database& db, const Database& master,
    const ConstraintSet& constraints, size_t max_bindings) {
  if (!DecidableLanguage(query.language()) ||
      !DecidableLanguage(constraints.Language())) {
    return Status::Unsupported(
        "bounded-database characterizations cover CQ/UCQ/EFO+ only");
  }
  RELCOMP_ASSIGN_OR_RETURN(std::vector<TableauQuery> tableaux,
                           SatisfiableTableaux(query, db.schema()));
  RELCOMP_ASSIGN_OR_RETURN(Relation answer, Evaluate(query, db));

  BoundedDatabaseReport report;
  // An empty V is vacuously IND-only; report the C1/C2 form for it.
  const bool inds_only = !constraints.empty() && constraints.IsIndsOnly();
  const bool is_union = tableaux.size() > 1;
  report.condition = inds_only ? "C3"
                     : is_union ? "C4"
                     : answer.empty() ? "C1"
                                      : "C2";

  std::set<Value> query_constants = query.Constants();
  for (size_t i = 0; i < tableaux.size(); ++i) {
    const TableauQuery& tableau = tableaux[i];
    ActiveDomain adom = ActiveDomain::Build(
        db, master, query_constants, constraints,
        std::max<size_t>(1, tableau.variables().size()));
    ValuationEnumerator::Options options;
    options.pruned = false;            // definitional: enumerate everything
    options.symmetry_break_fresh = false;
    options.max_bindings = max_bindings;
    ValuationEnumerator enumerator(&tableau, &adom, options);
    Status inner;
    RELCOMP_RETURN_NOT_OK(enumerator.Enumerate(
        nullptr, [&](const Bindings& mu) {
          Result<Tuple> summary = tableau.SummaryTuple(mu);
          if (!summary.ok()) {
            inner = summary.status();
            return false;
          }
          if (answer.Contains(*summary)) return true;  // μ(u) ∈ Q(D)
          // Build the V-check target: μ(T) alone for INDs (C3),
          // D ∪ μ(T) otherwise (C1/C2/C4).
          Database target(db.schema_ptr());
          if (!inds_only) target = db;
          Status st = tableau.InstantiateInto(mu, &target);
          if (!st.ok()) {
            inner = st;
            return false;
          }
          Result<bool> sat = Satisfies(constraints, target, master);
          if (!sat.ok()) {
            inner = sat.status();
            return false;
          }
          if (*sat) {
            report.bounded = false;
            report.violating_valuation = mu;
            report.disjunct = static_cast<int>(i);
            return false;
          }
          return true;
        }));
    RELCOMP_RETURN_NOT_OK(inner);
    if (!report.bounded) break;
  }
  return report;
}

std::string BoundedQueryReport::ToString() const {
  std::string out = bounded ? "bounded" : "NOT bounded";
  out += StrCat(" (condition ", condition, ")");
  for (size_t d = 0; d < ind_analysis.size(); ++d) {
    for (const VariableBoundedness& vb : ind_analysis[d]) {
      out += StrCat("\n  disjunct ", d, " var ", vb.variable, ": ",
                    vb.finite_domain ? "finite-domain"
                    : vb.ind_bounded ? "IND-bounded"
                                     : "UNBOUNDED");
    }
  }
  return out;
}

Result<BoundedQueryReport> CheckAllHeadVariablesFinite(
    const AnyQuery& query, const Schema& db_schema) {
  RELCOMP_ASSIGN_OR_RETURN(std::vector<TableauQuery> tableaux,
                           SatisfiableTableaux(query, db_schema));
  BoundedQueryReport report;
  report.condition = tableaux.size() > 1 ? "E5" : "E1";
  report.bounded = true;
  for (const TableauQuery& tableau : tableaux) {
    for (const Term& t : tableau.summary()) {
      if (t.is_variable() &&
          tableau.VariableDomain(t.var())->is_infinite()) {
        report.bounded = false;
        return report;
      }
    }
  }
  return report;
}

Result<BoundedQueryReport> CheckIndBoundedQuery(
    const AnyQuery& query, const ConstraintSet& constraints,
    const Schema& db_schema) {
  if (!constraints.IsIndsOnly()) {
    return Status::InvalidArgument(
        "E3/E4 apply when every constraint is an IND");
  }
  BoundedQueryReport report;
  report.condition = "E3/E4";
  RELCOMP_ASSIGN_OR_RETURN(report.ind_analysis,
                           AnalyzeIndBoundedness(query, constraints,
                                                 db_schema));
  report.bounded = true;
  for (const auto& disjunct : report.ind_analysis) {
    for (const VariableBoundedness& vb : disjunct) {
      if (!vb.bounded()) report.bounded = false;
    }
  }
  return report;
}

Result<bool> CheckBoundingDatabaseE2(const AnyQuery& query,
                                     const Database& dv,
                                     const Database& master,
                                     const ConstraintSet& constraints,
                                     size_t max_bindings) {
  if (!DecidableLanguage(query.language()) ||
      !DecidableLanguage(constraints.Language())) {
    return Status::Unsupported(
        "bounded-query characterizations cover CQ/UCQ/EFO+ only");
  }
  RELCOMP_ASSIGN_OR_RETURN(bool dv_closed, Satisfies(constraints, dv, master));
  if (!dv_closed) return false;
  RELCOMP_ASSIGN_OR_RETURN(std::vector<TableauQuery> tableaux,
                           SatisfiableTableaux(query, dv.schema()));
  std::set<Value> query_constants = query.Constants();
  for (const TableauQuery& tableau : tableaux) {
    ActiveDomain adom = ActiveDomain::Build(
        dv, master, query_constants, constraints,
        std::max<size_t>(1, tableau.variables().size()));
    // Infinite-domain head variables of this disjunct.
    std::set<std::string> watched;
    for (const Term& t : tableau.summary()) {
      if (t.is_variable() && tableau.VariableDomain(t.var())->is_infinite()) {
        watched.insert(t.var());
      }
    }
    if (watched.empty()) continue;
    ValuationEnumerator::Options options;
    options.pruned = false;
    options.symmetry_break_fresh = false;
    options.max_bindings = max_bindings;
    ValuationEnumerator enumerator(&tableau, &adom, options);
    bool bounded = true;
    Status inner;
    RELCOMP_RETURN_NOT_OK(enumerator.Enumerate(
        nullptr, [&](const Bindings& mu) {
          // Does some watched variable escape to a fresh value while
          // (dv ∪ μ(T), Dm) |= V?
          bool escapes = false;
          for (const std::string& var : watched) {
            std::optional<Value> v = mu.Get(var);
            if (v.has_value() && adom.IsFresh(*v)) escapes = true;
          }
          if (!escapes) return true;
          Database extended = dv;
          Status st = tableau.InstantiateInto(mu, &extended);
          if (!st.ok()) {
            inner = st;
            return false;
          }
          Result<bool> sat = Satisfies(constraints, extended, master);
          if (!sat.ok()) {
            inner = sat.status();
            return false;
          }
          if (*sat) {
            bounded = false;
            return false;
          }
          return true;
        }));
    RELCOMP_RETURN_NOT_OK(inner);
    if (!bounded) return false;
  }
  return true;
}

}  // namespace relcomp
