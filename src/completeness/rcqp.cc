#include "completeness/rcqp.h"

#include <algorithm>
#include <charconv>
#include <functional>
#include <map>
#include <set>
#include <string_view>
#include <thread>

#include "completeness/active_domain.h"
#include "completeness/valuation_search.h"
#include "constraints/constraint_check.h"
#include "tableau/tableau.h"
#include "util/str.h"

namespace relcomp {
namespace {

bool DecidableLanguage(QueryLanguage lang) {
  return lang == QueryLanguage::kCq || lang == QueryLanguage::kUcq ||
         lang == QueryLanguage::kPositive;
}

Status GateLanguages(const AnyQuery& query, const ConstraintSet& constraints) {
  if (!DecidableLanguage(query.language())) {
    return Status::Unsupported(StrCat(
        "RCQP is undecidable for L_Q = ",
        QueryLanguageToString(query.language()),
        " (Theorem 4.1); see reductions/ and automata/ for the encodings"));
  }
  if (!DecidableLanguage(constraints.Language())) {
    return Status::Unsupported(StrCat(
        "RCQP is undecidable for L_C = ",
        QueryLanguageToString(constraints.Language()), " (Theorem 4.1)"));
  }
  return Status::OK();
}

/// Head variables (distinct, in order) of a tableau's summary.
std::vector<std::string> SummaryVariables(const TableauQuery& tableau) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Term& t : tableau.summary()) {
    if (t.is_variable() && seen.insert(t.var()).second) {
      out.push_back(t.var());
    }
  }
  return out;
}

/// Columns of each relation projected into master data by the IND CCs.
std::map<std::string, std::set<size_t>> IndProjectedColumns(
    const ConstraintSet& constraints) {
  std::map<std::string, std::set<size_t>> out;
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    if (!cc.IsInd() || cc.has_empty_target()) continue;
    const ConjunctiveQuery& q = *cc.query().as_cq();
    const Atom& atom = q.body().front();
    for (const Term& head_term : q.head()) {
      for (size_t col = 0; col < atom.args().size(); ++col) {
        if (atom.args()[col].is_variable() &&
            atom.args()[col].var() == head_term.var()) {
          out[atom.relation()].insert(col);
        }
      }
    }
  }
  return out;
}

/// E3/E4 for one tableau.
std::vector<VariableBoundedness> AnalyzeTableau(
    const TableauQuery& tableau,
    const std::map<std::string, std::set<size_t>>& projected) {
  std::vector<VariableBoundedness> out;
  for (const std::string& var : SummaryVariables(tableau)) {
    VariableBoundedness vb;
    vb.variable = var;
    vb.finite_domain = tableau.VariableDomain(var)->is_finite();
    for (const TableauRow& row : tableau.rows()) {
      auto it = projected.find(row.relation);
      if (it == projected.end()) continue;
      for (size_t col = 0; col < row.terms.size(); ++col) {
        if (row.terms[col].is_variable() && row.terms[col].var() == var &&
            it->second.count(col) > 0) {
          vb.ind_bounded = true;
        }
      }
    }
    out.push_back(std::move(vb));
  }
  return out;
}

/// Checks (μ(T), Dm) |= V for one valuation by staging the instantiated
/// rows on `scratch` (an overlay over an empty database over the
/// db schema), going through the compiled check when available.
Result<bool> ValuationRealizable(const TableauQuery& tableau,
                                 const Bindings& valuation,
                                 const Database& master,
                                 const ConstraintSet& constraints,
                                 const CompiledConstraintCheck* compiled,
                                 ExecutionBudget* budget,
                                 DatabaseOverlay* scratch) {
  RELCOMP_ASSIGN_OR_RETURN(auto rows, tableau.Instantiate(valuation));
  scratch->Clear();
  for (const auto& [relation, tuple] : rows) {
    scratch->Add(relation, tuple);
  }
  if (compiled != nullptr) {
    ConjunctiveEvalOptions eval_options;
    eval_options.budget = budget;
    return compiled->Satisfied(*scratch, eval_options);
  }
  return Satisfies(constraints, *scratch, master);
}

/// Resolves RcdpOptions::num_threads for the rcqp probes (same contract
/// as the RCDP decider: 0 = hardware_concurrency, use_overlay off =
/// forced serial for symmetry with the RCDP search it mirrors).
size_t EffectiveThreads(const RcdpOptions& options) {
  if (!options.use_overlay) return 1;
  if (options.num_threads == 1) return 1;
  if (options.num_threads == 0) {
    return std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return options.num_threads;
}

/// Outcome of one realizability probe: the hit (if any), or the budget
/// exhaustion point — next_rank is the resume rank within the probe's
/// own enumeration space (every lower rank was searched without a hit).
struct ProbeOutcome {
  std::optional<Bindings> hit;
  bool exhausted = false;
  size_t next_rank = 0;
  Status exhaustion_status;
};

/// Searches for a valid valuation μ of `tableau` with (μ(T), Dm) |= V.
/// Returns the valuation if found. With num_threads > 1 the enumeration
/// runs on the parallel driver: each worker stages candidates on its
/// own empty-database overlay, Dm is frozen for the concurrent phase,
/// and the returned valuation is the serial-first one (lowest work
/// unit wins). With a budget the driver switches to its fixed
/// thread-count-independent unit partition, so exhaustion and
/// next_rank are deterministic at any num_threads.
Result<ProbeOutcome> FindRealizableValuation(
    const TableauQuery& tableau, const Database& master,
    const ConstraintSet& constraints, const CompiledConstraintCheck* compiled,
    const std::shared_ptr<const Schema>& db_schema, const ActiveDomain& adom,
    size_t max_bindings, size_t num_threads, ExecutionBudget* budget,
    size_t resume_rank) {
  struct Worker {
    std::optional<Database> empty_db;
    std::optional<DatabaseOverlay> scratch;
    std::optional<Bindings> hit;
    Status error;
    bool found = false;
  };
  const size_t threads = std::max<size_t>(1, num_threads);
  std::vector<Worker> workers(threads);
  for (Worker& w : workers) {
    w.empty_db.emplace(db_schema);
    w.scratch.emplace(&*w.empty_db);
    if (budget != nullptr) w.scratch->set_memory_tracker(budget);
  }
  ValuationEnumerator::Options enum_options;
  enum_options.max_bindings = max_bindings;
  enum_options.budget = budget;
  ParallelSearchOptions parallel_options;
  parallel_options.num_threads = threads;
  parallel_options.resume_rank = resume_rank;
  auto on_total = [&](size_t wi, const Bindings& valuation) {
    Worker& w = workers[wi];
    Result<bool> sat = ValuationRealizable(tableau, valuation, master,
                                           constraints, compiled, budget,
                                           &*w.scratch);
    if (!sat.ok()) {
      w.error = sat.status();
      return false;
    }
    if (*sat) {
      w.hit = valuation;
      w.found = true;
      return false;
    }
    return true;
  };
  auto epilogue = [&](size_t wi) {
    Worker& w = workers[wi];
    ParallelUnitResult r;
    r.found = w.found;
    r.status = w.error;
    w.found = false;
    w.error = Status::OK();
    return r;
  };
  ParallelSearchOutcome outcome;
  if (threads > 1) master.Freeze();
  ParallelValuationSearch(tableau, adom, enum_options, parallel_options,
                          /*should_prune=*/nullptr, on_total, epilogue,
                          &outcome);
  if (threads > 1) master.Unfreeze();
  ProbeOutcome probe;
  if (outcome.exhausted) {
    probe.exhausted = true;
    probe.next_rank = outcome.next_rank;
    probe.exhaustion_status = outcome.failure;
    return probe;
  }
  RELCOMP_RETURN_NOT_OK(outcome.failure);
  if (outcome.found) probe.hit = workers[outcome.winner_worker].hit;
  return probe;
}

/// Builds the Prop 4.3 witness for one bounded, realizable disjunct:
/// one instantiated tableau per achievable summary tuple. Rows are
/// materialized into `witness` only for valuations that realize. The
/// witness is best-effort under a budget: by the time it is built the
/// Exists decision already stands, so exhaustion here clears
/// *witness_complete instead of failing the call.
Status AccumulateIndWitness(const TableauQuery& tableau,
                            const Database& master,
                            const ConstraintSet& constraints,
                            const CompiledConstraintCheck* compiled,
                            const ActiveDomain& adom, size_t max_bindings,
                            ExecutionBudget* budget, Database* witness,
                            bool* witness_complete) {
  ValuationEnumerator::Options options;
  options.max_bindings = max_bindings;
  options.budget = budget;
  ValuationEnumerator enumerator(&tableau, &adom, options);
  Database empty_db(witness->schema_ptr());
  DatabaseOverlay scratch(&empty_db);
  if (budget != nullptr) scratch.set_memory_tracker(budget);
  std::set<Tuple> covered;
  Status inner;
  Status enumerated = enumerator.Enumerate(
      nullptr, [&](const Bindings& valuation) {
        Result<Tuple> summary = tableau.SummaryTuple(valuation);
        if (!summary.ok()) {
          inner = summary.status();
          return false;
        }
        if (covered.count(*summary) > 0) return true;
        Result<bool> sat = ValuationRealizable(tableau, valuation, master,
                                               constraints, compiled, budget,
                                               &scratch);
        if (!sat.ok()) {
          inner = sat.status();
          return false;
        }
        if (*sat) {
          covered.insert(*summary);
          Status st = tableau.InstantiateInto(valuation, witness);
          if (!st.ok()) {
            inner = st;
            return false;
          }
        }
        return true;
      });
  if (budget != nullptr && budget->exhausted()) {
    *witness_complete = false;
    return Status::OK();
  }
  RELCOMP_RETURN_NOT_OK(enumerated);
  return inner;
}

/// All per-disjunct tableaux of a query convertible to UCQ.
Result<std::vector<TableauQuery>> QueryTableaux(const AnyQuery& query,
                                                const Schema& schema,
                                                size_t max_disjuncts) {
  RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq, query.ToUnion(max_disjuncts));
  std::vector<TableauQuery> out;
  for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(TableauQuery tableau,
                             TableauQuery::FromConjunctive(disjunct, schema));
    if (tableau.satisfiable()) out.push_back(std::move(tableau));
  }
  return out;
}

/// Candidate tuple pool: instantiations of every tableau row (query and
/// constraint tableaux alike) over the active domain. Returns true if
/// the pool was truncated by the cap. Each row gets its own slice of
/// the cap, and per-variable candidates are ordered with the query/
/// constraint constants and the fresh values first — witnesses from
/// the constructive proofs are built from exactly those values, so
/// truncation discards the least interesting tuples.
Result<bool> BuildPool(const std::vector<TableauQuery>& query_tableaux,
                       const std::vector<TableauQuery>& cc_tableaux,
                       const ActiveDomain& adom, size_t max_pool_size,
                       std::vector<std::pair<std::string, Tuple>>* pool) {
  std::set<Value> interesting;
  size_t total_rows = 0;
  for (const auto* group : {&query_tableaux, &cc_tableaux}) {
    for (const TableauQuery& tableau : *group) {
      std::set<Value> cs = tableau.Constants();
      interesting.insert(cs.begin(), cs.end());
      total_rows += tableau.rows().size();
    }
  }
  for (const Value& v : adom.fresh()) interesting.insert(v);
  const size_t per_row_budget =
      std::max<size_t>(16, max_pool_size / std::max<size_t>(1, total_rows));

  std::set<std::pair<std::string, Tuple>> seen;
  bool truncated = false;
  auto add_row = [&](const TableauQuery& tableau, const TableauRow& row) {
    // Distinct variables of this row.
    std::vector<std::string> vars;
    std::set<std::string> var_set;
    for (const Term& t : row.terms) {
      if (t.is_variable() && var_set.insert(t.var()).second) {
        vars.push_back(t.var());
      }
    }
    std::vector<std::vector<Value>> candidates;
    for (const std::string& v : vars) {
      std::vector<Value> all =
          adom.CandidatesFor(*tableau.VariableDomain(v));
      std::stable_partition(all.begin(), all.end(), [&](const Value& val) {
        return interesting.count(val) > 0;
      });
      candidates.push_back(std::move(all));
    }
    size_t row_added = 0;
    bool row_full = false;
    Bindings bindings;
    std::function<void(size_t)> recurse = [&](size_t i) {
      if (row_full) return;
      if (i == vars.size()) {
        std::optional<Tuple> t = bindings.Ground(row.terms);
        if (t.has_value()) {
          if (seen.size() >= max_pool_size) {
            truncated = true;
            row_full = true;
            return;
          }
          if (seen.emplace(row.relation, std::move(*t)).second) {
            if (++row_added >= per_row_budget) {
              truncated = true;
              row_full = true;
            }
          }
        }
        return;
      }
      for (const Value& v : candidates[i]) {
        bindings.Set(vars[i], v);
        recurse(i + 1);
        if (row_full) return;
      }
      bindings.Unset(vars[i]);
    };
    recurse(0);
  };
  for (const TableauQuery& tableau : query_tableaux) {
    for (const TableauRow& row : tableau.rows()) add_row(tableau, row);
  }
  for (const TableauQuery& tableau : cc_tableaux) {
    for (const TableauRow& row : tableau.rows()) add_row(tableau, row);
  }
  pool->assign(seen.begin(), seen.end());
  return truncated;
}

}  // namespace

std::string RcqpResult::ToString() const {
  std::string out;
  if (exists) {
    out = "RELATIVELY COMPLETE QUERY (witness exists)";
  } else if (exhaustive) {
    out = "NO RELATIVELY COMPLETE DATABASE";
  } else if (exhaustion.exhausted()) {
    out = StrCat("UNKNOWN (", exhaustion.ToString(), ")");
  } else {
    out = "NO WITNESS FOUND WITHIN BUDGET (inconclusive)";
  }
  out += StrCat(" [method: ", method, exhaustive ? "" : ", non-exhaustive",
                "]");
  if (checkpoint.has_value()) {
    out += StrCat("\ncheckpoint: ", checkpoint->Serialize());
  }
  if (!unbounded_variables.empty()) {
    out += "\nunbounded head variables: ";
    for (size_t i = 0; i < unbounded_variables.size(); ++i) {
      if (i > 0) out += ", ";
      out += unbounded_variables[i].variable;
    }
  }
  if (witness.has_value()) {
    out += StrCat("\nwitness D =\n", witness->ToString());
  }
  return out;
}

Result<std::vector<std::vector<VariableBoundedness>>> AnalyzeIndBoundedness(
    const AnyQuery& query, const ConstraintSet& constraints,
    const Schema& db_schema) {
  RELCOMP_ASSIGN_OR_RETURN(std::vector<TableauQuery> tableaux,
                           QueryTableaux(query, db_schema, 4096));
  std::map<std::string, std::set<size_t>> projected =
      IndProjectedColumns(constraints);
  std::vector<std::vector<VariableBoundedness>> out;
  out.reserve(tableaux.size());
  for (const TableauQuery& tableau : tableaux) {
    out.push_back(AnalyzeTableau(tableau, projected));
  }
  return out;
}

Result<RcqpResult> DecideRcqp(const AnyQuery& query,
                              std::shared_ptr<const Schema> db_schema,
                              const Database& master,
                              const ConstraintSet& constraints,
                              const RcqpOptions& options) {
  RELCOMP_RETURN_NOT_OK(GateLanguages(query, constraints));
  RELCOMP_RETURN_NOT_OK(query.Validate(*db_schema));
  RELCOMP_RETURN_NOT_OK(constraints.Validate(*db_schema, master.schema()));

  RcqpResult result;

  ExecutionBudget* budget = options.rcdp.budget;
  // Inner RCDP options: the caller's rcdp.resume (if any) is an RCDP
  // checkpoint, not an RCQP one — never forward it; RCQP resume state
  // travels in options.resume and its payload.
  RcdpOptions inner_rcdp = options.rcdp;
  inner_rcdp.resume = nullptr;
  const uint64_t fingerprint = CheckpointFingerprint(
      {FingerprintString("rcqp"), FingerprintString(query.ToString()),
       constraints.constraints().size(), master.TotalTuples()});
  const SearchCheckpoint* resume = options.resume;
  std::string_view resume_phase;
  if (resume != nullptr) {
    if (resume->decider != "rcqp-ind" && resume->decider != "rcqp-empty" &&
        resume->decider != "rcqp-chase" && resume->decider != "rcqp-pool") {
      return Status::InvalidArgument(
          StrCat("checkpoint decider \"", resume->decider,
                 "\" is not an RCQP phase (expected rcqp-ind, rcqp-empty, "
                 "rcqp-chase, or rcqp-pool)"));
    }
    if (resume->fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "checkpoint fingerprint mismatch: resume requires the identical "
          "query, constraints, and master database instances");
    }
    resume_phase = resume->decider;
  }
  auto make_checkpoint = [&](std::string decider, size_t disjunct, size_t rank,
                             std::string payload) {
    SearchCheckpoint ckpt;
    ckpt.decider = std::move(decider);
    ckpt.disjunct = disjunct;
    ckpt.rank = rank;
    ckpt.fingerprint = fingerprint;
    ckpt.payload = std::move(payload);
    return ckpt;
  };

  RELCOMP_ASSIGN_OR_RETURN(
      std::vector<TableauQuery> tableaux,
      QueryTableaux(query, *db_schema, options.rcdp.max_union_disjuncts));

  // If the empty database is not partially closed, no database is: the
  // decidable constraint languages are monotone, so a violation of V by
  // ∅ persists in every extension. In particular RCQ is empty.
  Database empty_db(db_schema);
  RELCOMP_ASSIGN_OR_RETURN(bool empty_closed,
                           Satisfies(constraints, empty_db, master));
  if (!empty_closed) {
    result.verdict = Verdict::kIncomplete;
    result.exists = false;
    result.exhaustive = true;
    result.method = "no-partially-closed-database";
    return result;
  }

  // Unsatisfiable query: every partially closed database is complete.
  if (tableaux.empty()) {
    result.verdict = Verdict::kComplete;
    result.exists = true;
    result.witness = empty_db;
    result.method = "unsatisfiable-query";
    return result;
  }

  // Constraint tableaux (used for fresh-value counting and the witness
  // pool). Non-CQ-convertible constraints cannot occur: the language
  // gate admits only CQ/UCQ/∃FO+.
  std::vector<TableauQuery> cc_tableaux;
  for (const ContainmentConstraint& cc : constraints.constraints()) {
    RELCOMP_ASSIGN_OR_RETURN(
        std::vector<TableauQuery> ts,
        QueryTableaux(cc.query(), *db_schema,
                      options.rcdp.max_union_disjuncts));
    for (TableauQuery& t : ts) cc_tableaux.push_back(std::move(t));
  }

  // Active domain: constants of Dm, Q, V plus one fresh value per
  // variable of the query and constraint tableaux (Section 4.2's New).
  size_t num_vars = 0;
  for (const TableauQuery& t : tableaux) num_vars += t.variables().size();
  for (const TableauQuery& t : cc_tableaux) num_vars += t.variables().size();
  ActiveDomain adom =
      ActiveDomain::Build(empty_db, master, query.Constants(), constraints,
                          std::max<size_t>(1, num_vars));

  // ---- Exact IND path (Prop 4.3 / Theorem 4.5(1)). -------------------
  if (constraints.IsIndsOnly()) {
    // INDs are CQ constraints: compile once (targets materialized from
    // Dm here) and reuse across every valuation probe below.
    std::optional<CompiledConstraintCheck> compiled;
    {
      Result<CompiledConstraintCheck> c = CompiledConstraintCheck::Make(
          constraints, master, options.rcdp.max_union_disjuncts);
      if (c.ok()) {
        compiled = std::move(*c);
      } else if (c.status().code() != StatusCode::kResourceExhausted &&
                 c.status().code() != StatusCode::kUnsupported) {
        return c.status();
      }
    }
    const CompiledConstraintCheck* compiled_ptr =
        compiled.has_value() ? &*compiled : nullptr;
    std::map<std::string, std::set<size_t>> projected =
        IndProjectedColumns(constraints);
    // Resume state: tableaux below start_tableau were already probed by
    // the interrupted run; the payload lists (comma-separated) the
    // indexes whose probe found a realizable valuation.
    size_t start_tableau = 0;
    size_t start_rank = 0;
    std::set<size_t> realized;
    if (resume != nullptr) {
      if (resume->decider != "rcqp-ind") {
        return Status::InvalidArgument(
            StrCat("checkpoint phase \"", resume->decider,
                   "\" does not apply: this instance takes the IND path"));
      }
      start_tableau = resume->disjunct;
      start_rank = resume->rank;
      if (start_tableau > tableaux.size()) {
        return Status::InvalidArgument(
            "rcqp-ind checkpoint tableau index out of range");
      }
      std::string_view payload = resume->payload;
      while (!payload.empty()) {
        const size_t comma = payload.find(',');
        const std::string_view field = payload.substr(0, comma);
        size_t idx = 0;
        auto [ptr, ec] =
            std::from_chars(field.data(), field.data() + field.size(), idx);
        if (ec != std::errc() || ptr != field.data() + field.size()) {
          return Status::InvalidArgument(
              "malformed rcqp-ind checkpoint payload");
        }
        realized.insert(idx);
        payload = comma == std::string_view::npos
                      ? std::string_view()
                      : payload.substr(comma + 1);
      }
    }
    bool all_ok = true;
    for (size_t ti = 0; ti < tableaux.size(); ++ti) {
      const TableauQuery& tableau = tableaux[ti];
      std::vector<VariableBoundedness> analysis =
          AnalyzeTableau(tableau, projected);
      bool bounded = std::all_of(
          analysis.begin(), analysis.end(),
          [](const VariableBoundedness& vb) { return vb.bounded(); });
      if (bounded) continue;
      bool realizable_found;
      if (ti < start_tableau) {
        realizable_found = realized.count(ti) > 0;
      } else {
        RELCOMP_ASSIGN_OR_RETURN(
            ProbeOutcome probe,
            FindRealizableValuation(tableau, master, constraints, compiled_ptr,
                                    db_schema, adom, options.max_valuations,
                                    EffectiveThreads(options.rcdp), budget,
                                    ti == start_tableau ? start_rank : 0));
        if (probe.exhausted) {
          result.verdict = Verdict::kUnknown;
          result.exists = false;
          result.exhaustive = false;
          result.unbounded_variables.clear();
          result.method = "ind-syntactic";
          result.exhaustion =
              ExhaustionFromStatus(probe.exhaustion_status, budget);
          std::string payload;
          for (size_t idx : realized) {
            if (!payload.empty()) payload += ',';
            payload += std::to_string(idx);
          }
          result.checkpoint = make_checkpoint("rcqp-ind", ti, probe.next_rank,
                                              std::move(payload));
          return result;
        }
        realizable_found = probe.hit.has_value();
        if (realizable_found) realized.insert(ti);
      }
      if (realizable_found) {
        all_ok = false;
        for (VariableBoundedness& vb : analysis) {
          if (!vb.bounded()) {
            result.unbounded_variables.push_back(std::move(vb));
          }
        }
      }
    }
    result.verdict = all_ok ? Verdict::kComplete : Verdict::kIncomplete;
    result.exists = all_ok;
    result.exhaustive = true;
    result.method = "ind-syntactic";
    if (all_ok) {
      // Witness per the Prop 4.3 proof: for every achievable summary
      // tuple of every disjunct, one instantiated tableau. Best-effort
      // under a budget: the Exists decision above already stands.
      Database witness(db_schema);
      bool witness_complete = true;
      for (const TableauQuery& tableau : tableaux) {
        RELCOMP_RETURN_NOT_OK(AccumulateIndWitness(
            tableau, master, constraints, compiled_ptr, adom,
            options.max_valuations, budget, &witness, &witness_complete));
        if (!witness_complete) break;
      }
      if (witness_complete) {
        result.witness = std::move(witness);
      } else if (budget != nullptr) {
        result.exhaustion =
            ExhaustionFromStatus(budget->exhaustion_status(), budget);
      }
    }
    return result;
  }

  // ---- General path (Prop 4.2 / Cor 4.4; NEXPTIME). ------------------

  if (resume_phase == "rcqp-ind") {
    return Status::InvalidArgument(
        "checkpoint phase \"rcqp-ind\" does not apply: this instance takes "
        "the general path");
  }

  // E1/E5 shortcut: every head variable of every satisfiable disjunct
  // ranges over a finite domain.
  bool all_finite = true;
  for (const TableauQuery& tableau : tableaux) {
    for (const std::string& var : SummaryVariables(tableau)) {
      if (tableau.VariableDomain(var)->is_infinite()) {
        all_finite = false;
        break;
      }
    }
    if (!all_finite) break;
  }
  if (all_finite) {
    result.verdict = Verdict::kComplete;
    result.exists = true;
    result.method = "all-finite-domains";
    // Best-effort witness: chase the empty database to completeness.
    // The Exists decision stands regardless; a budget exhaustion here
    // only costs the witness (noted in result.exhaustion).
    Result<ChaseResult> chased = ChaseToCompleteness(
        query, empty_db, master, constraints, /*max_rounds=*/256, inner_rcdp);
    if (chased.ok()) {
      if (chased->verdict == Verdict::kComplete) {
        result.witness = std::move(chased->db);
      } else if (chased->exhaustion.exhausted()) {
        result.exhaustion = chased->exhaustion;
      }
    }
    return result;
  }

  // Empty-database witness: D = ∅ complete? Skipped on a resume that
  // checkpointed in a later phase (the interrupted run already decided
  // it incomplete; both phases are deterministic).
  if (resume_phase != "rcqp-chase" && resume_phase != "rcqp-pool") {
    RcdpOptions empty_options = inner_rcdp;
    std::optional<SearchCheckpoint> empty_inner;
    if (resume_phase == "rcqp-empty" && !resume->payload.empty()) {
      RELCOMP_ASSIGN_OR_RETURN(SearchCheckpoint inner,
                               SearchCheckpoint::Deserialize(resume->payload));
      empty_inner = std::move(inner);
      empty_options.resume = &*empty_inner;
    }
    RELCOMP_ASSIGN_OR_RETURN(
        RcdpResult empty_rcdp,
        DecideRcdp(query, empty_db, master, constraints, empty_options));
    if (empty_rcdp.verdict == Verdict::kUnknown) {
      result.verdict = Verdict::kUnknown;
      result.exists = false;
      result.exhaustive = false;
      result.method = "empty-witness";
      result.exhaustion = empty_rcdp.exhaustion;
      result.checkpoint = make_checkpoint(
          "rcqp-empty", 0, 0,
          empty_rcdp.checkpoint.has_value() ? empty_rcdp.checkpoint->Serialize()
                                            : std::string());
      return result;
    }
    if (empty_rcdp.complete) {
      result.verdict = Verdict::kComplete;
      result.exists = true;
      result.witness = empty_db;
      result.method = "empty-witness";
      return result;
    }
  }

  // Chase witness: grow the empty database by counterexamples; if the
  // chase converges, the result is a verified complete database. A
  // "rcqp-chase" resume re-runs the chase from scratch — the partially
  // chased database is not serializable into the checkpoint, and the
  // chase is deterministic, so the re-run reaches the identical state.
  if (options.max_chase_rounds > 0 && resume_phase != "rcqp-pool") {
    RELCOMP_ASSIGN_OR_RETURN(
        ChaseResult chased,
        ChaseToCompleteness(query, empty_db, master, constraints,
                            options.max_chase_rounds, inner_rcdp));
    if (chased.verdict == Verdict::kComplete) {
      result.verdict = Verdict::kComplete;
      result.exists = true;
      result.witness = std::move(chased.db);
      result.method = "chase-witness";
      return result;
    }
    if (chased.exhaustion.kind != BudgetKind::kRounds) {
      // A genuine budget/cancel exhaustion (not the rounds cap).
      result.verdict = Verdict::kUnknown;
      result.exists = false;
      result.exhaustive = false;
      result.method = "chase-witness";
      result.exhaustion = chased.exhaustion;
      result.checkpoint = make_checkpoint(
          "rcqp-chase", chased.rounds, 0,
          chased.checkpoint.has_value() ? chased.checkpoint->Serialize()
                                        : std::string());
      return result;
    }
    // kRounds: the chase did not converge within its cap; fall through
    // to the small-model pool search (the legacy behavior).
  }

  // Small-model witness search over the tableau-row instantiation pool.
  std::vector<std::pair<std::string, Tuple>> pool;
  RELCOMP_ASSIGN_OR_RETURN(bool truncated,
                           BuildPool(tableaux, cc_tableaux, adom,
                                     options.max_pool_size, &pool));
  size_t candidates_tried = 0;
  bool budget_hit = false;        // legacy max_candidates / max_bindings caps
  bool budget_exhausted = false;  // ExecutionBudget (deadline/steps/memory/
                                  // cancel) tripped
  Status exhausted_status;
  // Candidate leaves are enumerated in a deterministic order (size-
  // iterative, lexicographic over pool indexes); a "rcqp-pool"
  // checkpoint's rank counts the leaves the interrupted run fully
  // judged, and a resumed call skips exactly those.
  size_t leaf_index = 0;
  size_t exhausted_rank = 0;
  const size_t resume_skip =
      resume_phase == "rcqp-pool" ? resume->rank : 0;
  std::optional<Database> found;

  std::vector<size_t> chosen;
  std::function<Result<bool>(size_t, size_t)> search =
      [&](size_t start, size_t remaining) -> Result<bool> {
    if (found.has_value() || budget_hit || budget_exhausted) return true;
    if (remaining == 0) {
      const size_t my_leaf = leaf_index++;
      if (my_leaf < resume_skip) return true;
      if (budget != nullptr) {
        // One counted decision point per candidate witness judged —
        // the pool-search analogue of the valuation binding step.
        Status st = budget->OnDecisionPoint();
        if (!st.ok()) {
          budget_exhausted = true;
          exhausted_status = std::move(st);
          exhausted_rank = my_leaf;
          return true;
        }
      }
      if (++candidates_tried > options.max_candidates) {
        budget_hit = true;
        exhausted_rank = my_leaf;
        return true;
      }
      Database candidate(db_schema);
      for (size_t idx : chosen) {
        candidate.InsertUnchecked(pool[idx].first, pool[idx].second);
      }
      RELCOMP_ASSIGN_OR_RETURN(bool closed,
                               Satisfies(constraints, candidate, master));
      if (!closed) return true;
      Result<RcdpResult> rcdp =
          DecideRcdp(query, candidate, master, constraints, inner_rcdp);
      RELCOMP_RETURN_NOT_OK(rcdp.status());
      if (rcdp->verdict == Verdict::kUnknown) {
        // This leaf was not fully judged; a resumed call re-judges it
        // from scratch (the inner RCDP is deterministic).
        if (budget != nullptr && budget->exhausted()) {
          budget_exhausted = true;
          exhausted_status = budget->exhaustion_status();
        } else {
          budget_hit = true;  // inner legacy max_bindings cap
        }
        exhausted_rank = my_leaf;
        return true;
      }
      if (rcdp->complete) found = std::move(candidate);
      return true;
    }
    for (size_t i = start; i + remaining <= pool.size() + 1 && i < pool.size();
         ++i) {
      chosen.push_back(i);
      RELCOMP_ASSIGN_OR_RETURN(bool ignored, search(i + 1, remaining - 1));
      (void)ignored;
      chosen.pop_back();
      if (found.has_value() || budget_hit || budget_exhausted) break;
    }
    return true;
  };
  size_t max_size = std::min(options.max_witness_tuples, pool.size());
  for (size_t size = 1; size <= max_size; ++size) {
    RELCOMP_ASSIGN_OR_RETURN(bool ignored, search(0, size));
    (void)ignored;
    if (found.has_value() || budget_hit || budget_exhausted) break;
  }

  result.method = "witness-search";
  if (found.has_value()) {
    result.verdict = Verdict::kComplete;
    result.exists = true;
    result.witness = std::move(found);
    return result;
  }
  result.exists = false;
  if (budget_exhausted) {
    result.verdict = Verdict::kUnknown;
    result.exhaustive = false;
    result.exhaustion = ExhaustionFromStatus(exhausted_status, budget);
    result.checkpoint =
        make_checkpoint("rcqp-pool", 0, exhausted_rank, std::string());
    return result;
  }
  result.exhaustive = !truncated && !budget_hit &&
                      options.max_witness_tuples >= pool.size();
  result.verdict =
      result.exhaustive ? Verdict::kIncomplete : Verdict::kUnknown;
  if (budget_hit) {
    // Legacy-cap inconclusiveness is resumable too: a follow-up call
    // gets a fresh max_candidates allowance from this leaf on.
    result.checkpoint =
        make_checkpoint("rcqp-pool", 0, exhausted_rank, std::string());
  }
  return result;
}

}  // namespace relcomp
