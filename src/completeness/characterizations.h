#ifndef RELCOMP_COMPLETENESS_CHARACTERIZATIONS_H_
#define RELCOMP_COMPLETENESS_CHARACTERIZATIONS_H_

#include <optional>
#include <string>
#include <vector>

#include "completeness/rcqp.h"
#include "constraints/containment_constraint.h"
#include "eval/bindings.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// The paper's characterizations as first-class, inspectable checks.
/// The deciders (rcdp.h, rcqp.h) implement the same conditions fused
/// with search optimizations; these functions expose the definitional
/// form — which condition holds or fails, and the witnessing valuation
/// — for explanation, debugging, and the characterization tests.

/// Result of the bounded-database check (Prop 3.3 / Cor 3.4 / Cor 3.5).
struct BoundedDatabaseReport {
  /// D is bounded by (Dm, V) for Q — equivalently (Prop 3.3), D is in
  /// RCQ(Q, Dm, V).
  bool bounded = true;
  /// Which condition was evaluated: "C1" (Q(D) empty), "C2" (Q(D)
  /// nonempty), "C3" (IND specialization), or "C4" (UCQ).
  std::string condition;
  /// When not bounded: the violating valid valuation μ ...
  std::optional<Bindings> violating_valuation;
  /// ... and the disjunct index it instantiates (0 for CQ).
  int disjunct = 0;

  std::string ToString() const;
};

/// Checks the bounded-database conditions of Section 3.2 directly:
///
///   C1 (Q(D) = ∅):  for every valid valuation μ of T_Q,
///                   (D ∪ μ(T_Q), Dm) |≠ V;
///   C2 (Q(D) ≠ ∅):  for every valid valuation μ, if
///                   (D ∪ μ(T_Q), Dm) |= V then μ(u_Q) ∈ Q(D);
///   C3 (V = INDs):  as C1/C2 but testing (μ(T_Q), Dm) |= V;
///   C4 (UCQ):       per-disjunct form of C1/C2.
///
/// Enumerates valid valuations over Adom ∪ New without the decider's
/// search optimizations (use DecideRcdp for performance; this is the
/// specification). Supports L_Q, L_C in {CQ, UCQ, ∃FO+}.
Result<BoundedDatabaseReport> CheckBoundedDatabase(
    const AnyQuery& query, const Database& db, const Database& master,
    const ConstraintSet& constraints, size_t max_bindings = 0);

/// Result of the bounded-query checks (Section 4.2).
struct BoundedQueryReport {
  bool bounded = false;
  /// "E1"/"E5" (all head variables finite), "E3/E4" (IND syntactic),
  /// or "E2/E6" (valuation-set witness, checked against a concrete
  /// candidate database).
  std::string condition;
  /// E3/E4: the per-disjunct, per-variable diagnosis.
  std::vector<std::vector<VariableBoundedness>> ind_analysis;

  std::string ToString() const;
};

/// Condition E1/E5: every head variable of every satisfiable disjunct
/// ranges over a finite domain. Sufficient for RCQ(Q, Dm, V) ≠ ∅.
Result<BoundedQueryReport> CheckAllHeadVariablesFinite(
    const AnyQuery& query, const Schema& db_schema);

/// Conditions E3/E4 for IND constraint sets (Prop 4.3): every head
/// variable of every disjunct is finite-domain or IND-bounded.
/// Necessary and sufficient together with realizability (see
/// DecideRcqp, which adds the realizability search).
Result<BoundedQueryReport> CheckIndBoundedQuery(
    const AnyQuery& query, const ConstraintSet& constraints,
    const Schema& db_schema);

/// Condition E2/E6 instantiated at a concrete candidate `dv` (playing
/// the proof's D_V): (dv, Dm) |= V, and for every valid valuation μ of
/// any disjunct tableau with (dv ∪ μ(T), Dm) |= V, every
/// infinite-domain head variable takes a non-fresh value (is "bounded
/// by V with respect to μ"). When this holds, dv (plus the constant
/// rows of T_Q) is relatively complete — the constructive content of
/// Prop 4.2 / Cor 4.4.
Result<bool> CheckBoundingDatabaseE2(const AnyQuery& query,
                                     const Database& dv,
                                     const Database& master,
                                     const ConstraintSet& constraints,
                                     size_t max_bindings = 0);

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_CHARACTERIZATIONS_H_
