#ifndef RELCOMP_COMPLETENESS_VALUATION_SEARCH_H_
#define RELCOMP_COMPLETENESS_VALUATION_SEARCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <stop_token>
#include <string>
#include <vector>

#include "completeness/active_domain.h"
#include "eval/bindings.h"
#include "relational/value_interner.h"
#include "tableau/tableau.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Counters reported by the valuation search; surfaced by the benches.
/// index_probes/relation_scans/overlay_hits are aggregated from the
/// relational core's EvalCounters by the deciders (constraint checks
/// and query evals issued while judging valuations).
struct ValuationSearchStats {
  /// Number of variable-binding steps taken.
  size_t bindings_tried = 0;
  /// Total valuations delivered to the callback.
  size_t totals_delivered = 0;
  /// Subtrees cut by disequality or caller pruning.
  size_t prunes = 0;
  /// Column-index probes issued against base relations.
  size_t index_probes = 0;
  /// Composite (multi-column radix) probes issued against base
  /// relations.
  size_t composite_probes = 0;
  /// Full relation scans (no bound position, or indexes disabled).
  size_t relation_scans = 0;
  /// Atom matches served by overlay-staged rows.
  size_t overlay_hits = 0;
  /// Per-search arena footprint: summed high-water bytes of the
  /// workers' bump arenas (0 when arenas are disabled).
  size_t arena_bytes = 0;
  /// Parallel mode only: work units run to completion, and units whose
  /// enumeration was cancelled after another unit won. Zero in serial
  /// runs.
  size_t work_units = 0;
  size_t work_units_cancelled = 0;

  ValuationSearchStats& operator+=(const ValuationSearchStats& other) {
    bindings_tried += other.bindings_tried;
    totals_delivered += other.totals_delivered;
    prunes += other.prunes;
    index_probes += other.index_probes;
    composite_probes += other.composite_probes;
    relation_scans += other.relation_scans;
    overlay_hits += other.overlay_hits;
    arena_bytes += other.arena_bytes;
    work_units += other.work_units;
    work_units_cancelled += other.work_units_cancelled;
    return *this;
  }
};

class ValuationEnumerator;

/// A (partial) valuation on the id plane: enumeration positions
/// [0, depth) of the producing enumerator's order() are bound, and
/// ids[i] is the ValueId bound at position i. Ids come from the unified
/// mapping of the enumerator's Options::interner — interned values keep
/// their interner id; candidate or disequality-constant values the
/// interner has never seen get deterministic per-enumerator synthetic
/// ids (parked in the unused gap below ValueInterner::kFreshIdBase), so
/// id equality means value equality throughout the enumeration and a
/// synthetic id never equals an id any relation of the family stores.
/// Resolve ids back to Values through enumerator->ResolveId(). The view
/// is only valid during the callback invocation.
struct IdValuation {
  const ValueId* ids = nullptr;
  size_t depth = 0;
  const ValuationEnumerator* enumerator = nullptr;
};

/// Enumerates the paper's valid valuations of a tableau: total
/// assignments of the tableau variables where each variable draws from
/// adom(y) (finite domain, or Adom ∪ New) and every disequality of the
/// tableau holds.
///
/// In pruned mode (the default) the enumerator orders summary variables
/// first, checks disequalities as soon as both ends are bound, and
/// consults an optional caller prune hook after each binding. In naive
/// mode — the literal algorithm from the paper's upper-bound proofs,
/// kept for bench_ablation — assignments are generated in declaration
/// order and validity is only checked on total assignments.
class ValuationEnumerator {
 public:
  struct Options {
    bool pruned = true;
    /// Abort with kResourceExhausted after this many binding steps
    /// (0 = unlimited). When `shared_bindings` is set the cap applies
    /// to that shared counter instead of the local one, making it a
    /// global budget across the workers of a parallel search.
    size_t max_bindings = 0;
    /// Per-variable candidate overrides (e.g. the RCDP decider's
    /// don't-care collapse). Overridden variables use exactly the
    /// given values; others follow the normal adom(y) rules.
    const std::map<std::string, std::vector<Value>>* candidate_overrides =
        nullptr;
    /// Symmetry breaking over the fresh values (paper's New): fresh
    /// values are interchangeable (they occur nowhere in D, Dm, Q, V),
    /// so any valuation can be renamed to use fresh_0..fresh_k in order
    /// of first use. The variable at enumeration position i therefore
    /// only needs fresh candidates fresh_0..fresh_i. Sound and
    /// complete; disable for the literal paper algorithm.
    bool symmetry_break_fresh = true;
    /// Work-unit restriction used by the parallel driver: enumerate
    /// only the assignments of the first `shard_depth` variables of
    /// order_ whose flattened row-major rank lies in
    /// [shard_begin, shard_end). 0 = the full space (serial). The
    /// candidate lists themselves are shard-independent, so the union
    /// of disjoint shards visits exactly the serial sequence of
    /// valuations, each exactly once, in the same within-shard order.
    size_t shard_depth = 0;
    size_t shard_begin = 0;
    size_t shard_end = 0;
    /// Cooperative cancellation, checked once per binding step; a
    /// triggered stop aborts the enumeration with kCancelled. A
    /// default-constructed token never triggers (serial mode).
    std::stop_token stop;
    /// When set, the max_bindings budget is enforced against this
    /// shared atomic counter (incremented once per binding step) so
    /// concurrent workers respect one global cap.
    std::atomic<size_t>* shared_bindings = nullptr;
    /// Optional shared execution budget (not owned). Claims one
    /// decision point per binding step; an exhausted budget aborts the
    /// enumeration with the budget's sticky status (kResourceExhausted
    /// for deadline/steps/memory, kCancelled for a user CancelToken).
    ExecutionBudget* budget = nullptr;
    /// Optional interner of the instance's database family (not owned;
    /// may be null). Required for EnumerateIds: candidate values and
    /// disequality constants are resolved to ValueIds at construction
    /// (TryGet only — a frozen interner is never grown; never-seen
    /// values get synthetic ids, see IdValuation), and disequality
    /// checks during the enumeration become pure id comparisons.
    const ValueInterner* interner = nullptr;
  };

  ValuationEnumerator(const TableauQuery* tableau, const ActiveDomain* adom,
                      Options options);

  /// Runs the enumeration. `should_prune`, if non-null, is called after
  /// each variable binding (pruned mode only); returning true cuts the
  /// subtree. `on_total` receives each valid total valuation; returning
  /// false stops the whole search.
  Status Enumerate(const std::function<bool(const Bindings&)>& should_prune,
                   const std::function<bool(const Bindings&)>& on_total);

  /// Id-plane enumeration: identical search order, shard semantics,
  /// budget points, and stats as Enumerate, but callbacks receive the
  /// bound prefix as an IdValuation instead of a Bindings map — no
  /// per-step map mutation or Value materialization. Requires
  /// Options::interner (kInvalidArgument otherwise). In naive mode
  /// (pruned = false) leaf validity is still checked through
  /// TableauQuery::IsValidValuation on a materialized Bindings, exactly
  /// like the legacy path.
  Status EnumerateIds(
      const std::function<bool(const IdValuation&)>& should_prune,
      const std::function<bool(const IdValuation&)>& on_total);

  /// The value behind an id of this enumeration (an interner id or one
  /// of the enumerator's synthetic ids). Precondition: Options::interner
  /// was set and `id` appeared in an IdValuation of this enumerator or
  /// is an id of that interner.
  const Value& ResolveId(ValueId id) const;

  /// The variable enumeration order actually used (pruned mode:
  /// summary variables first, then a greedy row-completion order so
  /// callers can prune on partially instantiated rows).
  const std::vector<std::string>& order() const { return order_; }

  /// Number of candidate values at enumeration position `i`.
  /// Precondition: i < order().size().
  size_t CandidateCount(size_t i) const { return candidates_[i].size(); }

  /// Size of the flattened assignment space of the first
  /// min(depth, order().size()) variables — the rank space the parallel
  /// driver partitions into work units. 1 when depth is 0 or the order
  /// is empty (the single empty prefix).
  size_t PrefixSpace(size_t depth) const;

  const ValuationSearchStats& stats() const { return stats_; }

 private:
  bool Recurse(size_t index, size_t lo, size_t hi, Bindings* bindings,
               const std::function<bool(const Bindings&)>& should_prune,
               const std::function<bool(const Bindings&)>& on_total,
               bool* stopped);
  bool RecurseIds(size_t index, size_t lo, size_t hi,
                  const std::function<bool(const IdValuation&)>& should_prune,
                  const std::function<bool(const IdValuation&)>& on_total,
                  bool* stopped);
  /// Pre-loop bookkeeping shared by both Recurse flavors: stop token,
  /// budget decision point, and the (possibly shared) binding counter.
  /// Returns false — with failure_ set and *stopped = true — when the
  /// enumeration must abort before binding the next candidate.
  bool EnterBindingStep(bool* stopped);
  /// The id a disequality operand code denotes (>= 0: bound slot,
  /// < 0: pre-resolved constant).
  ValueId DiseqOperandId(int32_t code) const {
    return code >= 0 ? slot_ids_[static_cast<size_t>(code)]
                     : diseq_const_ids_[static_cast<size_t>(-code - 1)];
  }

  const TableauQuery* tableau_;
  const ActiveDomain* adom_;
  Options options_;
  /// Variables in enumeration order, with per-variable candidates.
  std::vector<std::string> order_;
  std::vector<std::vector<Value>> candidates_;
  /// disequalities_at_[i]: indices of tableau disequalities whose
  /// variables are all bound once order_[0..i] are bound.
  std::vector<std::vector<size_t>> disequalities_at_;
  /// Effective shard depth (options.shard_depth clamped to the order)
  /// and, per sharded level i, the rank weight of one candidate choice
  /// (product of candidate counts of levels i+1..depth-1).
  size_t shard_depth_ = 0;
  std::vector<size_t> shard_weight_;
  /// Id plane (built only when Options::interner is set):
  /// candidate_ids_[i][k] is the unified id of candidates_[i][k];
  /// synth_values_[k] is the value behind synthetic id
  /// kFreshIdBase - 1 - k; diseq codes reference slots (>= 0) or
  /// diseq_const_ids_ entries (< 0, index -code - 1).
  bool ids_ready_ = false;
  std::vector<std::vector<ValueId>> candidate_ids_;
  std::vector<const Value*> synth_values_;
  std::vector<std::pair<int32_t, int32_t>> diseq_codes_;
  std::vector<ValueId> diseq_const_ids_;
  /// Run state of an in-flight EnumerateIds call.
  std::vector<ValueId> slot_ids_;
  ValuationSearchStats stats_;
  Status failure_;
};

// --- Parallel driver -------------------------------------------------

/// What a work unit's stop meant, reported by the caller's epilogue
/// after each unit: a found target, a callback failure, or neither
/// (the unit simply exhausted its shard).
struct ParallelUnitResult {
  bool found = false;
  Status status;
};

/// Options for ParallelValuationSearch.
struct ParallelSearchOptions {
  /// Worker threads. <= 1 runs the serial path on the calling thread.
  size_t num_threads = 1;
  /// Target work units per worker; more units = better load balancing,
  /// more per-unit setup (one enumerator construction each).
  size_t units_per_thread = 4;
  /// Resume support: skip every rank below this value (a prior run's
  /// ParallelSearchOutcome::next_rank). Ranks are absolute positions
  /// in the flattened prefix space, which is identical across thread
  /// counts in budget-controlled runs (see kControlledUnits).
  size_t resume_rank = 0;
};

/// Aggregated outcome of a parallel search.
struct ParallelSearchOutcome {
  /// True when some unit found a target; winner_worker identifies the
  /// per-worker state holding it and winner_unit the winning unit.
  bool found = false;
  size_t winner_worker = SIZE_MAX;
  size_t winner_unit = SIZE_MAX;
  size_t units_total = 0;
  size_t threads_used = 1;
  /// Enumerator stats summed over every unit (bindings_tried
  /// upper-bounds the serial count: each unit re-binds its prefix).
  ValuationSearchStats stats;
  /// First deterministic failure (callback error in the winning unit,
  /// or the shared binding budget), OK otherwise. Kept out of the
  /// return Status so callers can merge stats before propagating.
  Status failure;
  /// Rank-space bookkeeping for checkpoint/resume: the size of the
  /// flattened prefix space the search partitions, and the lowest rank
  /// not yet fully searched — equal to total_ranks after a complete
  /// (exhaustive or found) run, and the sound resume point after a
  /// budget exhaustion (every rank below it was searched without a
  /// hit).
  size_t total_ranks = 0;
  size_t next_rank = 0;
  /// True when the search stopped because the execution budget (or the
  /// legacy shared max_bindings cap) was exhausted or a user
  /// CancelToken fired; `failure` then holds the exhaustion status.
  /// Distinguishes user cancellation from the driver's internal
  /// lowest-unit-wins stop_token cancellation, which is never
  /// surfaced.
  bool exhausted = false;
};

/// Number of work units used whenever a run is budget-controlled
/// (budget, max_bindings cap, or resume). Independent of num_threads
/// so the unit partition — and with it the set of counted decision
/// points and the rank checkpoints — is identical at every thread
/// count.
inline constexpr size_t kControlledUnits = 16;

/// Runs the valuation search over `tableau` split into contiguous
/// work units of the flattened rank space of the first one-or-two
/// order_ variables, on `num_threads` std::jthread workers.
///
/// Callbacks receive the worker index (0-based) so callers can give
/// every worker its own scratch state (overlay, bindings, counters);
/// their Bindings contract matches ValuationEnumerator::Enumerate.
/// After each unit stops, `epilogue(worker)` must report whether that
/// worker's unit found a target or failed, and reset the worker's
/// per-unit flags (found/error) — found state itself must survive
/// until the driver returns so the winner can be read out.
///
/// Determinism: units are claimed work-stealing style, but the winner
/// is resolved as the LOWEST unit index that found (or failed), and a
/// unit only wins once every lower unit exhausted. Since units are
/// contiguous ranks and within-unit enumeration is in serial order,
/// the winning valuation is exactly the one the serial search would
/// have found first — results are identical for every thread count
/// and partition. With a max_bindings budget the cap is shared across
/// workers, so a parallel run may exhaust the budget on a schedule a
/// serial run would not (the global cap is respected either way).
void ParallelValuationSearch(
    const TableauQuery& tableau, const ActiveDomain& adom,
    const ValuationEnumerator::Options& enum_options,
    const ParallelSearchOptions& parallel_options,
    const std::function<bool(size_t worker, const Bindings&)>& should_prune,
    const std::function<bool(size_t worker, const Bindings&)>& on_total,
    const std::function<ParallelUnitResult(size_t worker)>& epilogue,
    ParallelSearchOutcome* outcome);

/// Id-plane flavor of ParallelValuationSearch: identical unit
/// partition, winner resolution, budget semantics, and determinism
/// guarantees, with callbacks on the id plane
/// (ValuationEnumerator::EnumerateIds per unit). Requires
/// enum_options.interner. Per-enumerator synthetic ids are assigned by
/// the deterministic construction order, so every unit — on any worker
/// — observes the identical id mapping.
void ParallelValuationSearchIds(
    const TableauQuery& tableau, const ActiveDomain& adom,
    const ValuationEnumerator::Options& enum_options,
    const ParallelSearchOptions& parallel_options,
    const std::function<bool(size_t worker, const IdValuation&)>&
        should_prune,
    const std::function<bool(size_t worker, const IdValuation&)>& on_total,
    const std::function<ParallelUnitResult(size_t worker)>& epilogue,
    ParallelSearchOutcome* outcome);

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_VALUATION_SEARCH_H_
