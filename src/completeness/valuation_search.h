#ifndef RELCOMP_COMPLETENESS_VALUATION_SEARCH_H_
#define RELCOMP_COMPLETENESS_VALUATION_SEARCH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "completeness/active_domain.h"
#include "eval/bindings.h"
#include "tableau/tableau.h"
#include "util/status.h"

namespace relcomp {

/// Counters reported by the valuation search; surfaced by the benches.
/// The last three are aggregated from the relational core's
/// EvalCounters by the deciders (constraint checks and query evals
/// issued while judging valuations).
struct ValuationSearchStats {
  /// Number of variable-binding steps taken.
  size_t bindings_tried = 0;
  /// Total valuations delivered to the callback.
  size_t totals_delivered = 0;
  /// Subtrees cut by disequality or caller pruning.
  size_t prunes = 0;
  /// Column-index probes issued against base relations.
  size_t index_probes = 0;
  /// Full relation scans (no bound position, or indexes disabled).
  size_t relation_scans = 0;
  /// Atom matches served by overlay-staged rows.
  size_t overlay_hits = 0;
};

/// Enumerates the paper's valid valuations of a tableau: total
/// assignments of the tableau variables where each variable draws from
/// adom(y) (finite domain, or Adom ∪ New) and every disequality of the
/// tableau holds.
///
/// In pruned mode (the default) the enumerator orders summary variables
/// first, checks disequalities as soon as both ends are bound, and
/// consults an optional caller prune hook after each binding. In naive
/// mode — the literal algorithm from the paper's upper-bound proofs,
/// kept for bench_ablation — assignments are generated in declaration
/// order and validity is only checked on total assignments.
class ValuationEnumerator {
 public:
  struct Options {
    bool pruned = true;
    /// Abort with kResourceExhausted after this many binding steps
    /// (0 = unlimited).
    size_t max_bindings = 0;
    /// Per-variable candidate overrides (e.g. the RCDP decider's
    /// don't-care collapse). Overridden variables use exactly the
    /// given values; others follow the normal adom(y) rules.
    const std::map<std::string, std::vector<Value>>* candidate_overrides =
        nullptr;
    /// Symmetry breaking over the fresh values (paper's New): fresh
    /// values are interchangeable (they occur nowhere in D, Dm, Q, V),
    /// so any valuation can be renamed to use fresh_0..fresh_k in order
    /// of first use. The variable at enumeration position i therefore
    /// only needs fresh candidates fresh_0..fresh_i. Sound and
    /// complete; disable for the literal paper algorithm.
    bool symmetry_break_fresh = true;
  };

  ValuationEnumerator(const TableauQuery* tableau, const ActiveDomain* adom,
                      Options options);

  /// Runs the enumeration. `should_prune`, if non-null, is called after
  /// each variable binding (pruned mode only); returning true cuts the
  /// subtree. `on_total` receives each valid total valuation; returning
  /// false stops the whole search.
  Status Enumerate(const std::function<bool(const Bindings&)>& should_prune,
                   const std::function<bool(const Bindings&)>& on_total);

  /// The variable enumeration order actually used (pruned mode:
  /// summary variables first, then a greedy row-completion order so
  /// callers can prune on partially instantiated rows).
  const std::vector<std::string>& order() const { return order_; }

  const ValuationSearchStats& stats() const { return stats_; }

 private:
  bool Recurse(size_t index, Bindings* bindings,
               const std::function<bool(const Bindings&)>& should_prune,
               const std::function<bool(const Bindings&)>& on_total,
               bool* stopped);

  const TableauQuery* tableau_;
  const ActiveDomain* adom_;
  Options options_;
  /// Variables in enumeration order, with per-variable candidates.
  std::vector<std::string> order_;
  std::vector<std::vector<Value>> candidates_;
  /// disequalities_at_[i]: indices of tableau disequalities whose
  /// variables are all bound once order_[0..i] are bound.
  std::vector<std::vector<size_t>> disequalities_at_;
  ValuationSearchStats stats_;
  Status failure_;
};

}  // namespace relcomp

#endif  // RELCOMP_COMPLETENESS_VALUATION_SEARCH_H_
