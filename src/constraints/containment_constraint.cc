#include "constraints/containment_constraint.h"

#include <set>

#include "util/str.h"

namespace relcomp {

ContainmentConstraint ContainmentConstraint::Subset(
    AnyQuery query, std::string master_relation,
    std::vector<size_t> projection) {
  ContainmentConstraint cc;
  cc.query_ = std::move(query);
  cc.empty_target_ = false;
  cc.master_relation_ = std::move(master_relation);
  cc.projection_ = std::move(projection);
  return cc;
}

ContainmentConstraint ContainmentConstraint::SubsetOfEmpty(AnyQuery query) {
  ContainmentConstraint cc;
  cc.query_ = std::move(query);
  cc.empty_target_ = true;
  return cc;
}

bool ContainmentConstraint::IsInd() const {
  const ConjunctiveQuery* cq = query_.as_cq();
  if (cq == nullptr) return false;
  const std::vector<Atom>& body = cq->body();
  if (body.size() != 1 || !body.front().is_relation()) return false;
  // All atom arguments must be distinct variables.
  std::set<std::string> atom_vars;
  for (const Term& t : body.front().args()) {
    if (!t.is_variable()) return false;
    if (!atom_vars.insert(t.var()).second) return false;
  }
  // The head must be a list of distinct atom variables.
  std::set<std::string> head_vars;
  for (const Term& t : cq->head()) {
    if (!t.is_variable()) return false;
    if (atom_vars.count(t.var()) == 0) return false;
    if (!head_vars.insert(t.var()).second) return false;
  }
  return true;
}

Status ContainmentConstraint::Validate(const Schema& db_schema,
                                       const Schema& master_schema) const {
  RELCOMP_RETURN_NOT_OK(query_.Validate(db_schema));
  if (empty_target_) return Status::OK();
  const RelationSchema* rm = master_schema.FindRelation(master_relation_);
  if (rm == nullptr) {
    return Status::NotFound(
        StrCat("unknown master relation: ", master_relation_));
  }
  for (size_t col : projection_) {
    if (col >= rm->arity()) {
      return Status::InvalidArgument(
          StrCat("projection column ", col, " out of range for ",
                 master_relation_, " (arity ", rm->arity(), ")"));
    }
  }
  if (projection_.size() != query_.arity()) {
    return Status::InvalidArgument(
        StrCat("CC arity mismatch: query produces ", query_.arity(),
               " columns, projection has ", projection_.size()));
  }
  return Status::OK();
}

std::string ContainmentConstraint::ToString() const {
  std::string out = query_.ToString();
  out += "  SUBSETEQ  ";
  if (empty_target_) {
    out += "EMPTY";
  } else {
    out += "pi_{";
    for (size_t i = 0; i < projection_.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(projection_[i]);
    }
    out += "}(";
    out += master_relation_;
    out += ")";
  }
  return out;
}

bool ConstraintSet::IsIndsOnly() const {
  for (const ContainmentConstraint& cc : constraints_) {
    if (!cc.IsInd()) return false;
  }
  return true;
}

QueryLanguage ConstraintSet::Language() const {
  QueryLanguage lub = QueryLanguage::kCq;
  auto rank = [](QueryLanguage lang) {
    switch (lang) {
      case QueryLanguage::kCq:
        return 0;
      case QueryLanguage::kUcq:
        return 1;
      case QueryLanguage::kPositive:
        return 2;
      case QueryLanguage::kFo:
        return 3;
      case QueryLanguage::kDatalog:
        return 4;
    }
    return 4;
  };
  for (const ContainmentConstraint& cc : constraints_) {
    if (rank(cc.language()) > rank(lub)) lub = cc.language();
  }
  return lub;
}

Status ConstraintSet::Validate(const Schema& db_schema,
                               const Schema& master_schema) const {
  for (const ContainmentConstraint& cc : constraints_) {
    RELCOMP_RETURN_NOT_OK(cc.Validate(db_schema, master_schema));
  }
  return Status::OK();
}

std::string ConstraintSet::ToString() const {
  std::string out;
  for (const ContainmentConstraint& cc : constraints_) {
    out += cc.ToString();
    out.push_back('\n');
  }
  return out;
}

}  // namespace relcomp
