#include "constraints/integrity_constraints.h"

#include "eval/conjunctive_eval.h"
#include "util/str.h"

namespace relcomp {
namespace {

/// True iff `t` matches every pattern conjunct.
bool MatchesPattern(const Tuple& t, const std::vector<AttrPattern>& pattern) {
  for (const AttrPattern& p : pattern) {
    if (t[p.column] != p.value) return false;
  }
  return true;
}

/// Fresh variable names v<prefix>_<i> for the columns of a relation.
std::vector<Term> ColumnVars(const std::string& prefix, size_t arity) {
  std::vector<Term> vars;
  vars.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    vars.push_back(Term::Var(StrCat(prefix, i)));
  }
  return vars;
}

Status RequireRelation(const Schema& schema, const std::string& name,
                       const RelationSchema** out) {
  *out = schema.FindRelation(name);
  if (*out == nullptr) {
    return Status::NotFound(StrCat("unknown relation: ", name));
  }
  return Status::OK();
}

std::string ColsToString(const std::vector<size_t>& cols) {
  std::string out = "[";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(cols[i]);
  }
  out += "]";
  return out;
}

std::string PatternToString(const std::vector<AttrPattern>& pattern) {
  if (pattern.empty()) return "";
  std::string out = " with (";
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrCat("#", pattern[i].column, "=", pattern[i].value.ToString());
  }
  out += ")";
  return out;
}

}  // namespace

Status EnsureEmptyMasterRelation(Schema* master_schema) {
  if (master_schema->HasRelation(kEmptyMasterRelation)) return Status::OK();
  return master_schema->AddRelation(kEmptyMasterRelation, 0);
}

// ---------------------------------------------------------------------------
// FunctionalDependency

Result<bool> FunctionalDependency::Check(const Database& db) const {
  ConditionalFd as_cfd(relation_, lhs_, {}, rhs_, {});
  return as_cfd.Check(db);
}

Result<std::vector<ContainmentConstraint>>
FunctionalDependency::ToContainmentConstraints(const Schema& db_schema) const {
  ConditionalFd as_cfd(relation_, lhs_, {}, rhs_, {});
  return as_cfd.ToContainmentConstraints(db_schema);
}

std::string FunctionalDependency::ToString() const {
  return StrCat("FD ", relation_, ": ", ColsToString(lhs_), " -> ",
                ColsToString(rhs_));
}

// ---------------------------------------------------------------------------
// ConditionalFd

Result<bool> ConditionalFd::Check(const Database& db) const {
  const Relation& rel = db.Get(relation_);
  for (const Tuple& t1 : rel) {
    if (!MatchesPattern(t1, lhs_pattern_)) continue;
    if (!MatchesPattern(t1, rhs_pattern_)) return false;
    for (const Tuple& t2 : rel) {
      if (!MatchesPattern(t2, lhs_pattern_)) continue;
      bool lhs_agree = true;
      for (size_t col : lhs_) {
        if (t1[col] != t2[col]) {
          lhs_agree = false;
          break;
        }
      }
      if (!lhs_agree) continue;
      for (size_t col : rhs_) {
        if (t1[col] != t2[col]) return false;
      }
    }
  }
  return true;
}

Result<std::vector<ContainmentConstraint>>
ConditionalFd::ToContainmentConstraints(const Schema& db_schema) const {
  const RelationSchema* rs = nullptr;
  RELCOMP_RETURN_NOT_OK(RequireRelation(db_schema, relation_, &rs));
  const size_t arity = rs->arity();
  std::vector<ContainmentConstraint> out;

  // Family 1: the pair queries, one per Y column. Both atoms share the
  // X-column variables (expressing x̄1 = x̄2) and carry the φ pattern as
  // constants; the violating Y column differs.
  for (size_t y : rhs_) {
    std::vector<Term> args1 = ColumnVars("t1_", arity);
    std::vector<Term> args2 = ColumnVars("t2_", arity);
    for (size_t x : lhs_) args2[x] = args1[x];
    for (const AttrPattern& p : lhs_pattern_) {
      args1[p.column] = Term::Const(p.value);
      args2[p.column] = Term::Const(p.value);
    }
    Term y1 = args1[y];
    Term y2 = args2[y];
    std::vector<Atom> body;
    body.push_back(Atom::Relation(relation_, std::move(args1)));
    body.push_back(Atom::Relation(relation_, std::move(args2)));
    body.push_back(Atom::Ne(y1, y2));
    ConjunctiveQuery q(StrCat("cfd_pair_", relation_, "_y", y), {},
                       std::move(body));
    out.push_back(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(q)));
  }

  // Family 2: single-tuple pattern queries, one per ψ conjunct. A tuple
  // matching φ whose ψ column deviates from the required constant is a
  // violation (note the `!=`; see the header comment about the paper's
  // typo here).
  for (const AttrPattern& p : rhs_pattern_) {
    std::vector<Term> args = ColumnVars("t_", arity);
    for (const AttrPattern& lp : lhs_pattern_) {
      args[lp.column] = Term::Const(lp.value);
    }
    Term y = args[p.column];
    std::vector<Atom> body;
    body.push_back(Atom::Relation(relation_, std::move(args)));
    body.push_back(Atom::Ne(y, Term::Const(p.value)));
    ConjunctiveQuery q(StrCat("cfd_pat_", relation_, "_c", p.column), {},
                       std::move(body));
    out.push_back(ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(q)));
  }
  return out;
}

std::string ConditionalFd::ToString() const {
  return StrCat("CFD ", relation_, ": ", ColsToString(lhs_),
                PatternToString(lhs_pattern_), " -> ", ColsToString(rhs_),
                PatternToString(rhs_pattern_));
}

// ---------------------------------------------------------------------------
// DenialConstraint

Result<bool> DenialConstraint::Check(const Database& db) const {
  RELCOMP_ASSIGN_OR_RETURN(bool violated,
                           ConjunctiveSatisfiedIn(violation_, db));
  return !violated;
}

ContainmentConstraint DenialConstraint::ToContainmentConstraint() const {
  return ContainmentConstraint::SubsetOfEmpty(AnyQuery::Cq(violation_));
}

std::string DenialConstraint::ToString() const {
  return StrCat("DENIAL not exists [", violation_.ToString(), "]");
}

// ---------------------------------------------------------------------------
// InclusionDependency

Result<bool> InclusionDependency::Check(const Database& db) const {
  ConditionalInd as_cind(lhs_relation_, lhs_cols_, {}, rhs_relation_,
                         rhs_cols_, {});
  return as_cind.Check(db);
}

Result<ContainmentConstraint> InclusionDependency::ToContainmentConstraint(
    const Schema& db_schema) const {
  ConditionalInd as_cind(lhs_relation_, lhs_cols_, {}, rhs_relation_,
                         rhs_cols_, {});
  return as_cind.ToContainmentConstraint(db_schema);
}

std::string InclusionDependency::ToString() const {
  return StrCat("IND ", lhs_relation_, ColsToString(lhs_cols_), " <= ",
                rhs_relation_, ColsToString(rhs_cols_));
}

// ---------------------------------------------------------------------------
// ConditionalInd

Result<bool> ConditionalInd::Check(const Database& db) const {
  const Relation& lhs = db.Get(lhs_relation_);
  const Relation& rhs = db.Get(rhs_relation_);
  for (const Tuple& t1 : lhs) {
    if (!MatchesPattern(t1, lhs_pattern_)) continue;
    bool found = false;
    for (const Tuple& t2 : rhs) {
      if (!MatchesPattern(t2, rhs_pattern_)) continue;
      bool agree = true;
      for (size_t i = 0; i < lhs_cols_.size(); ++i) {
        if (t1[lhs_cols_[i]] != t2[rhs_cols_[i]]) {
          agree = false;
          break;
        }
      }
      if (agree) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<ContainmentConstraint> ConditionalInd::ToContainmentConstraint(
    const Schema& db_schema) const {
  const RelationSchema* r1 = nullptr;
  const RelationSchema* r2 = nullptr;
  RELCOMP_RETURN_NOT_OK(RequireRelation(db_schema, lhs_relation_, &r1));
  RELCOMP_RETURN_NOT_OK(RequireRelation(db_schema, rhs_relation_, &r2));
  if (lhs_cols_.size() != rhs_cols_.size()) {
    return Status::InvalidArgument("CIND column lists differ in length");
  }
  // q(u0..um) := R1(u0..um) & φ(u) & !(exists w0..wk. R2(w...) &
  //              shared-column equalities & ψ(w))
  std::vector<std::string> u_names;
  std::vector<FormulaPtr> conjuncts;
  std::vector<Term> u_terms;
  for (size_t i = 0; i < r1->arity(); ++i) {
    u_names.push_back(StrCat("u", i));
    u_terms.push_back(Term::Var(u_names.back()));
  }
  conjuncts.push_back(Formula::MakeAtom(Atom::Relation(lhs_relation_,
                                                       u_terms)));
  for (const AttrPattern& p : lhs_pattern_) {
    conjuncts.push_back(Formula::MakeAtom(
        Atom::Eq(u_terms[p.column], Term::Const(p.value))));
  }
  std::vector<std::string> w_names;
  std::vector<Term> w_terms;
  for (size_t i = 0; i < r2->arity(); ++i) {
    w_names.push_back(StrCat("w", i));
    w_terms.push_back(Term::Var(w_names.back()));
  }
  std::vector<FormulaPtr> inner;
  inner.push_back(Formula::MakeAtom(Atom::Relation(rhs_relation_, w_terms)));
  for (size_t i = 0; i < lhs_cols_.size(); ++i) {
    inner.push_back(Formula::MakeAtom(
        Atom::Eq(w_terms[rhs_cols_[i]], u_terms[lhs_cols_[i]])));
  }
  for (const AttrPattern& p : rhs_pattern_) {
    inner.push_back(Formula::MakeAtom(
        Atom::Eq(w_terms[p.column], Term::Const(p.value))));
  }
  conjuncts.push_back(Formula::MakeNot(
      Formula::MakeExists(w_names, Formula::MakeAnd(std::move(inner)))));
  FoQuery q(StrCat("cind_", lhs_relation_, "_", rhs_relation_), u_names,
            Formula::MakeAnd(std::move(conjuncts)));
  return ContainmentConstraint::SubsetOfEmpty(AnyQuery::Fo(std::move(q)));
}

std::string ConditionalInd::ToString() const {
  return StrCat("CIND ", lhs_relation_, ColsToString(lhs_cols_),
                PatternToString(lhs_pattern_), " <= ", rhs_relation_,
                ColsToString(rhs_cols_), PatternToString(rhs_pattern_));
}

// ---------------------------------------------------------------------------

Result<ContainmentConstraint> MakeIndToMaster(
    const Schema& db_schema, const std::string& db_relation,
    std::vector<size_t> db_cols, const std::string& master_relation,
    std::vector<size_t> master_cols) {
  const RelationSchema* rs = nullptr;
  RELCOMP_RETURN_NOT_OK(RequireRelation(db_schema, db_relation, &rs));
  if (db_cols.size() != master_cols.size()) {
    return Status::InvalidArgument(
        "IND-to-master column lists differ in length");
  }
  std::vector<Term> args = ColumnVars("v", rs->arity());
  std::vector<Term> head;
  head.reserve(db_cols.size());
  for (size_t col : db_cols) {
    if (col >= rs->arity()) {
      return Status::InvalidArgument(
          StrCat("column ", col, " out of range for ", db_relation));
    }
    head.push_back(args[col]);
  }
  ConjunctiveQuery q(StrCat("ind_", db_relation, "_", master_relation),
                     std::move(head),
                     {Atom::Relation(db_relation, std::move(args))});
  return ContainmentConstraint::Subset(AnyQuery::Cq(std::move(q)),
                                       master_relation,
                                       std::move(master_cols));
}

}  // namespace relcomp
