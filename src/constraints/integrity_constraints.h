#ifndef RELCOMP_CONSTRAINTS_INTEGRITY_CONSTRAINTS_H_
#define RELCOMP_CONSTRAINTS_INTEGRITY_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "constraints/containment_constraint.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// A constant pattern on one column: attribute `column` must equal
/// `value` (the φ(x̄)/ψ(ȳ) conjuncts of CFDs and CINDs).
struct AttrPattern {
  size_t column;
  Value value;
};

/// Section 2.2 of the paper: the integrity-constraint classes studied
/// for data consistency, each with direct checking semantics and a
/// compiler into containment constraints (Proposition 2.1). The
/// compilers need only an empty master relation, created by
/// EnsureEmptyMasterRelation below.

/// Name of the reserved empty master relation used by the compiled CCs.
inline constexpr char kEmptyMasterRelation[] = "_Empty";

/// Adds the nullary reserved empty relation to a master schema if it is
/// not already present.
Status EnsureEmptyMasterRelation(Schema* master_schema);

/// A traditional functional dependency R: X -> Y over column indices.
class FunctionalDependency {
 public:
  FunctionalDependency(std::string relation, std::vector<size_t> lhs,
                       std::vector<size_t> rhs)
      : relation_(std::move(relation)),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  const std::string& relation() const { return relation_; }
  const std::vector<size_t>& lhs() const { return lhs_; }
  const std::vector<size_t>& rhs() const { return rhs_; }

  /// Direct semantics: no two tuples agree on X but differ on Y.
  Result<bool> Check(const Database& db) const;

  /// Proposition 2.1(b) with empty patterns: one CQ CC per Y column.
  Result<std::vector<ContainmentConstraint>> ToContainmentConstraints(
      const Schema& db_schema) const;

  std::string ToString() const;

 private:
  std::string relation_;
  std::vector<size_t> lhs_;
  std::vector<size_t> rhs_;
};

/// A conditional functional dependency (CFD, Fan et al. 2008):
/// R: (X -> Y, with pattern φ on X and ψ on Y).
class ConditionalFd {
 public:
  ConditionalFd(std::string relation, std::vector<size_t> lhs,
                std::vector<AttrPattern> lhs_pattern, std::vector<size_t> rhs,
                std::vector<AttrPattern> rhs_pattern)
      : relation_(std::move(relation)),
        lhs_(std::move(lhs)),
        lhs_pattern_(std::move(lhs_pattern)),
        rhs_(std::move(rhs)),
        rhs_pattern_(std::move(rhs_pattern)) {}

  const std::string& relation() const { return relation_; }
  const std::vector<size_t>& lhs() const { return lhs_; }
  const std::vector<AttrPattern>& lhs_pattern() const { return lhs_pattern_; }
  const std::vector<size_t>& rhs() const { return rhs_; }
  const std::vector<AttrPattern>& rhs_pattern() const { return rhs_pattern_; }

  /// Direct semantics: for all tuples t1, t2 (including t1 = t2): if
  /// both match the X pattern and t1[X] = t2[X], then t1[Y] = t2[Y] and
  /// both match the Y pattern.
  Result<bool> Check(const Database& db) const;

  /// Proposition 2.1(b): two families of CQ CCs with target ∅ — the
  /// pair family (one per Y column) and the single-tuple pattern family
  /// (one per ψ conjunct). Note: the paper's proof text writes the
  /// single-tuple query with `y = c`; the violation query must use
  /// `y != c` (a tuple matching φ whose y deviates from the required
  /// constant), which is what we emit.
  Result<std::vector<ContainmentConstraint>> ToContainmentConstraints(
      const Schema& db_schema) const;

  std::string ToString() const;

 private:
  std::string relation_;
  std::vector<size_t> lhs_;
  std::vector<AttrPattern> lhs_pattern_;
  std::vector<size_t> rhs_;
  std::vector<AttrPattern> rhs_pattern_;
};

/// A denial constraint: ∀x̄ ¬(conjunction); represented by the CQ whose
/// matches are exactly the violations.
class DenialConstraint {
 public:
  explicit DenialConstraint(ConjunctiveQuery violation)
      : violation_(std::move(violation)) {}

  const ConjunctiveQuery& violation() const { return violation_; }

  /// Direct semantics: the violation query has no match in D.
  Result<bool> Check(const Database& db) const;

  /// Proposition 2.1(a): the single CC `violation ⊆ ∅` in CQ.
  ContainmentConstraint ToContainmentConstraint() const;

  std::string ToString() const;

 private:
  ConjunctiveQuery violation_;
};

/// A traditional inclusion dependency R1[X] ⊆ R2[Y] between two
/// database relations.
class InclusionDependency {
 public:
  InclusionDependency(std::string lhs_relation, std::vector<size_t> lhs_cols,
                      std::string rhs_relation, std::vector<size_t> rhs_cols)
      : lhs_relation_(std::move(lhs_relation)),
        lhs_cols_(std::move(lhs_cols)),
        rhs_relation_(std::move(rhs_relation)),
        rhs_cols_(std::move(rhs_cols)) {}

  const std::string& lhs_relation() const { return lhs_relation_; }
  const std::vector<size_t>& lhs_cols() const { return lhs_cols_; }
  const std::string& rhs_relation() const { return rhs_relation_; }
  const std::vector<size_t>& rhs_cols() const { return rhs_cols_; }

  Result<bool> Check(const Database& db) const;

  /// Embeds as a CIND with empty patterns and compiles to an FO CC.
  Result<ContainmentConstraint> ToContainmentConstraint(
      const Schema& db_schema) const;

  std::string ToString() const;

 private:
  std::string lhs_relation_;
  std::vector<size_t> lhs_cols_;
  std::string rhs_relation_;
  std::vector<size_t> rhs_cols_;
};

/// A conditional inclusion dependency (CIND, Bravo et al. 2007):
/// R1[X; φ(Y1)] ⊆ R2[X'; ψ(Y2)].
class ConditionalInd {
 public:
  ConditionalInd(std::string lhs_relation, std::vector<size_t> lhs_cols,
                 std::vector<AttrPattern> lhs_pattern,
                 std::string rhs_relation, std::vector<size_t> rhs_cols,
                 std::vector<AttrPattern> rhs_pattern)
      : lhs_relation_(std::move(lhs_relation)),
        lhs_cols_(std::move(lhs_cols)),
        lhs_pattern_(std::move(lhs_pattern)),
        rhs_relation_(std::move(rhs_relation)),
        rhs_cols_(std::move(rhs_cols)),
        rhs_pattern_(std::move(rhs_pattern)) {}

  const std::string& lhs_relation() const { return lhs_relation_; }
  const std::string& rhs_relation() const { return rhs_relation_; }

  /// Direct semantics: every R1 tuple matching the lhs pattern has a
  /// matching R2 tuple agreeing on the shared columns and matching the
  /// rhs pattern.
  Result<bool> Check(const Database& db) const;

  /// Proposition 2.1(c): one CC `q ⊆ ∅` where q is the FO query
  /// R1(x̄,ȳ1,z̄1) ∧ φ(ȳ1) ∧ ∀ȳ2z̄2 (¬R2(x̄,ȳ2,z̄2) ∨ ¬ψ(ȳ2)).
  Result<ContainmentConstraint> ToContainmentConstraint(
      const Schema& db_schema) const;

  std::string ToString() const;

 private:
  std::string lhs_relation_;
  std::vector<size_t> lhs_cols_;
  std::vector<AttrPattern> lhs_pattern_;
  std::string rhs_relation_;
  std::vector<size_t> rhs_cols_;
  std::vector<AttrPattern> rhs_pattern_;
};

/// Helper for CC sets bounded by master data: builds the IND-form CC
/// π_{db_cols}(db_relation) ⊆ π_{master_cols}(master_relation).
Result<ContainmentConstraint> MakeIndToMaster(
    const Schema& db_schema, const std::string& db_relation,
    std::vector<size_t> db_cols, const std::string& master_relation,
    std::vector<size_t> master_cols);

}  // namespace relcomp

#endif  // RELCOMP_CONSTRAINTS_INTEGRITY_CONSTRAINTS_H_
