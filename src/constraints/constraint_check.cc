#include "constraints/constraint_check.h"

#include "util/str.h"

namespace relcomp {

std::string ConstraintCheckResult::ToString() const {
  if (satisfied) return "satisfied";
  std::string out = StrCat("violated CC #", violated_index);
  if (witness.has_value()) {
    out += StrCat(" by tuple ", witness->ToString());
  }
  return out;
}

Relation EvalProjection(const ContainmentConstraint& cc,
                        const Database& master) {
  const Relation& source = master.Get(cc.master_relation());
  Relation out(cc.projection().size());
  for (const Tuple& t : source) {
    std::vector<Value> values;
    values.reserve(cc.projection().size());
    for (size_t col : cc.projection()) values.push_back(t[col]);
    out.Insert(Tuple(std::move(values)));
  }
  return out;
}

namespace {

/// Materializes π_{projection}(master_relation) over the master data.
Relation ProjectMaster(const Database& master,
                       const std::string& master_relation,
                       const std::vector<size_t>& projection) {
  const Relation& source = master.Get(master_relation);
  Relation out(projection.size());
  for (const Tuple& t : source) {
    std::vector<Value> values;
    values.reserve(projection.size());
    for (size_t col : projection) values.push_back(t[col]);
    out.Insert(Tuple(std::move(values)));
  }
  return out;
}

/// Checks one compiled disjunct of a constraint query against a target:
/// true iff some match's head tuple falls outside the target (or, with
/// a null target, iff any match exists — the q ⊆ ∅ form). Early-exits
/// on the first violation. Heads stay on the id/value-pointer plane —
/// no Bindings map or Tuple is materialized per match; the target
/// membership test resolves the head values through the target's own
/// interner (ContainsValues).
Result<bool> DisjunctViolates(const CompiledCq& cq,
                              const DatabaseOverlay& view,
                              const Relation* target,
                              const ConjunctiveEvalOptions& options) {
  bool violated = false;
  Status st = cq.ForEachHeadMatch(
      view, options,
      [&](const ValueId* /*head_ids*/, const Value* const* head_vals) {
        if (target == nullptr || !target->ContainsValues(head_vals)) {
          violated = true;
          return false;  // stop
        }
        return true;
      });
  RELCOMP_RETURN_NOT_OK(st);
  return violated;
}

}  // namespace

Result<bool> CheckConstraint(const ContainmentConstraint& cc,
                             const Database& db, const Database& master,
                             const EvalOptions& options) {
  EvalOptions local = options;
  // FO constraint queries may compare against master-data constants;
  // fold them into the active domain.
  if (cc.language() == QueryLanguage::kFo) {
    master.CollectConstants(&local.fo_extra_constants);
  }
  RELCOMP_ASSIGN_OR_RETURN(Relation answers, Evaluate(cc.query(), db, local));
  if (cc.has_empty_target()) return answers.empty();
  Relation target = EvalProjection(cc, master);
  return answers.IsSubsetOf(target);
}

Result<ConstraintCheckResult> CheckConstraints(const ConstraintSet& set,
                                               const Database& db,
                                               const Database& master,
                                               const EvalOptions& options) {
  ConstraintCheckResult result;
  for (size_t i = 0; i < set.constraints().size(); ++i) {
    const ContainmentConstraint& cc = set.constraints()[i];
    EvalOptions local = options;
    if (cc.language() == QueryLanguage::kFo) {
      master.CollectConstants(&local.fo_extra_constants);
    }
    RELCOMP_ASSIGN_OR_RETURN(Relation answers,
                             Evaluate(cc.query(), db, local));
    if (cc.has_empty_target()) {
      if (!answers.empty()) {
        result.satisfied = false;
        result.violated_index = static_cast<int>(i);
        result.witness = *answers.begin();
        return result;
      }
      continue;
    }
    Relation target = EvalProjection(cc, master);
    for (const Tuple& t : answers) {
      if (!target.Contains(t)) {
        result.satisfied = false;
        result.violated_index = static_cast<int>(i);
        result.witness = t;
        return result;
      }
    }
  }
  return result;
}

Result<bool> Satisfies(const ConstraintSet& set, const Database& db,
                       const Database& master, const EvalOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(ConstraintCheckResult result,
                           CheckConstraints(set, db, master, options));
  return result.satisfied;
}

Result<bool> Satisfies(const ConstraintSet& set, const DatabaseOverlay& db,
                       const Database& master, const EvalOptions& options) {
  for (const ContainmentConstraint& cc : set.constraints()) {
    EvalOptions local = options;
    if (cc.language() == QueryLanguage::kFo) {
      master.CollectConstants(&local.fo_extra_constants);
    }
    // Evaluate(…, DatabaseOverlay, …) runs CQ-convertible queries on
    // the view and materializes only for FO/Datalog.
    RELCOMP_ASSIGN_OR_RETURN(Relation answers,
                             Evaluate(cc.query(), db, local));
    if (cc.has_empty_target()) {
      if (!answers.empty()) return false;
      continue;
    }
    Relation target = EvalProjection(cc, master);
    if (!answers.IsSubsetOf(target)) return false;
  }
  return true;
}

Result<CompiledConstraintCheck> CompiledConstraintCheck::Make(
    const ConstraintSet& set, const Database& master,
    size_t max_union_disjuncts) {
  CompiledConstraintCheck compiled;
  compiled.entries_.reserve(set.constraints().size());
  for (const ContainmentConstraint& cc : set.constraints()) {
    RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                             cc.query().ToUnion(max_union_disjuncts));
    Entry entry;
    entry.ucq = std::move(ucq);
    entry.compiled.reserve(entry.ucq.disjuncts().size());
    for (const ConjunctiveQuery& cq : entry.ucq.disjuncts()) {
      entry.compiled.emplace_back(cq);
    }
    entry.empty_target = cc.has_empty_target();
    if (!entry.empty_target) {
      entry.target = EvalProjection(cc, master);
    }
    compiled.entries_.push_back(std::move(entry));
  }
  return compiled;
}

Result<bool> CompiledConstraintCheck::Satisfied(
    const DatabaseOverlay& view,
    const ConjunctiveEvalOptions& options) const {
  // One counted decision point per constraint check, in lockstep with
  // the valuation search's per-binding points.
  if (options.budget != nullptr) {
    RELCOMP_RETURN_NOT_OK(options.budget->OnDecisionPoint());
  }
  for (const Entry& entry : entries_) {
    const Relation* target = entry.empty_target ? nullptr : &entry.target;
    for (const CompiledCq& cq : entry.compiled) {
      RELCOMP_ASSIGN_OR_RETURN(bool violated,
                               DisjunctViolates(cq, view, target, options));
      if (violated) return false;
    }
  }
  return true;
}

namespace {
constexpr char kCcDeltaSuffix[] = "$ccdelta";
}  // namespace

Result<DeltaConstraintChecker> DeltaConstraintChecker::Make(
    const ConstraintSet& set, std::shared_ptr<const Schema> db_schema,
    size_t max_union_disjuncts) {
  DeltaConstraintChecker checker;
  checker.base_schema_ = db_schema;
  auto extended = std::make_shared<Schema>();
  for (const std::string& name : db_schema->relation_names()) {
    RELCOMP_RETURN_NOT_OK(extended->AddRelation(*db_schema->FindRelation(name)));
    RELCOMP_RETURN_NOT_OK(extended->AddRelation(
        StrCat(name, kCcDeltaSuffix), db_schema->FindRelation(name)->arity()));
    checker.delta_names_[name] = StrCat(name, kCcDeltaSuffix);
  }
  checker.extended_schema_ = extended;
  for (const ContainmentConstraint& cc : set.constraints()) {
    RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                             cc.query().ToUnion(max_union_disjuncts));
    CcVariants entry;
    entry.empty_target = cc.has_empty_target();
    entry.master_relation = cc.master_relation();
    entry.projection = cc.projection();
    for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      for (size_t i = 0; i < disjunct.body().size(); ++i) {
        const Atom& atom = disjunct.body()[i];
        if (!atom.is_relation()) continue;
        ConjunctiveQuery variant = disjunct;
        std::string delta_name = StrCat(atom.relation(), kCcDeltaSuffix);
        variant.mutable_body()[i] = Atom::Relation(delta_name, atom.args());
        entry.variants.push_back(std::move(variant));
        entry.variant_delta_relations.push_back(std::move(delta_name));
      }
      // A disjunct with no relation atoms matches independently of Δ;
      // since (D, Dm) |= V it cannot newly violate — safe to drop.
    }
    // Compile only after the variants vector is complete: CompiledCq
    // borrows the query object, and push_back reallocation would
    // relocate it.
    entry.compiled.reserve(entry.variants.size());
    for (const ConjunctiveQuery& variant : entry.variants) {
      entry.compiled.emplace_back(variant);
    }
    checker.constraints_.push_back(std::move(entry));
  }
  return checker;
}

DeltaConstraintChecker::Session::Session(
    const DeltaConstraintChecker* checker, const Database& base,
    const Database& master, bool use_overlay,
    const ConjunctiveEvalOptions& eval_options)
    : checker_(checker), master_(&master), eval_options_(eval_options),
      use_overlay_(use_overlay),
      targets_(checker->constraints_.size()) {
  if (use_overlay_) {
    // The view stages candidate rows under both the real relation name
    // and its $ccdelta alias; the base — with its column indexes — is
    // never copied.
    view_.emplace(&base);
    if (eval_options_.budget != nullptr) {
      view_->set_memory_tracker(eval_options_.budget);
    }
  } else {
    work_.emplace(checker->extended_schema_);
    for (const std::string& name : checker->base_schema_->relation_names()) {
      for (const Tuple& t : base.Get(name)) work_->InsertUnchecked(name, t);
    }
  }
}

const Relation& DeltaConstraintChecker::Session::TargetFor(size_t cc_index) {
  std::optional<Relation>& slot = targets_[cc_index];
  if (!slot.has_value()) {
    const CcVariants& cc = checker_->constraints_[cc_index];
    slot = ProjectMaster(*master_, cc.master_relation, cc.projection);
  }
  return *slot;
}

Result<bool> DeltaConstraintChecker::Session::Check(
    const std::vector<std::pair<std::string, Tuple>>& delta) {
  // One counted decision point per delta check (see
  // CompiledConstraintCheck::Satisfied).
  if (eval_options_.budget != nullptr) {
    RELCOMP_RETURN_NOT_OK(eval_options_.budget->OnDecisionPoint());
  }
  if (use_overlay_) {
    view_->Clear();
    for (const auto& [relation, tuple] : delta) {
      // Add() filters tuples already in the base (and duplicates within
      // the delta); only genuinely new tuples reach the $ccdelta alias,
      // which is virtual — absent from the base schema — so it is
      // served purely from the staged rows.
      if (view_->Add(relation, tuple)) {
        view_->Add(checker_->delta_names_.at(relation), tuple);
      }
    }
    if (!view_->HasPending()) return true;  // base already satisfies V
    for (size_t c = 0; c < checker_->constraints_.size(); ++c) {
      const CcVariants& cc = checker_->constraints_[c];
      for (size_t v = 0; v < cc.variants.size(); ++v) {
        if (view_->Pending(cc.variant_delta_relations[v]).empty()) continue;
        const Relation* target =
            cc.empty_target ? nullptr : &TargetFor(c);
        Result<bool> violated = DisjunctViolates(cc.compiled[v], *view_,
                                                 target, eval_options_);
        if (!violated.ok()) {
          view_->Clear();
          return violated.status();
        }
        if (*violated) {
          view_->Clear();
          return false;
        }
      }
    }
    view_->Clear();
    return true;
  }

  // Legacy copy mode: apply the delta in place; remember exactly what
  // to roll back.
  std::vector<std::pair<std::string, const Tuple*>> applied;
  std::vector<std::pair<std::string, const Tuple*>> applied_delta;
  applied.reserve(delta.size());
  applied_delta.reserve(delta.size());
  for (const auto& [relation, tuple] : delta) {
    if (work_->InsertUnchecked(relation, tuple)) {
      applied.emplace_back(relation, &tuple);
      const std::string& delta_name = checker_->delta_names_.at(relation);
      if (work_->InsertUnchecked(delta_name, tuple)) {
        applied_delta.emplace_back(delta_name, &tuple);
      }
    }
  }
  auto rollback = [&]() {
    for (const auto& [relation, tuple] : applied) {
      work_->Erase(relation, *tuple);
    }
    for (const auto& [relation, tuple] : applied_delta) {
      work_->Erase(relation, *tuple);
    }
  };
  if (applied.empty()) {
    rollback();
    return true;  // nothing new: base already satisfies V
  }
  for (size_t c = 0; c < checker_->constraints_.size(); ++c) {
    const CcVariants& cc = checker_->constraints_[c];
    for (size_t v = 0; v < cc.variants.size(); ++v) {
      if (work_->Get(cc.variant_delta_relations[v]).empty()) continue;
      const ConjunctiveQuery& variant = cc.variants[v];
      Result<Relation> answers = EvalConjunctive(variant, *work_,
                                                 eval_options_);
      if (!answers.ok()) {
        rollback();
        return answers.status();
      }
      if (answers->empty()) continue;
      if (cc.empty_target) {
        rollback();
        return false;
      }
      if (!answers->IsSubsetOf(TargetFor(c))) {
        rollback();
        return false;
      }
    }
  }
  rollback();
  return true;
}

Result<bool> DeltaConstraintChecker::Check(const Database& extended,
                                           const Database& delta,
                                           const Database& master) const {
  // `extended` already holds D ∪ Δ; only the $ccdelta aliases need
  // staging, and they are virtual relations of the overlay.
  DatabaseOverlay view(&extended);
  for (const std::string& name : base_schema_->relation_names()) {
    const std::string& delta_name = delta_names_.at(name);
    for (const Tuple& t : delta.Get(name)) {
      view.Add(delta_name, t);
    }
  }
  for (const CcVariants& cc : constraints_) {
    std::optional<Relation> target;
    for (size_t v = 0; v < cc.variants.size(); ++v) {
      if (view.Pending(cc.variant_delta_relations[v]).empty()) continue;
      if (!cc.empty_target && !target.has_value()) {
        target = ProjectMaster(master, cc.master_relation, cc.projection);
      }
      RELCOMP_ASSIGN_OR_RETURN(
          bool violated,
          DisjunctViolates(cc.compiled[v], view,
                           cc.empty_target ? nullptr : &*target,
                           ConjunctiveEvalOptions()));
      if (violated) return false;
    }
  }
  return true;
}

}  // namespace relcomp
