#include "constraints/constraint_check.h"

#include "util/str.h"

namespace relcomp {

std::string ConstraintCheckResult::ToString() const {
  if (satisfied) return "satisfied";
  std::string out = StrCat("violated CC #", violated_index);
  if (witness.has_value()) {
    out += StrCat(" by tuple ", witness->ToString());
  }
  return out;
}

Relation EvalProjection(const ContainmentConstraint& cc,
                        const Database& master) {
  const Relation& source = master.Get(cc.master_relation());
  Relation out(cc.projection().size());
  for (const Tuple& t : source) {
    std::vector<Value> values;
    values.reserve(cc.projection().size());
    for (size_t col : cc.projection()) values.push_back(t[col]);
    out.Insert(Tuple(std::move(values)));
  }
  return out;
}

Result<bool> CheckConstraint(const ContainmentConstraint& cc,
                             const Database& db, const Database& master,
                             const EvalOptions& options) {
  EvalOptions local = options;
  // FO constraint queries may compare against master-data constants;
  // fold them into the active domain.
  if (cc.language() == QueryLanguage::kFo) {
    master.CollectConstants(&local.fo_extra_constants);
  }
  RELCOMP_ASSIGN_OR_RETURN(Relation answers, Evaluate(cc.query(), db, local));
  if (cc.has_empty_target()) return answers.empty();
  Relation target = EvalProjection(cc, master);
  return answers.IsSubsetOf(target);
}

Result<ConstraintCheckResult> CheckConstraints(const ConstraintSet& set,
                                               const Database& db,
                                               const Database& master,
                                               const EvalOptions& options) {
  ConstraintCheckResult result;
  for (size_t i = 0; i < set.constraints().size(); ++i) {
    const ContainmentConstraint& cc = set.constraints()[i];
    EvalOptions local = options;
    if (cc.language() == QueryLanguage::kFo) {
      master.CollectConstants(&local.fo_extra_constants);
    }
    RELCOMP_ASSIGN_OR_RETURN(Relation answers,
                             Evaluate(cc.query(), db, local));
    if (cc.has_empty_target()) {
      if (!answers.empty()) {
        result.satisfied = false;
        result.violated_index = static_cast<int>(i);
        result.witness = *answers.begin();
        return result;
      }
      continue;
    }
    Relation target = EvalProjection(cc, master);
    for (const Tuple& t : answers) {
      if (!target.Contains(t)) {
        result.satisfied = false;
        result.violated_index = static_cast<int>(i);
        result.witness = t;
        return result;
      }
    }
  }
  return result;
}

Result<bool> Satisfies(const ConstraintSet& set, const Database& db,
                       const Database& master, const EvalOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(ConstraintCheckResult result,
                           CheckConstraints(set, db, master, options));
  return result.satisfied;
}

namespace {
constexpr char kCcDeltaSuffix[] = "$ccdelta";
}  // namespace

Result<DeltaConstraintChecker> DeltaConstraintChecker::Make(
    const ConstraintSet& set, std::shared_ptr<const Schema> db_schema,
    size_t max_union_disjuncts) {
  DeltaConstraintChecker checker;
  checker.base_schema_ = db_schema;
  auto extended = std::make_shared<Schema>();
  for (const std::string& name : db_schema->relation_names()) {
    RELCOMP_RETURN_NOT_OK(extended->AddRelation(*db_schema->FindRelation(name)));
    RELCOMP_RETURN_NOT_OK(extended->AddRelation(
        StrCat(name, kCcDeltaSuffix), db_schema->FindRelation(name)->arity()));
  }
  checker.extended_schema_ = extended;
  for (const ContainmentConstraint& cc : set.constraints()) {
    RELCOMP_ASSIGN_OR_RETURN(UnionQuery ucq,
                             cc.query().ToUnion(max_union_disjuncts));
    CcVariants entry;
    entry.empty_target = cc.has_empty_target();
    entry.master_relation = cc.master_relation();
    entry.projection = cc.projection();
    for (const ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      for (size_t i = 0; i < disjunct.body().size(); ++i) {
        const Atom& atom = disjunct.body()[i];
        if (!atom.is_relation()) continue;
        ConjunctiveQuery variant = disjunct;
        std::string delta_name = StrCat(atom.relation(), kCcDeltaSuffix);
        variant.mutable_body()[i] = Atom::Relation(delta_name, atom.args());
        entry.variants.push_back(std::move(variant));
        entry.variant_delta_relations.push_back(std::move(delta_name));
      }
      // A disjunct with no relation atoms matches independently of Δ;
      // since (D, Dm) |= V it cannot newly violate — safe to drop.
    }
    checker.constraints_.push_back(std::move(entry));
  }
  return checker;
}

DeltaConstraintChecker::Session::Session(const DeltaConstraintChecker* checker,
                                         const Database& base,
                                         const Database& master)
    : checker_(checker), master_(&master),
      work_(checker->extended_schema_) {
  for (const std::string& name : checker->base_schema_->relation_names()) {
    for (const Tuple& t : base.Get(name)) work_.InsertUnchecked(name, t);
  }
}

Result<bool> DeltaConstraintChecker::Session::Check(
    const std::vector<std::pair<std::string, Tuple>>& delta) {
  // Apply the delta in place; remember exactly what to roll back.
  std::vector<std::pair<std::string, const Tuple*>> applied;
  std::vector<std::pair<std::string, const Tuple*>> applied_delta;
  applied.reserve(delta.size());
  applied_delta.reserve(delta.size());
  for (const auto& [relation, tuple] : delta) {
    if (work_.InsertUnchecked(relation, tuple)) {
      applied.emplace_back(relation, &tuple);
      std::string delta_name = StrCat(relation, kCcDeltaSuffix);
      if (work_.InsertUnchecked(delta_name, tuple)) {
        applied_delta.emplace_back(std::move(delta_name), &tuple);
      }
    }
  }
  auto rollback = [&]() {
    for (const auto& [relation, tuple] : applied) {
      work_.Erase(relation, *tuple);
    }
    for (const auto& [relation, tuple] : applied_delta) {
      work_.Erase(relation, *tuple);
    }
  };
  if (applied.empty()) {
    rollback();
    return true;  // nothing new: base already satisfies V
  }
  for (const CcVariants& cc : checker_->constraints_) {
    std::optional<Relation> target;
    for (size_t v = 0; v < cc.variants.size(); ++v) {
      if (work_.Get(cc.variant_delta_relations[v]).empty()) continue;
      const ConjunctiveQuery& variant = cc.variants[v];
      Result<Relation> answers = EvalConjunctive(variant, work_);
      if (!answers.ok()) {
        rollback();
        return answers.status();
      }
      if (answers->empty()) continue;
      if (cc.empty_target) {
        rollback();
        return false;
      }
      if (!target.has_value()) {
        const Relation& source = master_->Get(cc.master_relation);
        Relation projected(cc.projection.size());
        for (const Tuple& t : source) {
          std::vector<Value> values;
          values.reserve(cc.projection.size());
          for (size_t col : cc.projection) values.push_back(t[col]);
          projected.Insert(Tuple(std::move(values)));
        }
        target = std::move(projected);
      }
      if (!answers->IsSubsetOf(*target)) {
        rollback();
        return false;
      }
    }
  }
  rollback();
  return true;
}

Result<bool> DeltaConstraintChecker::Check(const Database& extended,
                                           const Database& delta,
                                           const Database& master) const {
  Database work(extended_schema_);
  for (const std::string& name : base_schema_->relation_names()) {
    for (const Tuple& t : extended.Get(name)) work.InsertUnchecked(name, t);
    for (const Tuple& t : delta.Get(name)) {
      work.InsertUnchecked(StrCat(name, kCcDeltaSuffix), t);
    }
  }
  for (const CcVariants& cc : constraints_) {
    std::optional<Relation> target;
    for (const ConjunctiveQuery& variant : cc.variants) {
      RELCOMP_ASSIGN_OR_RETURN(Relation answers,
                               EvalConjunctive(variant, work));
      if (answers.empty()) continue;
      if (cc.empty_target) return false;
      if (!target.has_value()) {
        // Materialize the projection once per constraint.
        const Relation& source = master.Get(cc.master_relation);
        Relation projected(cc.projection.size());
        for (const Tuple& t : source) {
          std::vector<Value> values;
          values.reserve(cc.projection.size());
          for (size_t col : cc.projection) values.push_back(t[col]);
          projected.Insert(Tuple(std::move(values)));
        }
        target = std::move(projected);
      }
      if (!answers.IsSubsetOf(*target)) return false;
    }
  }
  return true;
}

}  // namespace relcomp
