#ifndef RELCOMP_CONSTRAINTS_CONSTRAINT_CHECK_H_
#define RELCOMP_CONSTRAINTS_CONSTRAINT_CHECK_H_

#include <optional>
#include <string>

#include "constraints/containment_constraint.h"
#include "eval/query_eval.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Result of checking a constraint set: satisfied, or the index of the
/// first violated CC plus one witness tuple in q(D) \ p(Dm).
struct ConstraintCheckResult {
  bool satisfied = true;
  int violated_index = -1;
  std::optional<Tuple> witness;

  std::string ToString() const;
};

/// Evaluates the projection p over the master data: the target column
/// projection of the master relation. Precondition: !cc.empty_target().
Relation EvalProjection(const ContainmentConstraint& cc,
                        const Database& master);

/// Checks (D, Dm) |= φ for one CC.
Result<bool> CheckConstraint(const ContainmentConstraint& cc,
                             const Database& db, const Database& master,
                             const EvalOptions& options = EvalOptions());

/// Checks (D, Dm) |= V; reports the first violation.
Result<ConstraintCheckResult> CheckConstraints(
    const ConstraintSet& set, const Database& db, const Database& master,
    const EvalOptions& options = EvalOptions());

/// Convenience wrapper returning a plain bool.
Result<bool> Satisfies(const ConstraintSet& set, const Database& db,
                       const Database& master,
                       const EvalOptions& options = EvalOptions());

/// Incremental constraint checking for the deciders' inner loop.
///
/// Given a base database D already known to satisfy V, checks whether
/// (D ∪ Δ, Dm) |= V by examining only the constraint-query matches
/// that use at least one Δ tuple. Exact for the monotone constraint
/// languages (CQ/UCQ/∃FO+): since (D, Dm) |= V, any violation of
/// (D ∪ Δ, Dm) must involve a new tuple. Construction is done once;
/// Check() is then called per candidate extension (the RCDP decider
/// calls it once per valuation).
class DeltaConstraintChecker {
 public:
  /// Fails with kUnsupported if the set contains FO/FP constraints.
  static Result<DeltaConstraintChecker> Make(
      const ConstraintSet& set, std::shared_ptr<const Schema> db_schema,
      size_t max_union_disjuncts = 4096);

  /// `extended` must be D ∪ Δ over the original schema; `delta` holds
  /// exactly the new tuples. Returns (D ∪ Δ, Dm) |= V.
  Result<bool> Check(const Database& extended, const Database& delta,
                     const Database& master) const;

  /// A reusable checking session over a fixed base database: the base
  /// is copied in once and candidate deltas are applied and rolled
  /// back in place, avoiding per-candidate database copies (the RCDP
  /// decider calls Check once per leaf of the valuation search).
  class Session {
   public:
    Session(const DeltaConstraintChecker* checker, const Database& base,
            const Database& master);

    /// Returns (base ∪ delta, Dm) |= V. Tuples already in the base are
    /// ignored. The work state is restored before returning.
    Result<bool> Check(
        const std::vector<std::pair<std::string, Tuple>>& delta);

   private:
    const DeltaConstraintChecker* checker_;
    const Database* master_;
    Database work_;
  };

  /// Creates a session; `base` is the decider's D, already known to
  /// satisfy V together with `master`.
  Session NewSession(const Database& base, const Database& master) const {
    return Session(this, base, master);
  }

 private:
  friend class Session;
  DeltaConstraintChecker() = default;

  struct CcVariants {
    /// Rewritten disjunct queries, each with one atom redirected to the
    /// delta relation, plus that delta relation's name (variants whose
    /// delta relation is empty for a given candidate are skipped).
    std::vector<ConjunctiveQuery> variants;
    std::vector<std::string> variant_delta_relations;
    bool empty_target = true;
    std::string master_relation;
    std::vector<size_t> projection;
  };

  std::shared_ptr<const Schema> base_schema_;
  std::shared_ptr<Schema> extended_schema_;
  std::vector<CcVariants> constraints_;
};

}  // namespace relcomp

#endif  // RELCOMP_CONSTRAINTS_CONSTRAINT_CHECK_H_
