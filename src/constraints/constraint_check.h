#ifndef RELCOMP_CONSTRAINTS_CONSTRAINT_CHECK_H_
#define RELCOMP_CONSTRAINTS_CONSTRAINT_CHECK_H_

#include <optional>
#include <string>
#include <vector>

#include <map>

#include "constraints/containment_constraint.h"
#include "eval/conjunctive_eval.h"
#include "eval/query_eval.h"
#include "relational/database.h"
#include "relational/database_overlay.h"
#include "util/status.h"

namespace relcomp {

/// Result of checking a constraint set: satisfied, or the index of the
/// first violated CC plus one witness tuple in q(D) \ p(Dm).
struct ConstraintCheckResult {
  bool satisfied = true;
  int violated_index = -1;
  std::optional<Tuple> witness;

  std::string ToString() const;
};

/// Evaluates the projection p over the master data: the target column
/// projection of the master relation. Precondition: !cc.empty_target().
Relation EvalProjection(const ContainmentConstraint& cc,
                        const Database& master);

/// Checks (D, Dm) |= φ for one CC.
Result<bool> CheckConstraint(const ContainmentConstraint& cc,
                             const Database& db, const Database& master,
                             const EvalOptions& options = EvalOptions());

/// Checks (D, Dm) |= V; reports the first violation.
Result<ConstraintCheckResult> CheckConstraints(
    const ConstraintSet& set, const Database& db, const Database& master,
    const EvalOptions& options = EvalOptions());

/// Convenience wrapper returning a plain bool.
Result<bool> Satisfies(const ConstraintSet& set, const Database& db,
                       const Database& master,
                       const EvalOptions& options = EvalOptions());

/// Overlay form: checks (base ∪ staged, Dm) |= V without materializing
/// the extension. CQ-convertible constraint queries evaluate on the
/// view; FO constraints fall back to a materialized copy.
Result<bool> Satisfies(const ConstraintSet& set, const DatabaseOverlay& db,
                       const Database& master,
                       const EvalOptions& options = EvalOptions());

/// A constraint set compiled for repeated checking: each CC's query is
/// unfolded to a UCQ once and its master-side target projection p(Dm)
/// is materialized once (into an indexed Relation), after which
/// Satisfied() can be called per candidate instance — the deciders
/// call it once per valuation, against an overlay over D (or over ∅
/// for the Corollary 3.4 IND fast path).
///
/// Violation checks early-exit: matches of a constraint query are
/// enumerated and the first head tuple outside the target stops the
/// evaluation, so nothing is materialized per candidate.
class CompiledConstraintCheck {
 public:
  /// Fails with kUnsupported for FO/FP constraints (not CQ-convertible)
  /// and propagates kResourceExhausted from the UCQ unfolding cap.
  static Result<CompiledConstraintCheck> Make(const ConstraintSet& set,
                                              const Database& master,
                                              size_t max_union_disjuncts =
                                                  4096);

  /// Returns (view, Dm) |= V. `options` carries the index toggle and
  /// the counter sink.
  Result<bool> Satisfied(const DatabaseOverlay& view,
                         const ConjunctiveEvalOptions& options =
                             ConjunctiveEvalOptions()) const;

 private:
  struct Entry {
    UnionQuery ucq;
    /// One compiled matcher per disjunct of `ucq` (borrows the
    /// disjunct; the UnionQuery's heap storage keeps it stable across
    /// Entry moves). Satisfied() matches on the id plane through these
    /// instead of re-deriving slots and atom order per candidate.
    std::vector<CompiledCq> compiled;
    bool empty_target = true;
    /// Materialized p(Dm); unused when empty_target.
    Relation target;
  };
  std::vector<Entry> entries_;
};

/// Incremental constraint checking for the deciders' inner loop.
///
/// Given a base database D already known to satisfy V, checks whether
/// (D ∪ Δ, Dm) |= V by examining only the constraint-query matches
/// that use at least one Δ tuple. Exact for the monotone constraint
/// languages (CQ/UCQ/∃FO+): since (D, Dm) |= V, any violation of
/// (D ∪ Δ, Dm) must involve a new tuple. Construction is done once;
/// Check() is then called per candidate extension (the RCDP decider
/// calls it once per valuation).
class DeltaConstraintChecker {
 public:
  /// Fails with kUnsupported if the set contains FO/FP constraints.
  static Result<DeltaConstraintChecker> Make(
      const ConstraintSet& set, std::shared_ptr<const Schema> db_schema,
      size_t max_union_disjuncts = 4096);

  /// `extended` must be D ∪ Δ over the original schema; `delta` holds
  /// exactly the new tuples. Returns (D ∪ Δ, Dm) |= V.
  Result<bool> Check(const Database& extended, const Database& delta,
                     const Database& master) const;

  /// A reusable checking session over a fixed base database. In
  /// overlay mode (the default) candidate deltas are staged on a
  /// DatabaseOverlay over the base — zero-copy, and the base
  /// relations' column indexes stay valid across checks. In legacy
  /// copy mode (use_overlay = false, kept for bench_ablation) the base
  /// is copied in once and deltas are applied and rolled back in
  /// place, as the pre-overlay implementation did.
  class Session {
   public:
    Session(const DeltaConstraintChecker* checker, const Database& base,
            const Database& master, bool use_overlay = true,
            const ConjunctiveEvalOptions& eval_options =
                ConjunctiveEvalOptions());

    /// Returns (base ∪ delta, Dm) |= V. Tuples already in the base are
    /// ignored. The work state is restored before returning.
    Result<bool> Check(
        const std::vector<std::pair<std::string, Tuple>>& delta);

   private:
    /// Target projection p(Dm) of constraint `cc_index`, materialized
    /// lazily once per session and reused across checks.
    const Relation& TargetFor(size_t cc_index);

    const DeltaConstraintChecker* checker_;
    const Database* master_;
    ConjunctiveEvalOptions eval_options_;
    bool use_overlay_;
    /// Overlay mode: the zero-copy view over the caller's base.
    std::optional<DatabaseOverlay> view_;
    /// Legacy mode: a mutable copy of the base over the extended
    /// schema.
    std::optional<Database> work_;
    std::vector<std::optional<Relation>> targets_;
  };

  /// Creates a session; `base` is the decider's D, already known to
  /// satisfy V together with `master`.
  Session NewSession(const Database& base, const Database& master,
                     bool use_overlay = true,
                     const ConjunctiveEvalOptions& eval_options =
                         ConjunctiveEvalOptions()) const {
    return Session(this, base, master, use_overlay, eval_options);
  }

 private:
  friend class Session;
  DeltaConstraintChecker() = default;

  struct CcVariants {
    /// Rewritten disjunct queries, each with one atom redirected to the
    /// delta relation, plus that delta relation's name (variants whose
    /// delta relation is empty for a given candidate are skipped).
    std::vector<ConjunctiveQuery> variants;
    std::vector<std::string> variant_delta_relations;
    /// One compiled matcher per variant (borrows variants[i]; built
    /// only after the variants vector is complete, so the borrowed
    /// queries never relocate).
    std::vector<CompiledCq> compiled;
    bool empty_target = true;
    std::string master_relation;
    std::vector<size_t> projection;
  };

  std::shared_ptr<const Schema> base_schema_;
  std::shared_ptr<Schema> extended_schema_;
  std::vector<CcVariants> constraints_;
  /// Precomputed R -> R$ccdelta alias names; Session::Check used to
  /// build the alias string per staged tuple per check.
  std::map<std::string, std::string> delta_names_;
};

}  // namespace relcomp

#endif  // RELCOMP_CONSTRAINTS_CONSTRAINT_CHECK_H_
