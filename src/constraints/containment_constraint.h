#ifndef RELCOMP_CONSTRAINTS_CONTAINMENT_CONSTRAINT_H_
#define RELCOMP_CONSTRAINTS_CONTAINMENT_CONSTRAINT_H_

#include <string>
#include <vector>

#include "query/any_query.h"
#include "relational/schema.h"
#include "util/status.h"

namespace relcomp {

/// A containment constraint (CC) φ: q(R) ⊆ p(Rm), where q is a query
/// over the database schema in some language L_C, and p is a projection
/// over one master relation (Section 2.1). The special form q ⊆ ∅
/// (projection on an empty master relation) is represented explicitly
/// with an empty target; it is how integrity constraints embed
/// (Proposition 2.1).
class ContainmentConstraint {
 public:
  ContainmentConstraint() = default;

  /// φ: q ⊆ π_{columns}(master_relation).
  static ContainmentConstraint Subset(AnyQuery query,
                                      std::string master_relation,
                                      std::vector<size_t> projection);

  /// φ: q ⊆ ∅.
  static ContainmentConstraint SubsetOfEmpty(AnyQuery query);

  const AnyQuery& query() const { return query_; }
  QueryLanguage language() const { return query_.language(); }

  bool has_empty_target() const { return empty_target_; }
  /// Precondition: !has_empty_target().
  const std::string& master_relation() const { return master_relation_; }
  const std::vector<size_t>& projection() const { return projection_; }

  /// True iff this CC is an inclusion dependency in the paper's sense:
  /// the left query is itself a projection query (single relation atom
  /// over distinct variables, head a list of distinct atom variables,
  /// no comparisons) — including the q ⊆ ∅ form.
  bool IsInd() const;

  /// Validates the CC: the query against the database schema, and the
  /// target projection against the master schema (existence, column
  /// indices, arity agreement with the query head).
  Status Validate(const Schema& db_schema, const Schema& master_schema) const;

  /// "q(...) :- ...  SUBSETEQ  pi_{0,2}(DCust)".
  std::string ToString() const;

 private:
  AnyQuery query_;
  bool empty_target_ = true;
  std::string master_relation_;
  std::vector<size_t> projection_;
};

/// A named set V of containment constraints together with the master
/// data schema it is defined against.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  void Add(ContainmentConstraint cc) { constraints_.push_back(std::move(cc)); }

  const std::vector<ContainmentConstraint>& constraints() const {
    return constraints_;
  }
  size_t size() const { return constraints_.size(); }
  bool empty() const { return constraints_.empty(); }

  /// True iff every CC is an IND.
  bool IsIndsOnly() const;

  /// The least upper bound of the constraint languages (CQ < UCQ <
  /// ∃FO+ < FO; datalog maps to FP which we report as the top for
  /// dispatch purposes).
  QueryLanguage Language() const;

  Status Validate(const Schema& db_schema, const Schema& master_schema) const;

  std::string ToString() const;

 private:
  std::vector<ContainmentConstraint> constraints_;
};

}  // namespace relcomp

#endif  // RELCOMP_CONSTRAINTS_CONTAINMENT_CONSTRAINT_H_
