#ifndef RELCOMP_EVAL_QUERY_EVAL_H_
#define RELCOMP_EVAL_QUERY_EVAL_H_

#include <set>

#include "eval/conjunctive_eval.h"
#include "eval/datalog_eval.h"
#include "query/any_query.h"
#include "relational/database.h"
#include "util/status.h"

namespace relcomp {

/// Options for the language-polymorphic evaluator.
struct EvalOptions {
  ConjunctiveEvalOptions conjunctive;
  DatalogEvalOptions datalog;
  /// Extra constants added to the active domain for FO evaluation
  /// (e.g. master-data constants when checking FO containment
  /// constraints).
  std::set<Value> fo_extra_constants;
};

/// Evaluates a query in any of the five languages over `db`.
/// ∃FO+ queries are evaluated directly on the formula (no DNF blowup).
Result<Relation> Evaluate(const AnyQuery& q, const Database& db,
                          const EvalOptions& options = EvalOptions());

/// Evaluates a query over an overlay view (base ∪ staged tuples)
/// without materializing the extension. CQ-convertible languages
/// (CQ/UCQ/∃FO+) evaluate directly on the view; FO and Datalog fall
/// back to materializing the overlay into a Database first.
Result<Relation> Evaluate(const AnyQuery& q, const DatabaseOverlay& db,
                          const EvalOptions& options = EvalOptions());

/// True iff Q(db) is nonempty.
Result<bool> IsNonEmpty(const AnyQuery& q, const Database& db,
                        const EvalOptions& options = EvalOptions());

}  // namespace relcomp

#endif  // RELCOMP_EVAL_QUERY_EVAL_H_
