#include "eval/query_eval.h"

#include "eval/fo_eval.h"

namespace relcomp {

Result<Relation> Evaluate(const AnyQuery& q, const Database& db,
                          const EvalOptions& options) {
  switch (q.language()) {
    case QueryLanguage::kCq:
      return EvalConjunctive(*q.as_cq(), db, options.conjunctive);
    case QueryLanguage::kUcq:
      return EvalUnion(*q.as_ucq(), db, options.conjunctive);
    case QueryLanguage::kPositive: {
      // ∃FO+ evaluates through its UCQ unfolding (a backtracking join,
      // far cheaper than enumerating the active domain per quantifier).
      // Queries whose unfolding explodes fall back to the active-domain
      // evaluator, which is correct for the positive fragment too.
      Result<UnionQuery> unfolded = q.ToUnion();
      if (unfolded.ok()) {
        return EvalUnion(*unfolded, db, options.conjunctive);
      }
      if (unfolded.status().code() != StatusCode::kResourceExhausted) {
        return unfolded.status();
      }
      return EvalFo(*q.as_fo(), db, options.fo_extra_constants);
    }
    case QueryLanguage::kFo:
      // Active-domain semantics — the standard effective choice.
      return EvalFo(*q.as_fo(), db, options.fo_extra_constants);
    case QueryLanguage::kDatalog:
      return EvalDatalog(*q.as_fp(), db, options.datalog);
  }
  return Status::Internal("unreachable");
}

Result<Relation> Evaluate(const AnyQuery& q, const DatabaseOverlay& db,
                          const EvalOptions& options) {
  switch (q.language()) {
    case QueryLanguage::kCq:
      return EvalConjunctive(*q.as_cq(), db, options.conjunctive);
    case QueryLanguage::kUcq:
      return EvalUnion(*q.as_ucq(), db, options.conjunctive);
    case QueryLanguage::kPositive: {
      Result<UnionQuery> unfolded = q.ToUnion();
      if (unfolded.ok()) {
        return EvalUnion(*unfolded, db, options.conjunctive);
      }
      if (unfolded.status().code() != StatusCode::kResourceExhausted) {
        return unfolded.status();
      }
      break;  // DNF blowup: fall back to the materialized evaluator
    }
    case QueryLanguage::kFo:
    case QueryLanguage::kDatalog:
      break;
  }
  Database flat = db.Materialize();
  return Evaluate(q, flat, options);
}

Result<bool> IsNonEmpty(const AnyQuery& q, const Database& db,
                        const EvalOptions& options) {
  if (q.language() == QueryLanguage::kCq) {
    return ConjunctiveSatisfiedIn(*q.as_cq(), db, options.conjunctive);
  }
  if (q.language() == QueryLanguage::kUcq) {
    for (const ConjunctiveQuery& cq : q.as_ucq()->disjuncts()) {
      RELCOMP_ASSIGN_OR_RETURN(bool sat,
                               ConjunctiveSatisfiedIn(cq, db,
                                                      options.conjunctive));
      if (sat) return true;
    }
    return false;
  }
  RELCOMP_ASSIGN_OR_RETURN(Relation r, Evaluate(q, db, options));
  return !r.empty();
}

}  // namespace relcomp
