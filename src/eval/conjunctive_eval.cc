#include "eval/conjunctive_eval.h"

#include <algorithm>

#include "util/str.h"

namespace relcomp {
namespace {

/// Backtracking matcher state. Relation atoms are matched one at a
/// time against the instance; comparison atoms are checked as soon as
/// both operands are bound.
class Matcher {
 public:
  Matcher(const ConjunctiveQuery& q, const Database& db,
          const ConjunctiveEvalOptions& options,
          const std::function<bool(const Bindings&)>& on_match)
      : db_(db), options_(options), on_match_(on_match) {
    for (const Atom& a : q.body()) {
      if (a.is_relation()) {
        relation_atoms_.push_back(&a);
      } else {
        comparisons_.push_back(&a);
      }
    }
  }

  /// Runs the search; returns false if the callback stopped it.
  bool Run() {
    std::vector<bool> used(relation_atoms_.size(), false);
    return Search(used, 0);
  }

 private:
  /// Counts bound arguments of `atom` under the current bindings.
  int BoundScore(const Atom& atom) const {
    int score = 0;
    for (const Term& t : atom.args()) {
      if (t.is_constant() || bindings_.Has(t.var())) ++score;
    }
    return score;
  }

  /// Checks every comparison whose operands are now all bound.
  bool ComparisonsConsistent() const {
    for (const Atom* cmp : comparisons_) {
      std::optional<bool> v = bindings_.EvalComparison(*cmp);
      if (v.has_value() && !*v) return false;
    }
    return true;
  }

  bool Search(std::vector<bool>& used, size_t depth) {
    if (depth == relation_atoms_.size()) {
      // All relation atoms matched; all comparisons must be decidable.
      for (const Atom* cmp : comparisons_) {
        std::optional<bool> v = bindings_.EvalComparison(*cmp);
        if (!v.has_value() || !*v) return true;  // unsatisfied: skip match
      }
      return on_match_(bindings_);
    }
    // Pick the next atom: most bound arguments; among ties, the
    // smallest relation (drives joins from deltas and selective atoms).
    size_t pick = 0;
    if (options_.reorder_atoms) {
      int best = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < relation_atoms_.size(); ++i) {
        if (used[i]) continue;
        int score = BoundScore(*relation_atoms_[i]);
        size_t size = db_.Get(relation_atoms_[i]->relation()).size();
        if (score > best || (score == best && size < best_size)) {
          best = score;
          best_size = size;
          pick = i;
        }
      }
    } else {
      while (pick < used.size() && used[pick]) ++pick;
    }
    used[pick] = true;
    const Atom& atom = *relation_atoms_[pick];
    const Relation& rel = db_.Get(atom.relation());
    for (const Tuple& t : rel) {
      std::vector<std::string> newly_bound;
      bool ok = true;
      for (size_t i = 0; i < atom.args().size() && ok; ++i) {
        const Term& arg = atom.args()[i];
        if (arg.is_constant()) {
          ok = arg.value() == t[i];
        } else if (std::optional<Value> bound = bindings_.Get(arg.var())) {
          ok = *bound == t[i];
        } else {
          bindings_.Set(arg.var(), t[i]);
          newly_bound.push_back(arg.var());
        }
      }
      if (ok && ComparisonsConsistent()) {
        if (!Search(used, depth + 1)) {
          for (const std::string& v : newly_bound) bindings_.Unset(v);
          used[pick] = false;
          return false;
        }
      }
      for (const std::string& v : newly_bound) bindings_.Unset(v);
    }
    used[pick] = false;
    return true;
  }

  const Database& db_;
  const ConjunctiveEvalOptions& options_;
  const std::function<bool(const Bindings&)>& on_match_;
  std::vector<const Atom*> relation_atoms_;
  std::vector<const Atom*> comparisons_;
  Bindings bindings_;
};

}  // namespace

Status ForEachMatch(const ConjunctiveQuery& q, const Database& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match) {
  // Wrap the callback so comparisons over variables that never occur in
  // a relation atom (possible only for unsafe queries) are rejected
  // rather than silently accepted.
  Matcher matcher(q, db, options, on_match);
  matcher.Run();
  return Status::OK();
}

Result<Relation> EvalConjunctive(const ConjunctiveQuery& q,
                                 const Database& db,
                                 const ConjunctiveEvalOptions& options) {
  Relation out(q.arity());
  Status st = ForEachMatch(q, db, options, [&](const Bindings& b) {
    std::optional<Tuple> t = b.Ground(q.head());
    if (t.has_value()) out.Insert(std::move(*t));
    return true;
  });
  RELCOMP_RETURN_NOT_OK(st);
  return out;
}

Result<Relation> EvalUnion(const UnionQuery& q, const Database& db,
                           const ConjunctiveEvalOptions& options) {
  Relation out(q.arity());
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(Relation sub, EvalConjunctive(cq, db, options));
    out.UnionWith(sub);
  }
  return out;
}

Result<bool> ConjunctiveSatisfiedIn(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ConjunctiveEvalOptions& options) {
  bool found = false;
  Status st = ForEachMatch(q, db, options, [&](const Bindings& b) {
    if (b.Ground(q.head()).has_value()) {
      found = true;
      return false;  // stop
    }
    return true;
  });
  RELCOMP_RETURN_NOT_OK(st);
  return found;
}

}  // namespace relcomp
