#include "eval/conjunctive_eval.h"

#include <algorithm>
#include <optional>

#include "util/str.h"

namespace relcomp {
namespace {

/// Backtracking matcher state over an overlay view (a plain Database
/// is matched through a pending-free overlay). Relation atoms are
/// matched one at a time; comparison atoms are checked as soon as both
/// operands are bound.
///
/// Per atom, base rows are matched on the interned ValueId plane:
/// positions bound before the atom (constants and already-bound
/// variables) are resolved to ids once, then candidate rows — an index
/// probe's posting list when a position is bound and indexes are
/// enabled, the full relation otherwise — are filtered by 32-bit id
/// comparison. Overlay-staged rows (few) are matched on Values.
class Matcher {
 public:
  Matcher(const ConjunctiveQuery& q, const DatabaseOverlay& db,
          const ConjunctiveEvalOptions& options,
          const std::function<bool(const Bindings&)>& on_match)
      : db_(db), options_(options), on_match_(on_match) {
    for (const Atom& a : q.body()) {
      if (a.is_relation()) {
        relation_atoms_.push_back(&a);
      } else {
        comparisons_.push_back(&a);
      }
    }
  }

  /// Runs the search; returns false if the callback stopped it.
  bool Run() {
    std::vector<bool> used(relation_atoms_.size(), false);
    return Search(used, 0);
  }

 private:
  /// Counts bound arguments of `atom` under the current bindings.
  int BoundScore(const Atom& atom) const {
    int score = 0;
    for (const Term& t : atom.args()) {
      if (t.is_constant() || bindings_.Has(t.var())) ++score;
    }
    return score;
  }

  /// Checks every comparison whose operands are now all bound.
  bool ComparisonsConsistent() const {
    for (const Atom* cmp : comparisons_) {
      std::optional<bool> v = bindings_.EvalComparison(*cmp);
      if (v.has_value() && !*v) return false;
    }
    return true;
  }

  /// Matches one candidate row of `atom` given the pre-resolved bound
  /// values, then recurses. `get_value` yields the row's value at a
  /// position; `id_eq` (base rows only) short-circuits bound-position
  /// comparison on ids. Returns false iff the search was stopped.
  template <typename GetValue, typename IdEq>
  bool TryRow(const Atom& atom, std::vector<bool>& used, size_t depth,
              size_t pick, const std::vector<const Value*>& bound,
              const GetValue& get_value, const IdEq& id_eq, bool* matched) {
    const std::vector<Term>& args = atom.args();
    newly_bound_.clear();
    bool ok = true;
    for (size_t i = 0; i < args.size() && ok; ++i) {
      if (bound[i] != nullptr) {
        ok = id_eq(i, *bound[i]);
      } else {
        const std::string& var = args[i].var();
        if (std::optional<Value> b = bindings_.Get(var)) {
          // Repeated variable within this atom, bound at an earlier
          // position of the same row.
          ok = *b == get_value(i);
        } else {
          bindings_.Set(var, get_value(i));
          newly_bound_.push_back(var);
        }
      }
    }
    if (ok && ComparisonsConsistent()) {
      *matched = true;
      // Unbinding happens before returning in both branches; save the
      // names since newly_bound_ is reused by the recursion.
      std::vector<std::string> bound_here = newly_bound_;
      if (!Search(used, depth + 1)) {
        for (const std::string& v : bound_here) bindings_.Unset(v);
        used[pick] = false;
        return false;
      }
      for (const std::string& v : bound_here) bindings_.Unset(v);
    } else {
      for (const std::string& v : newly_bound_) bindings_.Unset(v);
    }
    return true;
  }

  bool Search(std::vector<bool>& used, size_t depth) {
    if (depth == relation_atoms_.size()) {
      // All relation atoms matched; all comparisons must be decidable.
      for (const Atom* cmp : comparisons_) {
        std::optional<bool> v = bindings_.EvalComparison(*cmp);
        if (!v.has_value() || !*v) return true;  // unsatisfied: skip match
      }
      return on_match_(bindings_);
    }
    // Pick the next atom: most bound arguments; among ties, the
    // smallest relation (drives joins from deltas and selective atoms).
    size_t pick = 0;
    if (options_.reorder_atoms) {
      int best = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < relation_atoms_.size(); ++i) {
        if (used[i]) continue;
        int score = BoundScore(*relation_atoms_[i]);
        size_t size = db_.Size(relation_atoms_[i]->relation());
        if (score > best || (score == best && size < best_size)) {
          best = score;
          best_size = size;
          pick = i;
        }
      }
    } else {
      while (pick < used.size() && used[pick]) ++pick;
    }
    used[pick] = true;
    const Atom& atom = *relation_atoms_[pick];
    const std::vector<Term>& args = atom.args();
    const Relation& rel = db_.BaseRelation(atom.relation());
    const std::vector<Tuple>& staged = db_.Pending(atom.relation());

    // Pre-resolve the positions bound before this atom: constants and
    // variables bound at shallower depths.
    std::vector<const Value*> bound(args.size(), nullptr);
    std::vector<Value> bound_storage(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].is_constant()) {
        bound[i] = &args[i].value();
      } else if (std::optional<Value> b = bindings_.Get(args[i].var())) {
        bound_storage[i] = std::move(*b);
        bound[i] = &bound_storage[i];
      }
    }

    // --- Base rows, on the id plane. --------------------------------
    if (!rel.empty() && rel.arity() == args.size()) {
      bool base_possible = true;
      std::vector<ValueId> bound_ids(args.size(), kInvalidValueId);
      for (size_t i = 0; i < args.size() && base_possible; ++i) {
        if (bound[i] == nullptr) continue;
        std::optional<ValueId> id = rel.IdOf(*bound[i]);
        if (!id.has_value()) {
          base_possible = false;  // value never interned: no base row
        } else {
          bound_ids[i] = *id;
        }
      }
      if (base_possible) {
        // Candidate rows: the shortest posting list over the bound
        // positions, or a full scan when nothing is bound / indexes
        // are disabled.
        const std::vector<uint32_t>* probe_rows = nullptr;
        if (options_.use_indexes) {
          for (size_t i = 0; i < args.size(); ++i) {
            if (bound[i] == nullptr) continue;
            const std::vector<uint32_t>* rows = rel.Probe(i, *bound[i]);
            if (options_.counters != nullptr) {
              ++options_.counters->index_probes;
            }
            if (rows == nullptr) {
              probe_rows = nullptr;
              base_possible = false;  // bound value absent from column
              break;
            }
            if (probe_rows == nullptr || rows->size() < probe_rows->size()) {
              probe_rows = rows;
            }
          }
        }
        auto try_base_row = [&](uint32_t row) {
          if (options_.counters != nullptr) {
            ++options_.counters->base_rows_considered;
          }
          const ValueId* ids = rel.RowIds(row);
          bool matched = false;
          return TryRow(
              atom, used, depth, pick, bound,
              [&](size_t i) -> const Value& { return rel.Resolve(ids[i]); },
              [&](size_t i, const Value&) { return ids[i] == bound_ids[i]; },
              &matched);
        };
        if (probe_rows != nullptr) {
          for (uint32_t row : *probe_rows) {
            if (!try_base_row(row)) return false;
          }
        } else if (base_possible) {
          if (options_.counters != nullptr) {
            ++options_.counters->relation_scans;
          }
          for (uint32_t row = 0; row < rel.size(); ++row) {
            if (!try_base_row(row)) return false;
          }
        }
      }
    }

    // --- Overlay-staged rows, on Values. ----------------------------
    for (const Tuple& t : staged) {
      if (t.arity() != args.size()) continue;
      if (options_.counters != nullptr) {
        ++options_.counters->overlay_rows_considered;
      }
      bool matched = false;
      bool keep_going = TryRow(
          atom, used, depth, pick, bound,
          [&](size_t i) -> const Value& { return t[i]; },
          [&](size_t i, const Value& v) { return v == t[i]; }, &matched);
      if (matched && options_.counters != nullptr) {
        ++options_.counters->overlay_hits;
      }
      if (!keep_going) return false;
    }

    used[pick] = false;
    return true;
  }

  const DatabaseOverlay& db_;
  const ConjunctiveEvalOptions& options_;
  const std::function<bool(const Bindings&)>& on_match_;
  std::vector<const Atom*> relation_atoms_;
  std::vector<const Atom*> comparisons_;
  std::vector<std::string> newly_bound_;
  Bindings bindings_;
};

}  // namespace

Status ForEachMatch(const ConjunctiveQuery& q, const DatabaseOverlay& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match) {
  Matcher matcher(q, db, options, on_match);
  matcher.Run();
  return Status::OK();
}

Status ForEachMatch(const ConjunctiveQuery& q, const Database& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match) {
  DatabaseOverlay view(&db);
  return ForEachMatch(q, view, options, on_match);
}

Result<Relation> EvalConjunctive(const ConjunctiveQuery& q,
                                 const DatabaseOverlay& db,
                                 const ConjunctiveEvalOptions& options) {
  Relation out(q.arity());
  Status st = ForEachMatch(q, db, options, [&](const Bindings& b) {
    std::optional<Tuple> t = b.Ground(q.head());
    if (t.has_value()) out.Insert(std::move(*t));
    return true;
  });
  RELCOMP_RETURN_NOT_OK(st);
  return out;
}

Result<Relation> EvalConjunctive(const ConjunctiveQuery& q,
                                 const Database& db,
                                 const ConjunctiveEvalOptions& options) {
  DatabaseOverlay view(&db);
  return EvalConjunctive(q, view, options);
}

Result<Relation> EvalUnion(const UnionQuery& q, const DatabaseOverlay& db,
                           const ConjunctiveEvalOptions& options) {
  Relation out(q.arity());
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(Relation sub, EvalConjunctive(cq, db, options));
    out.UnionWith(sub);
  }
  return out;
}

Result<Relation> EvalUnion(const UnionQuery& q, const Database& db,
                           const ConjunctiveEvalOptions& options) {
  DatabaseOverlay view(&db);
  return EvalUnion(q, view, options);
}

Result<bool> ConjunctiveSatisfiedIn(const ConjunctiveQuery& q,
                                    const DatabaseOverlay& db,
                                    const ConjunctiveEvalOptions& options) {
  bool found = false;
  Status st = ForEachMatch(q, db, options, [&](const Bindings& b) {
    if (b.Ground(q.head()).has_value()) {
      found = true;
      return false;  // stop
    }
    return true;
  });
  RELCOMP_RETURN_NOT_OK(st);
  return found;
}

Result<bool> ConjunctiveSatisfiedIn(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ConjunctiveEvalOptions& options) {
  DatabaseOverlay view(&db);
  return ConjunctiveSatisfiedIn(q, view, options);
}

}  // namespace relcomp
