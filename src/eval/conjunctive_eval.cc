#include "eval/conjunctive_eval.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

#include "util/str.h"

namespace relcomp {
namespace {

/// Term references compiled per atom argument: codes >= 0 are variable
/// slots, negative codes index the compiled constant table.
constexpr int32_t ConstCode(size_t index) {
  return -static_cast<int32_t>(index) - 1;
}
constexpr size_t ConstIndex(int32_t code) {
  return static_cast<size_t>(-code - 1);
}

struct CompiledAtom {
  const Atom* atom;
  size_t nargs;
  /// Offset into Impl::refs of nargs term codes.
  size_t ref_offset;
};

struct CompiledCmp {
  int32_t lhs;
  int32_t rhs;
  bool ne;
};

/// Allocates run scratch from the caller's arena when one is attached,
/// from owned heap blocks otherwise (freed with the run).
class ScratchAlloc {
 public:
  explicit ScratchAlloc(Arena* arena) : arena_(arena) {}

  template <typename T>
  T* Alloc(size_t n) {
    static_assert(std::is_trivially_destructible<T>::value);
    size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    owned_.push_back(std::make_unique<char[]>(bytes + alignof(T)));
    uintptr_t p = reinterpret_cast<uintptr_t>(owned_.back().get());
    p = (p + alignof(T) - 1) & ~(uintptr_t(alignof(T)) - 1);
    return reinterpret_cast<T*>(p);
  }

 private:
  Arena* arena_;
  std::vector<std::unique_ptr<char[]>> owned_;
};

}  // namespace

/// The compile-time half: variable slots, per-atom term codes, and the
/// head layout. Immutable after construction and borrowable by any
/// number of concurrent runs.
struct CompiledCq::Impl {
  const ConjunctiveQuery* q;
  size_t nslots = 0;
  size_t max_arity = 0;
  std::vector<std::string> var_names;   // slot -> name
  std::vector<const Value*> consts;     // const index -> borrowed value
  std::vector<int32_t> refs;            // packed per-atom term codes
  std::vector<CompiledAtom> atoms;      // relation atoms, textual order
  std::vector<CompiledCmp> cmps;
  std::vector<int32_t> head;
  std::vector<std::string> body_relations;  // sorted, distinct

  explicit Impl(const ConjunctiveQuery& query) : q(&query) {
    std::map<std::string, int32_t> slot_of;
    auto code_of = [&](const Term& t) -> int32_t {
      if (t.is_constant()) {
        consts.push_back(&t.value());
        return ConstCode(consts.size() - 1);
      }
      auto [it, fresh] =
          slot_of.emplace(t.var(), static_cast<int32_t>(var_names.size()));
      if (fresh) var_names.push_back(t.var());
      return it->second;
    };
    for (const Atom& a : query.body()) {
      if (a.is_relation()) {
        CompiledAtom ca;
        ca.atom = &a;
        ca.nargs = a.args().size();
        ca.ref_offset = refs.size();
        for (const Term& t : a.args()) refs.push_back(code_of(t));
        max_arity = std::max(max_arity, ca.nargs);
        atoms.push_back(ca);
      } else {
        cmps.push_back({code_of(a.lhs()), code_of(a.rhs()),
                        a.op() == CmpOp::kNe});
      }
    }
    for (const Term& t : query.head()) head.push_back(code_of(t));
    nslots = var_names.size();
    for (const CompiledAtom& ca : atoms) {
      body_relations.push_back(ca.atom->relation());
    }
    std::sort(body_relations.begin(), body_relations.end());
    body_relations.erase(
        std::unique(body_relations.begin(), body_relations.end()),
        body_relations.end());
  }
};

namespace {

/// One evaluation of a compiled query over one overlay view. All hot
/// state is ids: variable slots hold ValueIds (kInvalidValueId when
/// unbound), rows are id arrays, and every per-step consistency check
/// is a 32-bit compare. Values appear only at the boundaries — staged
/// rows and constants are resolved to ids once at run start, and match
/// delivery resolves slot ids back.
///
/// Values the view's interner has never seen (possible for staged
/// overlay tuples and query constants) get per-run synthetic ids from
/// the unused gap just below the fresh range: equal values share one
/// synthetic id, and no synthetic id collides with an id any relation
/// of the family stores, so id equality remains value equality
/// throughout the run.
class Run {
 public:
  Run(const CompiledCq::Impl& c, const DatabaseOverlay& db,
      const ConjunctiveEvalOptions& opt)
      : c_(c),
        db_(db),
        opt_(opt),
        scratch_(opt.arena),
        interner_(db.base().interner().get()) {
    size_t natoms = c_.atoms.size();
    slot_id_ = scratch_.Alloc<ValueId>(c_.nslots);
    std::fill(slot_id_, slot_id_ + c_.nslots, kInvalidValueId);
    const_id_ = scratch_.Alloc<ValueId>(c_.consts.size());
    for (size_t i = 0; i < c_.consts.size(); ++i) {
      const_id_[i] = GetId(*c_.consts[i]);
    }
    used_ = scratch_.Alloc<bool>(natoms);
    std::fill(used_, used_ + natoms, false);
    rels_ = scratch_.Alloc<const Relation*>(natoms);
    sizes_ = scratch_.Alloc<size_t>(natoms);
    staged_ids_ = scratch_.Alloc<ValueId*>(natoms);
    staged_count_ = scratch_.Alloc<size_t>(natoms);
    for (size_t i = 0; i < natoms; ++i) {
      const CompiledAtom& ca = c_.atoms[i];
      const std::string& name = ca.atom->relation();
      rels_[i] = &db.BaseRelation(name);
      const std::vector<Tuple>& pending = db.Pending(name);
      sizes_[i] = db.Size(name);
      size_t rows = 0;
      for (const Tuple& t : pending) rows += (t.arity() == ca.nargs) ? 1 : 0;
      staged_count_[i] = rows;
      staged_ids_[i] =
          rows == 0 ? nullptr : scratch_.Alloc<ValueId>(rows * ca.nargs);
      size_t at = 0;
      for (const Tuple& t : pending) {
        if (t.arity() != ca.nargs) continue;
        for (size_t j = 0; j < ca.nargs; ++j) {
          staged_ids_[i][at * ca.nargs + j] = GetId(t[j]);
        }
        ++at;
      }
    }
    // Per-depth step frames (bound ids, newly bound slots, bound column
    // list) — preallocated so the search never touches an allocator.
    bound_ = scratch_.Alloc<ValueId>(natoms * c_.max_arity);
    newly_ = scratch_.Alloc<int32_t>(natoms * c_.max_arity);
    cols_ = scratch_.Alloc<size_t>(natoms * c_.max_arity);
    head_ids_ = scratch_.Alloc<ValueId>(c_.head.size());
    head_vals_ = scratch_.Alloc<const Value*>(c_.head.size());
  }

  /// Runs the search; `on_total` fires per total match and returns
  /// false to stop.
  void Enumerate(const std::function<bool()>& on_total) {
    on_total_ = &on_total;
    Search(0);
  }

  /// Resolves the head under the current total match into head_ids()/
  /// head_vals(); false if a head variable is unbound.
  bool GroundHead() {
    for (size_t i = 0; i < c_.head.size(); ++i) {
      int32_t code = c_.head[i];
      ValueId id = code >= 0 ? slot_id_[code] : const_id_[ConstIndex(code)];
      if (id == kInvalidValueId) return false;
      head_ids_[i] = id;
      head_vals_[i] = &Resolve(id);
    }
    return true;
  }

  const ValueId* head_ids() const { return head_ids_; }
  const Value* const* head_vals() const { return head_vals_; }

  void FillBindings(Bindings* b) const {
    for (size_t s = 0; s < c_.nslots; ++s) {
      if (slot_id_[s] != kInvalidValueId) {
        b->Set(c_.var_names[s], Resolve(slot_id_[s]));
      }
    }
  }

 private:
  ValueId GetId(const Value& v) {
    if (interner_ != nullptr) {
      std::optional<ValueId> id = interner_->TryGet(v);
      if (id.has_value()) return *id;
    }
    for (const auto& [pv, id] : synth_) {
      if (*pv == v) return id;
    }
    ValueId id = ValueInterner::kFreshIdBase - 1 -
                 static_cast<ValueId>(synth_.size());
    assert(interner_ == nullptr || id >= interner_->num_base_ids());
    synth_.emplace_back(&v, id);
    return id;
  }

  bool IsSynthetic(ValueId id) const {
    return id < ValueInterner::kFreshIdBase &&
           (interner_ == nullptr || id >= interner_->num_base_ids());
  }

  const Value& Resolve(ValueId id) const {
    if (!IsSynthetic(id)) return interner_->ValueOf(id);
    return *synth_[ValueInterner::kFreshIdBase - 1 - id].first;
  }

  ValueId OperandId(int32_t code) const {
    return code >= 0 ? slot_id_[code] : const_id_[ConstIndex(code)];
  }

  /// False iff some comparison with both operands bound is violated.
  bool ComparisonsConsistent() const {
    for (const CompiledCmp& cmp : c_.cmps) {
      ValueId l = OperandId(cmp.lhs);
      ValueId r = OperandId(cmp.rhs);
      if (l == kInvalidValueId || r == kInvalidValueId) continue;
      bool eq = l == r;
      if (cmp.ne ? eq : !eq) return false;
    }
    return true;
  }

  /// Matches one candidate id row against the atom, binding unbound
  /// slots, then recurses. `guaranteed` marks positions a composite
  /// probe already matched. Returns false iff the search was stopped.
  bool TryRow(size_t depth, size_t pick, const ValueId* row_ids,
              ValueId* bound, int32_t* newly, uint32_t guaranteed,
              const CompiledAtom& ca, bool* matched) {
    const int32_t* refs = c_.refs.data() + ca.ref_offset;
    int nnew = 0;
    bool ok = true;
    for (size_t i = 0; i < ca.nargs && ok; ++i) {
      ValueId rid = row_ids[i];
      ValueId b = bound[i];
      if (b != kInvalidValueId) {
        if (guaranteed == 0 || ((guaranteed >> i) & 1u) == 0) {
          ok = rid == b;
        }
      } else {
        // Unbound at atom entry: a variable, possibly repeated and
        // bound at an earlier position of this same row.
        int32_t s = refs[i];
        ValueId cur = slot_id_[s];
        if (cur != kInvalidValueId) {
          ok = cur == rid;
        } else {
          slot_id_[s] = rid;
          newly[nnew++] = s;
        }
      }
    }
    if (ok && ComparisonsConsistent()) {
      *matched = true;
      bool keep = Search(depth + 1);
      for (int j = 0; j < nnew; ++j) slot_id_[newly[j]] = kInvalidValueId;
      if (!keep) {
        used_[pick] = false;
        return false;
      }
    } else {
      for (int j = 0; j < nnew; ++j) slot_id_[newly[j]] = kInvalidValueId;
    }
    return true;
  }

  bool Search(size_t depth) {
    size_t natoms = c_.atoms.size();
    if (depth == natoms) {
      // All relation atoms matched; all comparisons must be decidable
      // and hold.
      for (const CompiledCmp& cmp : c_.cmps) {
        ValueId l = OperandId(cmp.lhs);
        ValueId r = OperandId(cmp.rhs);
        if (l == kInvalidValueId || r == kInvalidValueId) return true;
        bool eq = l == r;
        if (cmp.ne ? eq : !eq) return true;  // unsatisfied: skip match
      }
      return (*on_total_)();
    }
    // Pick the next atom: most bound arguments; among ties, the
    // smallest relation (drives joins from deltas and selective atoms).
    size_t pick = 0;
    if (opt_.reorder_atoms) {
      int best = -1;
      size_t best_size = 0;
      for (size_t i = 0; i < natoms; ++i) {
        if (used_[i]) continue;
        const int32_t* refs = c_.refs.data() + c_.atoms[i].ref_offset;
        int score = 0;
        for (size_t j = 0; j < c_.atoms[i].nargs; ++j) {
          int32_t code = refs[j];
          score += (code < 0 || slot_id_[code] != kInvalidValueId) ? 1 : 0;
        }
        if (score > best || (score == best && sizes_[i] < best_size)) {
          best = score;
          best_size = sizes_[i];
          pick = i;
        }
      }
    } else {
      while (pick < natoms && used_[pick]) ++pick;
    }
    used_[pick] = true;
    const CompiledAtom& ca = c_.atoms[pick];
    const int32_t* refs = c_.refs.data() + ca.ref_offset;
    const Relation& rel = *rels_[pick];
    ValueId* bound = bound_ + depth * c_.max_arity;
    int32_t* newly = newly_ + depth * c_.max_arity;
    size_t* cols = cols_ + depth * c_.max_arity;

    // Positions bound before this atom: constants and slots bound at
    // shallower depths.
    size_t ncols = 0;
    bool any_synth = false;
    for (size_t i = 0; i < ca.nargs; ++i) {
      ValueId b = OperandId(refs[i]);
      bound[i] = b;
      if (b != kInvalidValueId) {
        cols[ncols++] = i;
        any_synth = any_synth || IsSynthetic(b);
      }
    }

    // --- Base rows. A synthetic bound id can never match a base row
    // (its value is not in the family interner), so base is skipped
    // outright in that case.
    if (!rel.empty() && rel.arity() == ca.nargs && !any_synth) {
      const std::vector<uint32_t>* rows = nullptr;
      bool possible = true;
      bool scan = false;
      uint32_t guaranteed = 0;
      if (opt_.use_indexes && opt_.use_composite_indexes && ncols >= 2 &&
          rel.arity() <= 32) {
        // One composite probe over the exact bound-column set replaces
        // per-column probes and pre-matches every bound position.
        size_t take = std::min(ncols, RadixIndex::kMaxColumns);
        ValueId key[RadixIndex::kMaxColumns];
        for (size_t j = 0; j < take; ++j) key[j] = bound[cols[j]];
        size_t built = 0;
        rows = rel.CompositeProbe(cols, take, key, &built);
        if (opt_.counters != nullptr) {
          ++opt_.counters->composite_probes;
          opt_.counters->composite_index_bytes += built;
        }
        if (built != 0 && opt_.budget != nullptr) {
          opt_.budget->TrackBytes(built);
        }
        for (size_t j = 0; j < take; ++j) guaranteed |= 1u << cols[j];
        if (rows == nullptr) possible = false;
      } else if (opt_.use_indexes && ncols >= 1) {
        for (size_t j = 0; j < ncols; ++j) {
          const std::vector<uint32_t>* r =
              rel.ProbeId(cols[j], bound[cols[j]]);
          if (opt_.counters != nullptr) ++opt_.counters->index_probes;
          if (r == nullptr) {
            rows = nullptr;
            possible = false;  // bound value absent from column
            break;
          }
          if (rows == nullptr || r->size() < rows->size()) rows = r;
        }
      } else {
        scan = true;
        if (opt_.counters != nullptr) ++opt_.counters->relation_scans;
      }
      if (possible) {
        bool matched = false;
        if (rows != nullptr) {
          for (uint32_t row : *rows) {
            if (opt_.counters != nullptr) {
              ++opt_.counters->base_rows_considered;
            }
            if (!TryRow(depth, pick, rel.RowIds(row), bound, newly,
                        guaranteed, ca, &matched)) {
              return false;
            }
          }
        } else if (scan) {
          for (uint32_t row = 0; row < rel.size(); ++row) {
            if (opt_.counters != nullptr) {
              ++opt_.counters->base_rows_considered;
            }
            if (!TryRow(depth, pick, rel.RowIds(row), bound, newly,
                        guaranteed, ca, &matched)) {
              return false;
            }
          }
        }
      }
    }

    // --- Overlay-staged rows, pre-converted to ids at run start.
    const ValueId* staged = staged_ids_[pick];
    for (size_t k = 0; k < staged_count_[pick]; ++k) {
      if (opt_.counters != nullptr) ++opt_.counters->overlay_rows_considered;
      bool matched = false;
      bool keep = TryRow(depth, pick, staged + k * ca.nargs, bound, newly, 0,
                         ca, &matched);
      if (matched && opt_.counters != nullptr) ++opt_.counters->overlay_hits;
      if (!keep) return false;
    }

    used_[pick] = false;
    return true;
  }

  const CompiledCq::Impl& c_;
  const DatabaseOverlay& db_;
  const ConjunctiveEvalOptions& opt_;
  ScratchAlloc scratch_;
  const ValueInterner* interner_;
  /// Per-run synthetic ids for never-interned values (borrowed value
  /// pointers into staged tuples / query constants; rare, so a linear
  /// scan beats a map).
  std::vector<std::pair<const Value*, ValueId>> synth_;
  ValueId* slot_id_ = nullptr;
  ValueId* const_id_ = nullptr;
  bool* used_ = nullptr;
  const Relation** rels_ = nullptr;
  size_t* sizes_ = nullptr;
  ValueId** staged_ids_ = nullptr;
  size_t* staged_count_ = nullptr;
  ValueId* bound_ = nullptr;
  int32_t* newly_ = nullptr;
  size_t* cols_ = nullptr;
  ValueId* head_ids_ = nullptr;
  const Value** head_vals_ = nullptr;
  const std::function<bool()>* on_total_ = nullptr;
};

}  // namespace

CompiledCq::CompiledCq(const ConjunctiveQuery& q)
    : impl_(std::make_unique<Impl>(q)) {}
CompiledCq::~CompiledCq() = default;
CompiledCq::CompiledCq(CompiledCq&&) noexcept = default;
CompiledCq& CompiledCq::operator=(CompiledCq&&) noexcept = default;

const ConjunctiveQuery& CompiledCq::query() const { return *impl_->q; }

const std::vector<std::string>& CompiledCq::body_relations() const {
  return impl_->body_relations;
}

Status CompiledCq::ForEachHeadMatch(
    const DatabaseOverlay& db, const ConjunctiveEvalOptions& options,
    const std::function<bool(const ValueId*, const Value* const*)>& on_head)
    const {
  Run run(*impl_, db, options);
  run.Enumerate([&]() {
    if (!run.GroundHead()) return true;  // unbound head var: skip
    return on_head(run.head_ids(), run.head_vals());
  });
  return Status::OK();
}

Status CompiledCq::ForEachMatch(
    const DatabaseOverlay& db, const ConjunctiveEvalOptions& options,
    const std::function<bool(const Bindings&)>& on_match) const {
  Run run(*impl_, db, options);
  run.Enumerate([&]() {
    Bindings b;
    run.FillBindings(&b);
    return on_match(b);
  });
  return Status::OK();
}

Status ForEachMatch(const ConjunctiveQuery& q, const DatabaseOverlay& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match) {
  return CompiledCq(q).ForEachMatch(db, options, on_match);
}

Status ForEachMatch(const ConjunctiveQuery& q, const Database& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match) {
  DatabaseOverlay view(&db);
  return ForEachMatch(q, view, options, on_match);
}

Result<Relation> EvalConjunctive(const ConjunctiveQuery& q,
                                 const DatabaseOverlay& db,
                                 const ConjunctiveEvalOptions& options) {
  // Share the view's interner family when it is still growable so the
  // answer's id plane lines up with the instance (the deciders probe
  // the current answer by id); once frozen, fall back to a private
  // interner — inserting then re-interns but cannot trip the freeze
  // tripwire.
  const std::shared_ptr<ValueInterner>& family = db.base().interner();
  Relation out(q.arity(),
               (family != nullptr && !family->frozen()) ? family : nullptr);
  std::vector<Value> row;
  row.reserve(q.arity());
  CompiledCq compiled(q);
  Status st = compiled.ForEachHeadMatch(
      db, options, [&](const ValueId*, const Value* const* vals) {
        row.clear();
        for (size_t i = 0; i < q.arity(); ++i) row.push_back(*vals[i]);
        out.Insert(Tuple(row));
        return true;
      });
  RELCOMP_RETURN_NOT_OK(st);
  return out;
}

Result<Relation> EvalConjunctive(const ConjunctiveQuery& q,
                                 const Database& db,
                                 const ConjunctiveEvalOptions& options) {
  DatabaseOverlay view(&db);
  return EvalConjunctive(q, view, options);
}

Result<Relation> EvalUnion(const UnionQuery& q, const DatabaseOverlay& db,
                           const ConjunctiveEvalOptions& options) {
  const std::shared_ptr<ValueInterner>& family = db.base().interner();
  Relation out(q.arity(),
               (family != nullptr && !family->frozen()) ? family : nullptr);
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    RELCOMP_ASSIGN_OR_RETURN(Relation sub, EvalConjunctive(cq, db, options));
    out.UnionWith(sub);
  }
  return out;
}

Result<Relation> EvalUnion(const UnionQuery& q, const Database& db,
                           const ConjunctiveEvalOptions& options) {
  DatabaseOverlay view(&db);
  return EvalUnion(q, view, options);
}

Result<bool> ConjunctiveSatisfiedIn(const ConjunctiveQuery& q,
                                    const DatabaseOverlay& db,
                                    const ConjunctiveEvalOptions& options) {
  bool found = false;
  CompiledCq compiled(q);
  Status st = compiled.ForEachHeadMatch(
      db, options, [&](const ValueId*, const Value* const*) {
        found = true;
        return false;  // stop
      });
  RELCOMP_RETURN_NOT_OK(st);
  return found;
}

Result<bool> ConjunctiveSatisfiedIn(const ConjunctiveQuery& q,
                                    const Database& db,
                                    const ConjunctiveEvalOptions& options) {
  DatabaseOverlay view(&db);
  return ConjunctiveSatisfiedIn(q, view, options);
}

}  // namespace relcomp
