#ifndef RELCOMP_EVAL_FO_EVAL_H_
#define RELCOMP_EVAL_FO_EVAL_H_

#include <set>
#include <vector>

#include "eval/bindings.h"
#include "query/fo_query.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/status.h"

namespace relcomp {

/// Evaluates a first-order query over `db` under active-domain
/// semantics: quantifiers range over the constants occurring in the
/// instance, in the query, and in `extra_constants` (callers such as
/// the FO containment-constraint checker pass the master data's
/// constants so CCs can mention values from Dm).
Result<Relation> EvalFo(const FoQuery& q, const Database& db,
                        const std::set<Value>& extra_constants = {});

/// Evaluates an FO formula to a truth value under the given (total, for
/// the formula's free variables) bindings and active domain.
Result<bool> EvalFormula(const Formula& f, const Database& db,
                         const std::vector<Value>& active_domain,
                         Bindings* bindings);

}  // namespace relcomp

#endif  // RELCOMP_EVAL_FO_EVAL_H_
