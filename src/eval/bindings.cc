#include "eval/bindings.h"

#include "util/str.h"

namespace relcomp {

std::optional<Value> Bindings::Get(const std::string& var) const {
  auto it = map_.find(var);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> Bindings::Resolve(const Term& t) const {
  if (t.is_constant()) return t.value();
  return Get(t.var());
}

std::optional<Tuple> Bindings::Ground(const std::vector<Term>& terms) const {
  std::vector<Value> values;
  values.reserve(terms.size());
  for (const Term& t : terms) {
    std::optional<Value> v = Resolve(t);
    if (!v.has_value()) return std::nullopt;
    values.push_back(std::move(*v));
  }
  return Tuple(std::move(values));
}

std::optional<bool> Bindings::EvalComparison(const Atom& cmp) const {
  std::optional<Value> lhs = Resolve(cmp.lhs());
  std::optional<Value> rhs = Resolve(cmp.rhs());
  if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
  bool eq = *lhs == *rhs;
  return cmp.op() == CmpOp::kEq ? eq : !eq;
}

std::string Bindings::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, value] : map_) {
    if (!first) out += ", ";
    first = false;
    out += var;
    out += "=";
    out += value.ToString();
  }
  out.push_back('}');
  return out;
}

}  // namespace relcomp
