#ifndef RELCOMP_EVAL_DATALOG_EVAL_H_
#define RELCOMP_EVAL_DATALOG_EVAL_H_

#include "query/datalog.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/status.h"

namespace relcomp {

/// Options for the datalog fixpoint engine.
struct DatalogEvalOptions {
  /// Semi-naive evaluation: each round only joins rule bodies against
  /// at least one delta-tuple derived in the previous round. The naive
  /// baseline re-derives everything each round (bench_ablation).
  bool semi_naive = true;
  /// Safety valve on fixpoint rounds; 0 means unlimited. Positive
  /// datalog over a finite instance always terminates, so this only
  /// guards against misuse.
  size_t max_rounds = 0;
};

/// Computes the least fixpoint of `program` over the EDB `db` and
/// returns the instance of the output predicate. For positive programs
/// (the paper's FP) the least and inflationary fixpoints coincide.
Result<Relation> EvalDatalog(
    const DatalogProgram& program, const Database& db,
    const DatalogEvalOptions& options = DatalogEvalOptions());

/// As EvalDatalog, but returns the full IDB (one relation per IDB
/// predicate) as a Database over an IDB-only schema.
Result<Database> EvalDatalogAll(
    const DatalogProgram& program, const Database& db,
    const DatalogEvalOptions& options = DatalogEvalOptions());

}  // namespace relcomp

#endif  // RELCOMP_EVAL_DATALOG_EVAL_H_
