#include "eval/fo_eval.h"

#include <functional>

#include "util/str.h"

namespace relcomp {
namespace {

/// For an Exists block whose child is a conjunction with a positive
/// relation atom over some of the quantified variables, enumeration
/// can be seeded from the relation instead of the active domain: the
/// atom must hold anyway, so ∃V (A ∧ φ) ⟺ some tuple of A's relation
/// matches A and the remaining quantified variables satisfy the child.
/// Returns the best such atom (covering the most unbound quantified
/// variables), or nullptr.
const Atom* FindSeedAtom(const Formula& child,
                         const std::vector<std::string>& vars,
                         const Bindings& bindings) {
  std::set<std::string> unbound;
  for (const std::string& v : vars) {
    if (!bindings.Has(v)) unbound.insert(v);
  }
  if (unbound.empty()) return nullptr;
  auto coverage = [&](const Formula& f) -> const Atom* {
    if (f.kind() != Formula::Kind::kAtom || !f.atom().is_relation()) {
      return nullptr;
    }
    return &f.atom();
  };
  std::vector<const Atom*> candidates;
  if (const Atom* direct = coverage(child)) {
    candidates.push_back(direct);
  } else if (child.kind() == Formula::Kind::kAnd) {
    for (const FormulaPtr& c : child.children()) {
      if (const Atom* a = coverage(*c)) candidates.push_back(a);
    }
  }
  const Atom* best = nullptr;
  size_t best_cover = 0;
  for (const Atom* a : candidates) {
    size_t cover = 0;
    bool usable = true;
    for (const Term& t : a->args()) {
      if (!t.is_variable()) continue;
      if (unbound.count(t.var()) > 0) {
        ++cover;
      } else if (!bindings.Has(t.var())) {
        // A free-but-unbound variable of an enclosing scope: leave this
        // atom to the naive path (which reports the safety error).
        usable = false;
        break;
      }
    }
    if (usable && cover > best_cover) {
      best_cover = cover;
      best = a;
    }
  }
  return best;
}

/// Evaluates the quantifier block vars[i..] of `f` (an Exists/Forall
/// node) and then its child.
Result<bool> EvalQuantified(const Formula& f, size_t var_index,
                            const Database& db,
                            const std::vector<Value>& active_domain,
                            Bindings* bindings) {
  bool is_exists = f.kind() == Formula::Kind::kExists;
  if (var_index == f.quantified_vars().size()) {
    return EvalFormula(*f.children().front(), db, active_domain, bindings);
  }
  if (is_exists && var_index == 0) {
    // Seeded evaluation: drive the block from a positive relation atom
    // of the child conjunction when one covers quantified variables.
    const Formula& child = *f.children().front();
    if (const Atom* seed = FindSeedAtom(child, f.quantified_vars(),
                                        *bindings)) {
      const Relation& rel = db.Get(seed->relation());
      std::set<std::string> quantified(f.quantified_vars().begin(),
                                       f.quantified_vars().end());
      for (const Tuple& t : rel) {
        std::vector<std::string> newly_bound;
        bool matches = true;
        for (size_t i = 0; i < seed->args().size() && matches; ++i) {
          const Term& arg = seed->args()[i];
          if (arg.is_constant()) {
            matches = arg.value() == t[i];
          } else if (std::optional<Value> bound = bindings->Get(arg.var())) {
            matches = *bound == t[i];
          } else if (quantified.count(arg.var()) > 0) {
            bindings->Set(arg.var(), t[i]);
            newly_bound.push_back(arg.var());
          } else {
            // A free variable of an enclosing scope that is unbound
            // would make the formula unsafe; bail to the naive path.
            matches = false;
          }
        }
        if (matches) {
          // Quantify any remaining unbound block variables naively,
          // then evaluate the child.
          std::vector<std::string> rest;
          for (const std::string& v : f.quantified_vars()) {
            if (!bindings->Has(v)) rest.push_back(v);
          }
          FormulaPtr remainder =
              rest.empty() ? f.children().front()
                           : Formula::MakeExists(rest, f.children().front());
          Result<bool> sub =
              EvalFormula(*remainder, db, active_domain, bindings);
          if (!sub.ok()) {
            for (const std::string& v : newly_bound) bindings->Unset(v);
            return sub.status();
          }
          if (*sub) {
            for (const std::string& v : newly_bound) bindings->Unset(v);
            return true;
          }
        }
        for (const std::string& v : newly_bound) bindings->Unset(v);
      }
      // No seeded match worked. The seed atom is a conjunct, so the
      // block cannot be satisfied through any other assignment either.
      return false;
    }
  }
  const std::string& var = f.quantified_vars()[var_index];
  // Shadowing: preserve any outer binding of the same name.
  std::optional<Value> saved = bindings->Get(var);
  for (const Value& v : active_domain) {
    bindings->Set(var, v);
    RELCOMP_ASSIGN_OR_RETURN(
        bool sub, EvalQuantified(f, var_index + 1, db, active_domain,
                                 bindings));
    if (is_exists && sub) {
      if (saved.has_value()) {
        bindings->Set(var, *saved);
      } else {
        bindings->Unset(var);
      }
      return true;
    }
    if (!is_exists && !sub) {
      if (saved.has_value()) {
        bindings->Set(var, *saved);
      } else {
        bindings->Unset(var);
      }
      return false;
    }
  }
  if (saved.has_value()) {
    bindings->Set(var, *saved);
  } else {
    bindings->Unset(var);
  }
  return !is_exists;
}

}  // namespace

Result<bool> EvalFormula(const Formula& f, const Database& db,
                         const std::vector<Value>& active_domain,
                         Bindings* bindings) {
  switch (f.kind()) {
    case Formula::Kind::kAtom: {
      const Atom& a = f.atom();
      if (a.is_comparison()) {
        std::optional<bool> v = bindings->EvalComparison(a);
        if (!v.has_value()) {
          return Status::InvalidArgument(
              StrCat("unbound variable in comparison ", a.ToString()));
        }
        return *v;
      }
      std::optional<Tuple> t = bindings->Ground(a.args());
      if (!t.has_value()) {
        return Status::InvalidArgument(
            StrCat("unbound variable in atom ", a.ToString()));
      }
      return db.Contains(a.relation(), *t);
    }
    case Formula::Kind::kAnd: {
      for (const FormulaPtr& c : f.children()) {
        RELCOMP_ASSIGN_OR_RETURN(bool v,
                                 EvalFormula(*c, db, active_domain, bindings));
        if (!v) return false;
      }
      return true;
    }
    case Formula::Kind::kOr: {
      for (const FormulaPtr& c : f.children()) {
        RELCOMP_ASSIGN_OR_RETURN(bool v,
                                 EvalFormula(*c, db, active_domain, bindings));
        if (v) return true;
      }
      return false;
    }
    case Formula::Kind::kNot: {
      RELCOMP_ASSIGN_OR_RETURN(
          bool v,
          EvalFormula(*f.children().front(), db, active_domain, bindings));
      return !v;
    }
    case Formula::Kind::kExists:
    case Formula::Kind::kForall:
      return EvalQuantified(f, 0, db, active_domain, bindings);
  }
  return Status::Internal("unreachable formula kind");
}

Result<Relation> EvalFo(const FoQuery& q, const Database& db,
                        const std::set<Value>& extra_constants) {
  if (q.formula() == nullptr) {
    return Status::InvalidArgument("FO query has no formula");
  }
  std::set<Value> adom_set = extra_constants;
  db.CollectConstants(&adom_set);
  q.formula()->CollectConstants(&adom_set);
  std::vector<Value> adom(adom_set.begin(), adom_set.end());

  Relation out(q.arity());
  // Enumerate assignments of the head variables over the active domain.
  // A head variable may occur in several head positions; only its first
  // occurrence iterates, later ones copy the binding.
  std::vector<Value> assignment(q.head_vars().size());
  Bindings bindings;
  std::function<Status(size_t)> assign = [&](size_t i) -> Status {
    if (i == q.head_vars().size()) {
      RELCOMP_ASSIGN_OR_RETURN(bool holds,
                               EvalFormula(*q.formula(), db, adom, &bindings));
      if (holds) out.Insert(Tuple(assignment));
      return Status::OK();
    }
    const std::string& var = q.head_vars()[i];
    if (std::optional<Value> bound = bindings.Get(var)) {
      assignment[i] = *bound;
      return assign(i + 1);
    }
    for (const Value& v : adom) {
      bindings.Set(var, v);
      assignment[i] = v;
      RELCOMP_RETURN_NOT_OK(assign(i + 1));
    }
    bindings.Unset(var);
    return Status::OK();
  };
  RELCOMP_RETURN_NOT_OK(assign(0));
  return out;
}

}  // namespace relcomp
