#include "eval/datalog_eval.h"

#include <map>

#include "eval/conjunctive_eval.h"
#include "util/str.h"

namespace relcomp {
namespace {

constexpr char kDeltaSuffix[] = "$delta";

/// Builds a schema holding the EDB relations plus one relation per IDB
/// predicate and one per-IDB delta relation (for semi-naive rounds).
Result<std::shared_ptr<Schema>> CombinedSchema(const DatalogProgram& program,
                                               const Schema& edb) {
  auto schema = std::make_shared<Schema>();
  for (const std::string& name : edb.relation_names()) {
    RELCOMP_RETURN_NOT_OK(schema->AddRelation(*edb.FindRelation(name)));
  }
  for (const std::string& pred : program.IdbPredicates()) {
    int arity = program.IdbArity(pred);
    RELCOMP_RETURN_NOT_OK(
        schema->AddRelation(pred, static_cast<size_t>(arity)));
    RELCOMP_RETURN_NOT_OK(schema->AddRelation(StrCat(pred, kDeltaSuffix),
                                              static_cast<size_t>(arity)));
  }
  return schema;
}

/// Rule body as a CQ whose head is the rule head args.
ConjunctiveQuery RuleAsQuery(const DatalogRule& rule) {
  return ConjunctiveQuery(rule.head_predicate, rule.head_args, rule.body);
}

/// Variants of `rule` for semi-naive evaluation: for each IDB body atom
/// position, one variant where that atom reads the delta relation.
std::vector<ConjunctiveQuery> SemiNaiveVariants(
    const DatalogRule& rule, const std::set<std::string>& idb) {
  std::vector<ConjunctiveQuery> variants;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& a = rule.body[i];
    if (!a.is_relation() || idb.count(a.relation()) == 0) continue;
    DatalogRule variant = rule;
    variant.body[i] = Atom::Relation(StrCat(a.relation(), kDeltaSuffix),
                                     a.args());
    variants.push_back(RuleAsQuery(variant));
  }
  return variants;
}

}  // namespace

Result<Database> EvalDatalogAll(const DatalogProgram& program,
                                const Database& db,
                                const DatalogEvalOptions& options) {
  RELCOMP_RETURN_NOT_OK(program.Validate(db.schema()));
  RELCOMP_ASSIGN_OR_RETURN(std::shared_ptr<Schema> schema,
                           CombinedSchema(program, db.schema()));
  const std::set<std::string> idb = program.IdbPredicates();

  // `work` holds EDB + derived IDB under real names, plus the previous
  // round's delta under the $delta names.
  Database work(schema);
  for (const std::string& name : db.schema().relation_names()) {
    for (const Tuple& t : db.Get(name)) work.InsertUnchecked(name, t);
  }

  ConjunctiveEvalOptions eval_options;
  std::map<std::string, Relation> delta;

  // Round 0: fire every rule against the current instance (IDB empty).
  for (const DatalogRule& rule : program.rules()) {
    ConjunctiveQuery q = RuleAsQuery(rule);
    RELCOMP_ASSIGN_OR_RETURN(Relation derived,
                             EvalConjunctive(q, work, eval_options));
    for (const Tuple& t : derived) {
      if (work.InsertUnchecked(rule.head_predicate, t)) {
        auto [it, ignored] = delta.emplace(
            rule.head_predicate,
            Relation(static_cast<size_t>(
                program.IdbArity(rule.head_predicate))));
        it->second.Insert(t);
      }
    }
  }

  size_t round = 0;
  while (!delta.empty()) {
    ++round;
    if (options.max_rounds > 0 && round > options.max_rounds) {
      return Status::ResourceExhausted(
          StrCat("datalog fixpoint exceeded ", options.max_rounds,
                 " rounds"));
    }
    // Install the delta relations.
    for (const std::string& pred : idb) {
      std::string dname = StrCat(pred, kDeltaSuffix);
      // Reset: remove stale delta tuples, then insert the new ones.
      Relation stale = work.Get(dname);
      for (const Tuple& t : stale) work.Erase(dname, t);
      auto it = delta.find(pred);
      if (it != delta.end()) {
        for (const Tuple& t : it->second) work.InsertUnchecked(dname, t);
      }
    }
    std::map<std::string, Relation> next_delta;
    for (const DatalogRule& rule : program.rules()) {
      std::vector<ConjunctiveQuery> queries;
      if (options.semi_naive) {
        queries = SemiNaiveVariants(rule, idb);
        // Rules without IDB body atoms cannot derive anything new after
        // round 0, so they contribute no variants — correct to skip.
      } else {
        queries.push_back(RuleAsQuery(rule));
      }
      for (const ConjunctiveQuery& q : queries) {
        RELCOMP_ASSIGN_OR_RETURN(Relation derived,
                                 EvalConjunctive(q, work, eval_options));
        for (const Tuple& t : derived) {
          if (work.InsertUnchecked(rule.head_predicate, t)) {
            auto [it, ignored] = next_delta.emplace(
                rule.head_predicate,
                Relation(static_cast<size_t>(
                    program.IdbArity(rule.head_predicate))));
            it->second.Insert(t);
          }
        }
      }
    }
    delta = std::move(next_delta);
  }

  // Project out the IDB into a clean result database.
  auto idb_schema = std::make_shared<Schema>();
  for (const std::string& pred : idb) {
    RELCOMP_RETURN_NOT_OK(idb_schema->AddRelation(
        pred, static_cast<size_t>(program.IdbArity(pred))));
  }
  Database out(idb_schema);
  for (const std::string& pred : idb) {
    for (const Tuple& t : work.Get(pred)) out.InsertUnchecked(pred, t);
  }
  return out;
}

Result<Relation> EvalDatalog(const DatalogProgram& program, const Database& db,
                             const DatalogEvalOptions& options) {
  RELCOMP_ASSIGN_OR_RETURN(Database all, EvalDatalogAll(program, db, options));
  return all.Get(program.output_predicate());
}

}  // namespace relcomp
