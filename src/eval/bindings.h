#ifndef RELCOMP_EVAL_BINDINGS_H_
#define RELCOMP_EVAL_BINDINGS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "query/atom.h"
#include "relational/tuple.h"

namespace relcomp {

/// A partial assignment of values to variable names, used by the
/// backtracking matcher and by the completeness deciders (the paper's
/// valuations μ are exactly total Bindings over a tableau's variables).
class Bindings {
 public:
  Bindings() = default;
  explicit Bindings(std::map<std::string, Value> map)
      : map_(std::move(map)) {}

  bool Has(const std::string& var) const { return map_.count(var) > 0; }

  /// Value bound to `var`, or nullopt.
  std::optional<Value> Get(const std::string& var) const;

  /// Binds var := value (overwrites any existing binding).
  void Set(const std::string& var, Value value) {
    map_[var] = std::move(value);
  }
  void Unset(const std::string& var) { map_.erase(var); }

  size_t size() const { return map_.size(); }
  const std::map<std::string, Value>& map() const { return map_; }

  /// Resolves a term: constants map to themselves, variables to their
  /// binding (nullopt if unbound).
  std::optional<Value> Resolve(const Term& t) const;

  /// Applies the bindings to a term list, producing a ground tuple.
  /// Returns nullopt if any variable is unbound.
  std::optional<Tuple> Ground(const std::vector<Term>& terms) const;

  /// Evaluates a comparison atom. Returns nullopt if an operand is
  /// unbound, true/false otherwise.
  std::optional<bool> EvalComparison(const Atom& cmp) const;

  /// "{x=1, y="a"}".
  std::string ToString() const;

  bool operator==(const Bindings& other) const { return map_ == other.map_; }
  bool operator<(const Bindings& other) const { return map_ < other.map_; }

 private:
  std::map<std::string, Value> map_;
};

}  // namespace relcomp

#endif  // RELCOMP_EVAL_BINDINGS_H_
