#ifndef RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_
#define RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_

#include <functional>

#include "eval/bindings.h"
#include "query/conjunctive_query.h"
#include "query/union_query.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/status.h"

namespace relcomp {

/// Options for the conjunctive matcher.
struct ConjunctiveEvalOptions {
  /// If true, relation atoms are greedily reordered at each step to
  /// maximize bound positions (cheap selectivity heuristic). If false,
  /// atoms are matched in textual order — the "naive" baseline measured
  /// in bench_ablation.
  bool reorder_atoms = true;
};

/// Evaluates a CQ over `db`, returning the set of head tuples Q(D).
Result<Relation> EvalConjunctive(
    const ConjunctiveQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// Evaluates a UCQ (union of the disjunct answers).
Result<Relation> EvalUnion(
    const UnionQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// True iff Q(db) is nonempty (early-exits on the first match).
Result<bool> ConjunctiveSatisfiedIn(
    const ConjunctiveQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// Enumerates every total assignment of the body variables of `q` that
/// matches `db` (homomorphisms from the query body into the instance).
/// The callback returns false to stop the enumeration early.
/// Used by the constraint checker and by the brute-force oracles.
Status ForEachMatch(const ConjunctiveQuery& q, const Database& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match);

}  // namespace relcomp

#endif  // RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_
