#ifndef RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_
#define RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "eval/bindings.h"
#include "query/conjunctive_query.h"
#include "query/union_query.h"
#include "relational/database.h"
#include "relational/database_overlay.h"
#include "relational/relation.h"
#include "util/arena.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Work counters for the conjunctive matcher; aggregated by the
/// deciders and surfaced by the benches next to ValuationSearchStats.
struct EvalCounters {
  /// Column-index probes issued against base relations.
  size_t index_probes = 0;
  /// Composite (multi-column radix) probes issued against base
  /// relations.
  size_t composite_probes = 0;
  /// Bytes of composite radix indexes built lazily on behalf of this
  /// evaluation (also charged to the budget when one is attached).
  size_t composite_index_bytes = 0;
  /// Full scans of a base relation (no bound position, or indexes
  /// disabled).
  size_t relation_scans = 0;
  /// Base rows examined (via probe lists or scans).
  size_t base_rows_considered = 0;
  /// Overlay-staged rows examined.
  size_t overlay_rows_considered = 0;
  /// Atom matches served by an overlay-staged row.
  size_t overlay_hits = 0;

  EvalCounters& operator+=(const EvalCounters& o) {
    index_probes += o.index_probes;
    composite_probes += o.composite_probes;
    composite_index_bytes += o.composite_index_bytes;
    relation_scans += o.relation_scans;
    base_rows_considered += o.base_rows_considered;
    overlay_rows_considered += o.overlay_rows_considered;
    overlay_hits += o.overlay_hits;
    return *this;
  }
};

/// Options for the conjunctive matcher.
struct ConjunctiveEvalOptions {
  /// If true, relation atoms are greedily reordered at each step to
  /// maximize bound positions (cheap selectivity heuristic). If false,
  /// atoms are matched in textual order — the "naive" baseline measured
  /// in bench_ablation.
  bool reorder_atoms = true;
  /// If true, atoms with at least one bound position probe the
  /// relation's lazily built column index instead of scanning. If
  /// false, every atom scans — combined with reorder_atoms = false this
  /// is the literal textual-order paper algorithm.
  bool use_indexes = true;
  /// If true (and use_indexes), an atom with two or more bound
  /// positions probes a lazily built composite radix index keyed on
  /// exactly that bound-column set, replacing N per-column probes and
  /// the residual bound-position re-checks with one tree descent. If
  /// false, multi-bound atoms fall back to the shortest per-column
  /// posting list (the PR 1 behavior) — the `composite` ablation
  /// toggle.
  bool use_composite_indexes = true;
  /// Optional per-search arena (not owned; may be null). When set, all
  /// per-call matcher scratch — binding slots, staged id rows, step
  /// frames — is bump-allocated here instead of the heap; the caller
  /// resets the arena between searches. The `arena` ablation toggle.
  Arena* arena = nullptr;
  /// Optional sink for work counters (not owned; may be null).
  EvalCounters* counters = nullptr;
  /// Optional shared execution budget (not owned; may be null). The
  /// constraint-check entry points (DeltaConstraintChecker::Session,
  /// CompiledConstraintCheck) claim one decision point per check call
  /// against it; plain evaluation does not consume points.
  ExecutionBudget* budget = nullptr;
};

/// A conjunctive query compiled for the id-plane matcher: variables
/// are numbered into dense slots, atom arguments become slot/constant
/// references, and the head is pre-resolved — so a single compilation
/// serves many evaluations (the delta-constraint checker matches the
/// same disjunct bodies thousands of times per decision). The compiled
/// form borrows `q`; the query must outlive it. Compiled queries are
/// immutable after construction: the const entry points are safe to
/// call from concurrent workers (each call keeps its run state on its
/// own stack/arena).
class CompiledCq {
 public:
  explicit CompiledCq(const ConjunctiveQuery& q);
  ~CompiledCq();
  CompiledCq(CompiledCq&&) noexcept;
  CompiledCq& operator=(CompiledCq&&) noexcept;

  const ConjunctiveQuery& query() const;

  /// Distinct relation names the body reads, sorted: the compiled
  /// query's read set. The incremental re-certifier's dependency graph
  /// is assembled from these — a UCQ disjunct or constraint body needs
  /// re-running only when its read set intersects a delta's changed
  /// relations.
  const std::vector<std::string>& body_relations() const;

  /// Enumerates body matches over base ∪ staged, invoking `on_head`
  /// with the grounded head as parallel id/value arrays of
  /// query().arity() entries (valid only during the call). Matches
  /// whose head cannot be grounded (an unbound head variable) are
  /// skipped. Head ids are intra-call identities: ids of values the
  /// view's interner has never seen are synthetic (still equal iff the
  /// values are equal within this call, and never equal to any id a
  /// relation of the same interner family stores).
  Status ForEachHeadMatch(
      const DatabaseOverlay& db, const ConjunctiveEvalOptions& options,
      const std::function<bool(const ValueId* head_ids,
                               const Value* const* head_vals)>& on_head) const;

  /// Legacy enumeration: materializes a Bindings map per total match.
  /// The per-step search runs on the id plane either way; only match
  /// delivery pays for the map.
  Status ForEachMatch(const DatabaseOverlay& db,
                      const ConjunctiveEvalOptions& options,
                      const std::function<bool(const Bindings&)>& on_match)
      const;

  /// Opaque compiled form (public so the matcher's internal run state,
  /// a TU-local class, can borrow it).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

/// Evaluates a CQ over `db`, returning the set of head tuples Q(D).
Result<Relation> EvalConjunctive(
    const ConjunctiveQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());
Result<Relation> EvalConjunctive(
    const ConjunctiveQuery& q, const DatabaseOverlay& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// Evaluates a UCQ (union of the disjunct answers).
Result<Relation> EvalUnion(
    const UnionQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());
Result<Relation> EvalUnion(
    const UnionQuery& q, const DatabaseOverlay& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// True iff Q(db) is nonempty (early-exits on the first match).
Result<bool> ConjunctiveSatisfiedIn(
    const ConjunctiveQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());
Result<bool> ConjunctiveSatisfiedIn(
    const ConjunctiveQuery& q, const DatabaseOverlay& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// Enumerates every total assignment of the body variables of `q` that
/// matches the instance (homomorphisms from the query body into it).
/// The callback returns false to stop the enumeration early.
/// Used by the constraint checker and by the brute-force oracles.
///
/// The overlay form matches against base ∪ staged tuples; per atom,
/// base rows are enumerated first (in iteration order, restricted by
/// an index probe when a position is bound), then staged rows.
Status ForEachMatch(const ConjunctiveQuery& q, const Database& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match);
Status ForEachMatch(const ConjunctiveQuery& q, const DatabaseOverlay& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match);

}  // namespace relcomp

#endif  // RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_
