#ifndef RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_
#define RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_

#include <cstddef>
#include <functional>

#include "eval/bindings.h"
#include "query/conjunctive_query.h"
#include "query/union_query.h"
#include "relational/database.h"
#include "relational/database_overlay.h"
#include "relational/relation.h"
#include "util/execution_control.h"
#include "util/status.h"

namespace relcomp {

/// Work counters for the conjunctive matcher; aggregated by the
/// deciders and surfaced by the benches next to ValuationSearchStats.
struct EvalCounters {
  /// Column-index probes issued against base relations.
  size_t index_probes = 0;
  /// Full scans of a base relation (no bound position, or indexes
  /// disabled).
  size_t relation_scans = 0;
  /// Base rows examined (via probe lists or scans).
  size_t base_rows_considered = 0;
  /// Overlay-staged rows examined.
  size_t overlay_rows_considered = 0;
  /// Atom matches served by an overlay-staged row.
  size_t overlay_hits = 0;

  EvalCounters& operator+=(const EvalCounters& o) {
    index_probes += o.index_probes;
    relation_scans += o.relation_scans;
    base_rows_considered += o.base_rows_considered;
    overlay_rows_considered += o.overlay_rows_considered;
    overlay_hits += o.overlay_hits;
    return *this;
  }
};

/// Options for the conjunctive matcher.
struct ConjunctiveEvalOptions {
  /// If true, relation atoms are greedily reordered at each step to
  /// maximize bound positions (cheap selectivity heuristic). If false,
  /// atoms are matched in textual order — the "naive" baseline measured
  /// in bench_ablation.
  bool reorder_atoms = true;
  /// If true, atoms with at least one bound position probe the
  /// relation's lazily built column index instead of scanning. If
  /// false, every atom scans — combined with reorder_atoms = false this
  /// is the literal textual-order paper algorithm.
  bool use_indexes = true;
  /// Optional sink for work counters (not owned; may be null).
  EvalCounters* counters = nullptr;
  /// Optional shared execution budget (not owned; may be null). The
  /// constraint-check entry points (DeltaConstraintChecker::Session,
  /// CompiledConstraintCheck) claim one decision point per check call
  /// against it; plain evaluation does not consume points.
  ExecutionBudget* budget = nullptr;
};

/// Evaluates a CQ over `db`, returning the set of head tuples Q(D).
Result<Relation> EvalConjunctive(
    const ConjunctiveQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());
Result<Relation> EvalConjunctive(
    const ConjunctiveQuery& q, const DatabaseOverlay& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// Evaluates a UCQ (union of the disjunct answers).
Result<Relation> EvalUnion(
    const UnionQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());
Result<Relation> EvalUnion(
    const UnionQuery& q, const DatabaseOverlay& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// True iff Q(db) is nonempty (early-exits on the first match).
Result<bool> ConjunctiveSatisfiedIn(
    const ConjunctiveQuery& q, const Database& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());
Result<bool> ConjunctiveSatisfiedIn(
    const ConjunctiveQuery& q, const DatabaseOverlay& db,
    const ConjunctiveEvalOptions& options = ConjunctiveEvalOptions());

/// Enumerates every total assignment of the body variables of `q` that
/// matches the instance (homomorphisms from the query body into it).
/// The callback returns false to stop the enumeration early.
/// Used by the constraint checker and by the brute-force oracles.
///
/// The overlay form matches against base ∪ staged tuples; per atom,
/// base rows are enumerated first (in iteration order, restricted by
/// an index probe when a position is bound), then staged rows.
Status ForEachMatch(const ConjunctiveQuery& q, const Database& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match);
Status ForEachMatch(const ConjunctiveQuery& q, const DatabaseOverlay& db,
                    const ConjunctiveEvalOptions& options,
                    const std::function<bool(const Bindings&)>& on_match);

}  // namespace relcomp

#endif  // RELCOMP_EVAL_CONJUNCTIVE_EVAL_H_
